"""Tests for databases, update objects, and update streams."""

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.update import Update, UpdateStream, deletes_for, inserts_for
from repro.exceptions import UnknownRelationError


class TestDatabase:
    def test_from_dict_accumulates_duplicates(self):
        db = Database.from_dict({"R": (("A",), [(1,), (1,), (2,)])})
        assert db.relation("R").multiplicity((1,)) == 2
        assert db.size == 2

    def test_size_is_distinct_tuple_count(self):
        db = Database.from_dict(
            {"R": (("A",), [(1,), (2,)]), "S": (("B", "C"), [(1, 2)])}
        )
        assert db.size == 3

    def test_unknown_relation_raises(self):
        db = Database()
        with pytest.raises(UnknownRelationError):
            db.relation("missing")

    def test_contains_and_names(self):
        db = Database([Relation("R", ("A",))])
        assert "R" in db
        assert "S" not in db
        assert db.names() == ("R",)

    def test_create_relation(self):
        db = Database()
        relation = db.create_relation("R", ("A", "B"))
        relation.insert((1, 2))
        assert db.relation("R").multiplicity((1, 2)) == 1

    def test_copy_is_deep(self):
        db = Database.from_dict({"R": (("A",), [(1,)])})
        clone = db.copy()
        clone.relation("R").insert((2,))
        assert (2,) not in db.relation("R")

    def test_getitem_and_iter(self):
        db = Database.from_dict({"R": (("A",), [(1,)]), "S": (("B",), [(2,)])})
        assert db["R"].name == "R"
        assert [r.name for r in db] == ["R", "S"]


class TestUpdate:
    def test_insert_and_delete_flags(self):
        insert = Update("R", (1, 2), 3)
        delete = Update("R", (1, 2), -1)
        assert insert.is_insert and not insert.is_delete
        assert delete.is_delete and not delete.is_insert

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Update("R", (1,), 0)

    def test_inverted(self):
        update = Update("R", (1,), 2)
        assert update.inverted() == Update("R", (1,), -2)

    def test_tuple_coercion(self):
        update = Update("R", [1, 2], 1)
        assert update.tuple == (1, 2)


class TestUpdateStream:
    def test_apply_to_database(self):
        db = Database.from_dict({"R": (("A",), [(1,)])})
        stream = UpdateStream([Update("R", (2,), 1), Update("R", (1,), -1)])
        stream.apply_to(db)
        assert db.relation("R").as_dict() == {(2,): 1}

    def test_from_database_roundtrip(self):
        db = Database.from_dict({"R": (("A",), [(1,), (2,)]), "S": (("B",), [(3,)])})
        empty = Database.from_dict({"R": (("A",), []), "S": (("B",), [])})
        UpdateStream.from_database(db).apply_to(empty)
        assert empty.relation("R").as_dict() == db.relation("R").as_dict()
        assert empty.relation("S").as_dict() == db.relation("S").as_dict()

    def test_inserts_and_deletes_split(self):
        stream = UpdateStream(
            [Update("R", (1,), 1), Update("R", (2,), -1), Update("R", (3,), 2)]
        )
        assert len(stream.inserts()) == 2
        assert len(stream.deletes()) == 1

    def test_interleave_round_robin(self):
        first = UpdateStream([Update("R", (1,), 1), Update("R", (2,), 1)])
        second = UpdateStream([Update("S", (9,), 1)])
        merged = UpdateStream.interleave([first, second])
        assert [u.relation for u in merged] == ["R", "S", "R"]

    def test_helpers(self):
        assert len(inserts_for("R", [(1,), (2,)])) == 2
        assert all(u.is_delete for u in deletes_for("R", [(1,)]))

    def test_indexing_and_len(self):
        stream = UpdateStream([Update("R", (1,), 1)])
        assert len(stream) == 1
        assert stream[0].tuple == (1,)
