"""Aggregate subscriptions over the wire: mirrors, resync, rejection.

The contract under test: an aggregate subscriber's client-side mirror —
maintained purely from the server's per-commit ring-folded group deltas —
must equal the fold over a recompute oracle at every version stamp it
reaches; a wedged subscriber must re-converge through the coalesce-to-
resync path with the mirror intact; one-shot reads, the `/metrics`
surface, and the static-engine rejection complete the wire surface.
"""

from __future__ import annotations

import random
import socket
import time

import pytest

from repro import Database, HierarchicalEngine, Update
from repro.baselines.naive import NaiveRecomputeEngine
from repro.core.api import StaticEngine
from repro.core.serving import EngineServer
from repro.net import (
    EngineClient,
    RemoteError,
    ServerConfig,
    ServerThread,
)
from repro.net.client import AggregateSubscriptionState
from repro.net.protocol import read_frame, write_frame
from repro.rings import AggregateSpec, answer_map, fold_result

QUERY = "Q(A, C) = R(A, B), S(B, C)"
HEAD = ("A", "C")
DOMAIN = 8


def make_database(seed: int = 3, rows: int = 40, hot: int = 0) -> Database:
    rng = random.Random(seed)
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    for c in range(hot):
        database.relation("S").apply_delta((0, c), 1)
    for _ in range(rows):
        database.relation("R").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
        database.relation("S").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
    return database


def oracle_answers(oracle: NaiveRecomputeEngine, spec: AggregateSpec):
    pairs = list(dict(oracle.result()).items())
    return answer_map(spec, fold_result(spec, HEAD, pairs))


def serve(engine):
    serving = EngineServer(engine, mode="snapshot")
    return ServerThread(serving, ServerConfig()).start()


def test_aggregate_subscription_mirrors_the_oracle_at_every_version():
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    sum_spec = AggregateSpec("sum", "C", ("A",))
    max_spec = AggregateSpec("max", "C")
    handle = serve(engine)
    try:
        with EngineClient("127.0.0.1", handle.port) as client:
            sum_sub = client.subscribe_aggregate(sum_spec)
            max_sub = client.subscribe_aggregate(max_spec)
            assert sum_sub.answers() == oracle_answers(oracle, sum_spec)
            rng = random.Random(17)
            inserted = []
            for _ in range(10):
                batch = []
                for _ in range(6):
                    if inserted and rng.random() < 0.4:
                        rel, tup = inserted.pop(rng.randrange(len(inserted)))
                        batch.append(Update(rel, tup, -1))
                    else:
                        rel = rng.choice(("R", "S"))
                        tup = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
                        inserted.append((rel, tup))
                        batch.append(Update(rel, tup, 1))
                version = client.apply_batch(batch)
                for update in batch:
                    oracle.update(
                        update.relation, update.tuple, update.multiplicity
                    )
                # mirror == fold at the exact version stamp, both rings
                for sub, spec in ((sum_sub, sum_spec), (max_sub, max_spec)):
                    assert sub.wait_for_version(version, timeout=15.0)
                    assert sub.answers() == oracle_answers(oracle, spec)
            assert sum_sub.state.deltas_applied > 0
            sum_sub.close()
            max_sub.close()
            stats = client.server_stats()
            assert stats["net"]["agg_deltas_pushed"] > 0
            assert stats["net"]["agg_subscribers_current"] == 0
    finally:
        handle.close()
        engine.close()


def test_one_shot_aggregate_reads_and_ring_labelled_metrics():
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    handle = serve(engine)
    try:
        with EngineClient("127.0.0.1", handle.port) as client:
            spec = AggregateSpec("counting", None, ("A",))
            assert client.aggregate(spec) == oracle_answers(oracle, spec)
            version, elements = client.aggregate_read(spec, maintained=False)
            assert version == engine.version
            assert answer_map(spec, elements) == oracle_answers(oracle, spec)
            sub = client.subscribe_aggregate("sum", "C", ("A",))
            client.apply_batch([Update("R", (0, 0), 1), Update("S", (0, 0), 1)])
            assert sub.wait_for_version(engine.version, timeout=15.0)
            text = client.metrics()
            assert "repro_aggregate_reads_total" in text
            assert 'repro_net_aggregate_deltas_pushed_total{ring="sum"}' in text
            sub.close()
    finally:
        handle.close()
        engine.close()


def test_static_engine_rejects_subscriptions_but_serves_one_shot_folds():
    engine = StaticEngine(QUERY)
    engine.load(make_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    handle = serve(engine)
    try:
        with EngineClient("127.0.0.1", handle.port) as client:
            with pytest.raises(RemoteError) as info:
                client.subscribe_aggregate("sum", "C", ("A",))
            assert info.value.kind == "UnsupportedQueryError"
            spec = AggregateSpec("max", "C", ("A",))
            assert client.aggregate(spec) == oracle_answers(oracle, spec)
    finally:
        handle.close()


def test_slow_aggregate_subscriber_coalesces_to_resync():
    """A wedged aggregate subscriber overflows its bounded queue and must
    re-converge through one full-elements resync, mirror intact."""
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(
        make_database(rows=0, hot=400)
    )
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database(rows=0, hot=400))
    # grouped by C: every commit's folded frame carries ~400 group rows,
    # so a non-reading subscriber actually wedges its bounded queue
    spec = AggregateSpec("sum", "A", ("C",))
    serving = EngineServer(engine, mode="snapshot")
    config = ServerConfig(subscriber_queue_size=2, send_buffer_bytes=4096)
    handle = ServerThread(serving, config).start()
    try:
        wedged = socket.socket()
        wedged.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        wedged.connect(("127.0.0.1", handle.port))
        write_frame(
            wedged,
            {"op": "subscribe_aggregate", "id": 1, "spec": spec.to_wire(),
             "queue": 2},
        )
        reply = read_frame(wedged)
        assert reply["ok"], reply
        # drive the mirror exactly as the client library would, from the
        # raw wire frames
        state = AggregateSubscriptionState(
            spec, int(reply["version"]), reply["result"]
        )

        # every commit touches 400 result tuples at the wedged subscriber
        for a in range(30):
            serving.apply_batch([Update("R", (a, 0), 1)])
            oracle.update("R", (a, 0), 1)
        final = engine.version
        time.sleep(0.3)

        wedged.settimeout(15)
        while state.version < final:
            message = read_frame(wedged)
            if "sub" in message:
                state.apply_push(message)
        wedged.close()

        assert state.answers() == oracle_answers(oracle, spec), (
            "aggregate mirror diverged after resync"
        )
        assert state.resyncs >= 1, (
            "bounded queue never overflowed into an aggregate resync"
        )
        net = handle.server.stats.as_dict()
        assert net["agg_resyncs"] >= 1
    finally:
        handle.close()
        engine.close()
