"""Satellite coverage: batch-size validation, over-delete atomicity,
epsilon edge values, and the scenario registry."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    FirstOrderIVMEngine,
    FreeConnexEngine,
    FullMaterializationEngine,
    NaiveRecomputeEngine,
)
from repro.core.api import HierarchicalEngine
from repro.data.database import Database
from repro.data.update import Update, UpdateBatch, UpdateStream, iter_batches
from repro.exceptions import RejectedUpdateError
from repro.workloads import get_scenario, scenario_names
from repro.workloads.streams import mixed_stream

from tests.conftest import random_database, schemas_for

SEMIJOIN = "Q(A) = R(A, B), S(B)"


def _semijoin_database() -> Database:
    return Database.from_dict(
        {"R": (("A", "B"), [(1, 10), (2, 10), (2, 20)]), "S": (("B",), [(10,), (20,)])}
    )


ENGINE_FACTORIES = {
    "naive": lambda: NaiveRecomputeEngine(SEMIJOIN),
    "first-order": lambda: FirstOrderIVMEngine(SEMIJOIN),
    "full-materialization": lambda: FullMaterializationEngine(SEMIJOIN),
    "free-connex": lambda: FreeConnexEngine(SEMIJOIN),
    "ivm": lambda: HierarchicalEngine(SEMIJOIN, epsilon=0.5),
}


def _state_snapshot(engine):
    if isinstance(engine, HierarchicalEngine):
        database = engine.database
    else:
        database = engine.database
    relations = {rel.name: dict(rel.items()) for rel in database}
    return relations, dict(engine.result())


# ----------------------------------------------------------------------
# satellite: UpdateStream.batches(size) must reject size <= 0 eagerly
# ----------------------------------------------------------------------
def test_batches_rejects_non_positive_size_eagerly():
    stream = UpdateStream([Update("R", (1, 2), 1)])
    for bad in (0, -1, -100):
        with pytest.raises(ValueError, match="batch size must be positive"):
            stream.batches(bad)  # note: no iteration — the check is eager
        with pytest.raises(ValueError, match="batch size must be positive"):
            iter_batches(stream, bad)


def test_batches_rejects_non_integer_size():
    stream = UpdateStream([Update("R", (1, 2), 1)])
    with pytest.raises(ValueError, match="must be an integer"):
        stream.batches(1.5)
    with pytest.raises(ValueError, match="must be an integer"):
        stream.batches(True)


def test_apply_stream_propagates_eager_batch_size_check():
    engine = HierarchicalEngine(SEMIJOIN).load(_semijoin_database())
    with pytest.raises(ValueError, match="batch size must be positive"):
        engine.apply_stream(UpdateStream([Update("R", (3, 10), 1)]), batch_size=0)


def test_batches_still_chunks_correctly():
    stream = UpdateStream([Update("R", (i, i), 1) for i in range(5)])
    batches = list(stream.batches(2))
    assert [b.source_count for b in batches] == [2, 2, 1]


# ----------------------------------------------------------------------
# satellite: over-delete rejection on every engine, state untouched
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
def test_single_over_delete_rejected_and_state_untouched(name):
    engine = ENGINE_FACTORIES[name]().load(_semijoin_database())
    before = _state_snapshot(engine)
    with pytest.raises(RejectedUpdateError):
        engine.apply(Update("R", (99, 99), -1))  # tuple was never present
    with pytest.raises(RejectedUpdateError):
        engine.apply(Update("R", (1, 10), -2))  # present once, delete twice
    assert _state_snapshot(engine) == before


@pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
def test_batch_over_delete_rejected_and_state_untouched(name):
    engine = ENGINE_FACTORIES[name]().load(_semijoin_database())
    before = _state_snapshot(engine)
    poisoned = [
        Update("R", (7, 10), 1),  # valid insert, must NOT survive the rejection
        Update("S", (555,), -1),  # over-delete in a later relation group
    ]
    with pytest.raises(RejectedUpdateError):
        engine.apply_batch(poisoned)
    assert _state_snapshot(engine) == before


def test_update_batch_apply_to_is_atomic():
    database = _semijoin_database()
    before = {rel.name: dict(rel.items()) for rel in database}
    batch = UpdateBatch([Update("R", (7, 10), 1), Update("S", (555,), -1)])
    with pytest.raises(RejectedUpdateError):
        batch.apply_to(database)
    assert {rel.name: dict(rel.items()) for rel in database} == before


# ----------------------------------------------------------------------
# satellite: epsilon edge values agree with the naive oracle
# ----------------------------------------------------------------------
EDGE_QUERIES = (
    "Q(A, C) = R(A, B), S(B, C)",
    "Q(A) = R(A, B), S(B)",
    "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)",
    "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",
)


@pytest.mark.parametrize("epsilon", (0.0, 1.0))
@pytest.mark.parametrize("query", EDGE_QUERIES)
def test_epsilon_edges_agree_with_naive_across_load_update_enumerate(query, epsilon):
    for seed in (0, 1):
        database = random_database(schemas_for(query), tuples_per_relation=18, seed=seed)
        oracle = NaiveRecomputeEngine(query).load(database)
        engine = HierarchicalEngine(query, epsilon=epsilon).load(database)

        # load: preprocessing output matches the oracle
        assert engine.result() == oracle.result()

        # update: a mixed stream keeps matching at every step's end
        stream = mixed_stream(database, 25, delete_fraction=0.4, domain=8, seed=seed + 5)
        for update in stream:
            engine.apply(update)
            oracle.apply(update)
        assert engine.result() == oracle.result()
        engine.check_invariants()

        # enumerate: duplicate-free, positive multiplicities, stable order
        first = list(engine.enumerate())
        assert first == list(engine.enumerate())
        assert len({tup for tup, _ in first}) == len(first)
        assert all(mult > 0 for _, mult in first)


# ----------------------------------------------------------------------
# scenario registry
# ----------------------------------------------------------------------
def test_scenario_registry_contains_the_new_scenarios():
    names = scenario_names()
    for expected in ("adversarial", "fraud", "iot", "matmul", "retail"):
        assert expected in names


def test_scenario_registry_rejects_unknown_names_helpfully():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("definitely-not-a-scenario")


def test_iot_scenario_stream_is_churn_balanced():
    scenario = get_scenario("iot")
    database = scenario.make_database(0, 0.05)
    stream = scenario.make_stream(database, 100, 1)
    deletes = sum(1 for update in stream if update.is_delete)
    # a sliding window deletes (almost) as much as it inserts
    assert deletes >= len(stream) // 3


def test_adversarial_scenario_forces_rebalancing():
    scenario = get_scenario("adversarial")
    database = scenario.make_database(0, 0.2)
    stream = scenario.make_stream(database, 240, 1)
    engine = HierarchicalEngine(scenario.query, epsilon=0.5).load(database)
    truth = NaiveRecomputeEngine(scenario.query).load(database)
    engine.apply_stream(stream)
    truth.apply_stream(stream)
    assert engine.result() == truth.result()
    engine.check_invariants()
    stats = engine.rebalance_stats
    assert stats is not None and stats.minor_rebalances > 0
