"""Tests for query classification: hierarchical, q-hierarchical, δ_i.

These tests pin the classifications claimed in the paper for its running
examples, plus the structural propositions (6, 7, 8, 17) connecting the
classes to the width measures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.atom import Atom
from repro.query.classes import (
    classify,
    delta_index,
    is_delta_i_hierarchical,
    is_hierarchical,
    is_q_hierarchical,
)
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.hypergraph import is_free_connex
from repro.query.parser import parse_query
from repro.widths.dynamic_width import dynamic_width
from repro.widths.static_width import static_width


class TestHierarchical:
    @pytest.mark.parametrize(
        "text,expected",
        [
            # the two examples right below Definition 1
            ("Q(A, B, C) = R(A, B), S(B, C)", True),
            ("Q(A, B, C) = R(A, B), S(B, C), T(C)", False),
            ("Q(A, C) = R(A, B), S(B, C)", True),
            ("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)", True),
            ("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)", True),
            ("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)", True),
            # the triangle query is not hierarchical
            ("Q(A, B, C) = R(A, B), S(B, C), T(C, A)", False),
            ("Q(A, B) = R(A, B)", True),
        ],
    )
    def test_hierarchical(self, text, expected):
        assert is_hierarchical(parse_query(text)) is expected

    def test_free_variables_do_not_matter(self):
        """Definition 1 only looks at the body."""
        body = "R(A, B), S(B, C)"
        for head in ["", "A", "A, B", "A, B, C"]:
            assert is_hierarchical(parse_query(f"Q({head}) = {body}"))


class TestQHierarchical:
    @pytest.mark.parametrize(
        "text,expected",
        [
            # Example 12: hierarchical but NOT q-hierarchical (bound B, E
            # dominate free C and F)
            ("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)", False),
            # the path query with both endpoints free is not q-hierarchical
            ("Q(A, C) = R(A, B), S(B, C)", False),
            # fully bound queries are q-hierarchical when hierarchical
            ("Q() = R(A, B), S(B)", True),
            # full hierarchical queries are q-hierarchical
            ("Q(A, B) = R(A, B), S(B)", True),
            ("Q(A, B) = R(A, B)", True),
            # free variable strictly dominated by a bound variable
            ("Q(A) = R(A, B), S(B)", False),
            # non-hierarchical queries are never q-hierarchical
            ("Q(A, B, C) = R(A, B), S(B, C), T(C)", False),
        ],
    )
    def test_q_hierarchical(self, text, expected):
        assert is_q_hierarchical(parse_query(text)) is expected


class TestDeltaIndex:
    @pytest.mark.parametrize(
        "text,expected",
        [
            # Definition 5 example: Q(Y0..Yi) = R0(X,Y0)...Ri(X,Yi) is δ_i
            ("Q(Y0) = R0(X, Y0)", 0),
            ("Q(Y0, Y1) = R0(X, Y0), R1(X, Y1)", 1),
            ("Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)", 2),
            ("Q(Y0, Y1, Y2, Y3) = R0(X, Y0), R1(X, Y1), R2(X, Y2), R3(X, Y3)", 3),
            # Examples 28 and 29 are δ1
            ("Q(A, C) = R(A, B), S(B, C)", 1),
            ("Q(A) = R(A, B), S(B)", 1),
            # Example 19 has dynamic width 3 (update cost O(N^{3ε}) in Example 24)
            ("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)", 3),
            # q-hierarchical queries are δ0
            ("Q(A, B) = R(A, B), S(A)", 0),
            ("Q() = R(A, B), S(B)", 0),
        ],
    )
    def test_delta_index(self, text, expected):
        assert delta_index(parse_query(text)) == expected

    def test_is_delta_i_hierarchical(self):
        q = parse_query("Q(A, C) = R(A, B), S(B, C)")
        assert is_delta_i_hierarchical(q, 1)
        assert not is_delta_i_hierarchical(q, 0)


class TestPropositions:
    """Structural propositions of the paper, checked on the example catalogue."""

    CATALOGUE = [
        "Q(A, C) = R(A, B), S(B, C)",
        "Q(A) = R(A, B), S(B)",
        "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)",
        "Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)",
        "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)",
        "Q(A, B) = R(A, B), S(A)",
        "Q() = R(A, B), S(B)",
        "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",
        "Q(A, B) = R(A, B)",
    ]

    @pytest.mark.parametrize("text", CATALOGUE)
    def test_proposition_6_q_hierarchical_iff_delta0(self, text):
        q = parse_query(text)
        assert is_q_hierarchical(q) == (delta_index(q) == 0)

    @pytest.mark.parametrize("text", CATALOGUE)
    def test_proposition_7_free_connex_implies_delta_at_most_1(self, text):
        q = parse_query(text)
        if is_free_connex(q) and is_hierarchical(q):
            assert delta_index(q) <= 1

    @pytest.mark.parametrize("text", CATALOGUE)
    def test_proposition_8_delta_index_equals_dynamic_width(self, text):
        q = parse_query(text)
        assert delta_index(q) == pytest.approx(dynamic_width(q))

    @pytest.mark.parametrize("text", CATALOGUE)
    def test_proposition_17_dynamic_width_is_w_or_w_minus_1(self, text):
        q = parse_query(text)
        w = static_width(q)
        d = dynamic_width(q)
        assert d in (pytest.approx(w), pytest.approx(w - 1)) or (
            w == 1 and d == pytest.approx(0)
        )

    @pytest.mark.parametrize("text", CATALOGUE)
    def test_proposition_3_free_connex_has_static_width_1(self, text):
        q = parse_query(text)
        if is_free_connex(q) and is_hierarchical(q):
            assert static_width(q) == pytest.approx(1)


class TestClassifySummary:
    def test_classify_path_query(self):
        summary = classify(parse_query("Q(A, C) = R(A, B), S(B, C)"))
        assert summary.hierarchical
        assert not summary.free_connex
        assert not summary.q_hierarchical
        assert summary.delta_index == 1
        assert "delta_1-hierarchical" in summary.classes

    def test_classify_non_hierarchical(self):
        summary = classify(parse_query("Q(A, B, C) = R(A, B), S(B, C), T(C)"))
        assert not summary.hierarchical
        assert summary.delta_index is None
        assert "hierarchical" not in summary.classes
        assert summary.alpha_acyclic


# ----------------------------------------------------------------------
# random star/hierarchy generator for property-based classification tests
# ----------------------------------------------------------------------
@st.composite
def random_hierarchical_query(draw):
    """Random hierarchical queries built by nesting variable groups.

    Construction: a root variable shared by all atoms, each atom optionally
    gets its own private variables and pairs of atoms may share a second-level
    variable — by construction the atom sets of any two variables are nested
    or disjoint.
    """
    n_atoms = draw(st.integers(1, 4))
    atoms = []
    variables = ["X"]
    groups = draw(
        st.lists(st.integers(0, max(0, n_atoms - 1)), min_size=n_atoms, max_size=n_atoms)
    )
    for i in range(n_atoms):
        schema = ["X"]
        group = groups[i]
        group_var = f"G{group}"
        if draw(st.booleans()):
            schema.append(group_var)
            if group_var not in variables:
                variables.append(group_var)
        private = f"P{i}"
        if draw(st.booleans()):
            schema.append(private)
            variables.append(private)
        atoms.append(Atom(f"R{i}", tuple(schema)))
    free = [v for v in variables if draw(st.booleans())]
    return ConjunctiveQuery(tuple(dict.fromkeys(free)), atoms)


class TestRandomHierarchicalQueries:
    @given(random_hierarchical_query())
    @settings(max_examples=60, deadline=None)
    def test_generator_produces_hierarchical_queries(self, query):
        assert is_hierarchical(query)

    @given(random_hierarchical_query())
    @settings(max_examples=60, deadline=None)
    def test_proposition_6_and_8_on_random_queries(self, query):
        assert is_q_hierarchical(query) == (delta_index(query) == 0)
        assert delta_index(query) == pytest.approx(dynamic_width(query))
