"""The commutative-ring payload layer: laws, specs, folds, payloads.

Every registered ring must satisfy the abelian-group laws the engine
relies on (a broken law would silently corrupt every maintained
aggregate), `AggregateSpec` must have a stable identity and a faithful
wire form, the module-level folds must implement the one true definition
of "aggregate of an enumeration", and the per-tuple payload channel of
both storage backends must follow the tuple lifecycle exactly.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.data.relation import Relation, storage_backend
from repro.exceptions import SchemaError
from repro.rings import (
    AggregateSpec,
    MaintainedAggregate,
    answer_map,
    check_ring_laws,
    fold_delta,
    fold_result,
    get_ring,
    ring_names,
)

#: Lawful ``(value, multiplicity)`` samples per registered ring —
#: positive, repeated, and negative multiplicities, plus float values
#: where the ring accepts them.
RING_SAMPLES = {
    "counting": [(None, 1), (None, 2), (None, -3)],
    "sum": [(1, 1), (2.5, 2), (7, -3), (0.1, 1)],
    "min": [(1, 1), (2, 2), (5, -1)],
    "max": [(3, 1), (3, 2), (-4, -2)],
    "sum_product": [((2, 3), 1), ((1.5, 2), 2), ((4,), -1)],
}


def test_every_registered_ring_is_lawful():
    assert set(RING_SAMPLES) == set(ring_names()), (
        "a ring was (de)registered without a law sample set"
    )
    for name, samples in RING_SAMPLES.items():
        check_ring_laws(get_ring(name), samples)


def test_get_ring_resolves_instances_and_rejects_unknown_names():
    ring = get_ring("sum")
    assert get_ring(ring) is ring
    with pytest.raises(KeyError, match="unknown ring"):
        get_ring("median")


def test_sum_ring_cancellation_is_exact_under_floats():
    ring = get_ring("sum")
    # (1e16 + 1.1) - 1e16 - 1.1 != 0.0 in float arithmetic; the ring
    # escalates to Fraction on the first float, so insert/delete churn
    # cancels exactly in any order
    assert (1e16 + 1.1) - 1e16 - 1.1 != 0.0
    total = ring.zero()
    for value, mult in [(1e16, 1), (1.1, 1), (1e16, -1), (1.1, -1)]:
        total = ring.add(total, ring.lift(value, mult))
    assert ring.is_zero(total)
    # integer-only elements stay int; answers render Fractions as float
    assert ring.lift(3, 2) == 6 and isinstance(ring.lift(3, 2), int)
    assert ring.answer(ring.lift(0.5, 3)) == 1.5
    with pytest.raises(TypeError, match="numeric"):
        ring.lift("price", 1)


def test_sum_ring_wire_form_survives_json_exactly():
    ring = get_ring("sum")
    element = ring.add(ring.lift(0.1, 1), ring.lift(10**20, 1))
    assert isinstance(element, Fraction)
    wire = json.loads(json.dumps(ring.to_wire(element)))
    assert ring.from_wire(wire) == element


def test_extremum_rings_rederive_on_retraction():
    ring = get_ring("max")
    element = ring.add(ring.lift(5, 1), ring.lift(3, 2))
    assert ring.answer(element) == 5
    # retracting the current maximum re-derives over surviving support
    element = ring.add(element, ring.lift(5, -1))
    assert ring.answer(element) == 3
    element = ring.add(element, ring.lift(3, -2))
    assert ring.is_zero(element) and ring.answer(element) is None
    assert get_ring("min").answer({2: 1, 7: 1}) == 2
    with pytest.raises(TypeError, match="needs a value"):
        ring.lift(None, 1)


def test_sum_product_ring_multiplies_factors_then_scales():
    ring = get_ring("sum_product")
    assert ring.lift((2, 3), 2) == 12
    assert ring.lift(5, 1) == 5  # a bare value is a one-factor product
    assert ring.answer(ring.add(ring.lift((0.5, 4), 1), ring.lift((1, 1), -2))) == 0.0


# ----------------------------------------------------------------------
# AggregateSpec: identity, wire form, head binding
# ----------------------------------------------------------------------
def test_spec_identity_deduplicates_and_wire_roundtrips():
    spec = AggregateSpec("sum", "C", ("A",))
    twin = AggregateSpec(get_ring("sum"), "C", ["A"])
    assert spec.key() == twin.key()
    assert spec.key() != AggregateSpec("sum", "C", ("A", "B")).key()
    wired = AggregateSpec.from_wire(json.loads(json.dumps(spec.to_wire())))
    assert wired.key() == spec.key()
    tupled = AggregateSpec("sum_product", ("A", "C"))
    assert AggregateSpec.from_wire(tupled.to_wire()).key() == tupled.key()


def test_spec_callable_values_work_locally_but_refuse_the_wire():
    spec = AggregateSpec("sum", lambda tup: tup[0] * 2)
    assert spec.value_extractor(("A", "C"))((3, 9)) == 6
    with pytest.raises(TypeError, match="cannot cross"):
        spec.to_wire()


def test_spec_head_binding_rejects_bad_selectors():
    head = ("A", "C")
    assert AggregateSpec("sum", "C").group_positions(head) == ()
    assert AggregateSpec("counting", None, ("C", 0)).group_positions(head) == (1, 0)
    with pytest.raises(SchemaError, match="not in the query head"):
        AggregateSpec("sum", "Z").value_extractor(head)
    with pytest.raises(SchemaError, match="out of range"):
        AggregateSpec("sum", 2).value_extractor(head)
    with pytest.raises(SchemaError, match="invalid head selector"):
        AggregateSpec("sum", True).value_extractor(head)


# ----------------------------------------------------------------------
# folds and the maintained state
# ----------------------------------------------------------------------
def test_fold_delta_keeps_support_neutral_churn_fold_result_drops_it():
    spec = AggregateSpec("sum", "V", ("G",))
    head = ("G", "V")
    # one group swaps value 3 for value 5: support delta 0, element delta 2
    churn = [(("a", 5), 1), (("a", 3), -1)]
    delta = fold_delta(spec, head, churn)
    assert delta == {("a",): (0, 2)}
    assert fold_result(spec, head, churn) == {}
    # a sum cancelling to zero with live support is kept with answer 0
    cancel = [(("b", 4), 1), (("b", -4), 1)]
    folded = fold_result(spec, head, cancel)
    assert folded == {("b",): (2, 0)}
    assert answer_map(spec, folded) == {("b",): 0}


def test_maintained_aggregate_tracks_deltas_and_drops_drained_groups():
    spec = AggregateSpec("max", "V", ("G",))
    state = MaintainedAggregate(spec, ("G", "V"))
    state.rebuild([(("a", 5), 1), (("a", 3), 1), (("b", 7), 2)])
    assert state.answers() == {("a",): 5, ("b",): 7}
    assert state.group_count() == 2
    state.on_delta([(("a", 5), -1)])  # retraction re-derives
    state.on_delta([(("b", 7), -2)])  # drained group disappears
    assert state.answers() == {("a",): 3}
    assert state.elements() == {("a",): (1, {3: 1})}
    state.rebuild([(("c", 1), 1)])
    assert state.answers() == {("c",): 1}


# ----------------------------------------------------------------------
# the payload channel, on both storage backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["dict", "columnar"])
def test_payload_follows_the_tuple_lifecycle(backend):
    with storage_backend(backend):
        relation = Relation("R", ("A", "B"))
        relation.apply_delta((1, 2), 2)
        relation.apply_delta((3, 4), 1)
        relation.set_payload((1, 2), {"elem": 10})
        assert relation.payload_of((1, 2)) == {"elem": 10}
        assert relation.payload_of((3, 4), "absent") == "absent"
        assert dict(relation.payload_items()) == {(1, 2): {"elem": 10}}
        # payloads are unrepresentable without support
        with pytest.raises(KeyError):
            relation.set_payload((9, 9), "orphan")
        # clones carry payloads; the original stays independent
        clone = relation.copy()
        clone.set_payload((3, 4), "cloned")
        assert relation.payload_of((3, 4)) is None
        assert clone.payload_of((1, 2)) == {"elem": 10}
        # a multiplicity bump keeps the payload; deletion drops it
        relation.apply_delta((1, 2), -1)
        assert relation.payload_of((1, 2)) == {"elem": 10}
        relation.apply_delta((1, 2), -1)
        assert relation.payload_of((1, 2)) is None
        relation.apply_delta((1, 2), 1)
        assert relation.payload_of((1, 2)) is None  # re-insert starts clean
        relation.clear()
        assert dict(relation.payload_items()) == {}
