"""Conformance coverage of ring aggregates: the checks check, bugs trip.

Three layers: the `check_aggregate_equivalence` metamorphic property runs
clean on a real workload (every engine variant, a mid-stream retune, the
dict-backend engine, sharded facades); case JSON stays digest-stable by
omitting empty aggregate triples while round-tripping non-empty ones; and
an injected maintenance bug — a maintained state that silently drops
deltas — is caught by the differential runner as an ``aggregate``
mismatch, proving the diff is live, not vacuously green.
"""

from __future__ import annotations

import random

from repro.conformance import (
    ConformanceCase,
    DataProfile,
    check_aggregate_equivalence,
    random_database,
    random_update_stream,
    run_case,
)
from repro.query.parser import parse_query
from repro.rings.spec import MaintainedAggregate
from repro.workloads import get_scenario

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def _workload(seed: int = 2, count: int = 24):
    profile = DataProfile(tuples_per_relation=20, domain=5, skew=1.0)
    database = random_database(parse_query(PATH_QUERY), profile, seed=seed)
    stream = list(
        random_update_stream(
            database, count, profile, delete_fraction=0.4, seed=seed + 1
        )
    )
    return database, stream


def test_aggregate_equivalence_property_runs_clean():
    database, stream = _workload()
    check_aggregate_equivalence(
        PATH_QUERY,
        (0.25, 0.75),
        database,
        stream,
        shard_counts=(2,),
        extra_specs=(("min", "C", ("A",)),),
    )


def test_case_json_omits_empty_triples_and_round_trips_full_ones():
    database, stream = _workload(seed=9)
    plain = ConformanceCase.build(PATH_QUERY, database, stream)
    # digest stability: pre-existing repro files (and the checkpoint
    # choices derived from their digests) must not see a new key
    assert '"aggregates"' not in plain.to_json()
    annotated = ConformanceCase.build(
        PATH_QUERY,
        database,
        stream,
        aggregates=(("sum", "C", ("A",)), ("sum_product", ("A", "C"), ())),
    )
    clone = ConformanceCase.from_json(annotated.to_json())
    assert clone == annotated
    assert clone.aggregates == annotated.aggregates


def test_runner_diffs_scenario_aggregate_triples_clean():
    scenario = get_scenario("iot_rolling_sum")
    database = scenario.make_database(3, 0.05)
    stream = scenario.make_stream(database, 30, 4)
    case = ConformanceCase.build(
        scenario.query,
        database,
        stream,
        epsilons=(0.5,),
        checkpoints=2,
        aggregates=scenario.aggregates,
    )
    report = run_case(case)
    assert report.ok, [str(m) for m in report.mismatches]


def test_injected_maintenance_bug_trips_the_aggregate_diff(monkeypatch):
    """A maintained state whose elements drift must be caught.

    The bug corrupts only the payload channel (support stays right, so
    the relation's over-delete tripwire cannot fire): the maintained
    answers silently diverge from the fold, which is exactly the failure
    mode only the runner's aggregate diff can see.
    """
    real = MaintainedAggregate.on_delta
    rng = random.Random(0)

    def drifting(self, pairs):
        real(self, pairs)
        if rng.random() < 0.7 and len(self.state):
            group = next(iter(self.state))
            element = self.state.payload_of(group, self.ring.zero())
            self.state.set_payload(group, self.ring.add(element, element))

    monkeypatch.setattr(MaintainedAggregate, "on_delta", drifting)
    database, stream = _workload(seed=4, count=30)
    case = ConformanceCase.build(
        PATH_QUERY, database, stream, epsilons=(0.5,), checkpoints=3
    )
    report = run_case(case)
    assert not report.ok
    kinds = {m.kind for m in report.mismatches}
    assert kinds & {"aggregate", "aggregate-snapshot", "aggregate-isolation"}, (
        kinds
    )
