"""Tests for hypergraphs, α-acyclicity, free-connexity, and join trees."""

import pytest

from repro.query.hypergraph import (
    Hypergraph,
    is_alpha_acyclic,
    is_free_connex,
    join_tree,
    verify_running_intersection,
)
from repro.query.parser import parse_query


class TestAlphaAcyclicity:
    @pytest.mark.parametrize(
        "text",
        [
            "Q(A, C) = R(A, B), S(B, C)",
            "Q(A) = R(A, B), S(B)",
            "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)",
            "Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)",
            # the classic non-hierarchical but acyclic path query
            "Q(A, C) = R(A, B), S(B, C), T(C)",
        ],
    )
    def test_acyclic_queries(self, text):
        assert is_alpha_acyclic(parse_query(text))

    @pytest.mark.parametrize(
        "text",
        [
            # triangle query
            "Q(A, B, C) = R(A, B), S(B, C), T(C, A)",
            # 4-cycle
            "Q(A, B, C, D) = R(A, B), S(B, C), T(C, D), U(D, A)",
        ],
    )
    def test_cyclic_queries(self, text):
        assert not is_alpha_acyclic(parse_query(text))

    def test_single_atom_is_acyclic(self):
        assert is_alpha_acyclic(parse_query("Q(A, B) = R(A, B)"))

    def test_triangle_with_covering_edge_is_acyclic(self):
        # adding an edge covering the cycle makes the hypergraph α-acyclic
        text = "Q(A, B, C) = R(A, B), S(B, C), T(C, A), U(A, B, C)"
        assert is_alpha_acyclic(parse_query(text))


class TestFreeConnex:
    @pytest.mark.parametrize(
        "text,expected",
        [
            # Example 28: acyclic but not free-connex
            ("Q(A, C) = R(A, B), S(B, C)", False),
            # Example 29: free-connex
            ("Q(A) = R(A, B), S(B)", True),
            # Example 18: free-connex
            ("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)", True),
            # Example 12: free-connex
            ("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)", True),
            # Example 19: not free-connex (bound A above free C,D,E,F not covered)
            ("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)", False),
            # full queries are free-connex when acyclic
            ("Q(A, B, C) = R(A, B), S(B, C)", True),
            # Boolean acyclic queries are free-connex
            ("Q() = R(A, B), S(B, C)", True),
            # cyclic queries are never free-connex
            ("Q(A) = R(A, B), S(B, C), T(C, A)", False),
        ],
    )
    def test_free_connex_classification(self, text, expected):
        assert is_free_connex(parse_query(text)) is expected


class TestJoinTree:
    def test_join_tree_of_acyclic_query(self):
        q = parse_query("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)")
        tree = join_tree(q)
        assert tree is not None
        assert tree.number_of_nodes() == 3
        assert verify_running_intersection(tree)

    def test_join_tree_of_cyclic_query_is_none(self):
        q = parse_query("Q(A, B, C) = R(A, B), S(B, C), T(C, A)")
        assert join_tree(q) is None

    def test_example12_join_tree(self):
        q = parse_query("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)")
        tree = join_tree(q)
        assert tree is not None
        assert verify_running_intersection(tree)


class TestHypergraphClass:
    def test_vertices(self):
        graph = Hypergraph.from_edge_sets([("A", "B"), ("B", "C")])
        assert graph.vertices == {"A", "B", "C"}

    def test_copy_is_independent(self):
        graph = Hypergraph.from_edge_sets([("A",)])
        clone = graph.copy()
        clone.add_edge("extra", ("B",))
        assert "extra" not in graph.edges

    def test_empty_hypergraph_is_acyclic(self):
        assert Hypergraph({}).is_alpha_acyclic()

    def test_from_query_names_edges_by_position(self):
        q = parse_query("Q(A) = R(A, B), S(B)")
        graph = Hypergraph.from_query(q)
        assert set(graph.edges) == {"R#0", "S#1"}
