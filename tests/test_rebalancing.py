"""Tests for minor/major rebalancing and the size-invariant bookkeeping."""

import pytest

from repro import Database, DynamicEngine, Update
from repro.engine import evaluate_query_naive
from repro.query import parse_query
from repro.workloads import growth_stream, insert_stream_from_database, skew_shift_stream
from tests.conftest import random_database, schemas_for

PATH = "Q(A, C) = R(A, B), S(B, C)"


def empty_path_database():
    return Database.from_dict({"R": (("A", "B"), []), "S": (("B", "C"), [])})


class TestMajorRebalancing:
    def test_growth_triggers_major_rebalancing(self):
        """Starting from an empty database, M = 1, so inserts must double M."""
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        stream = growth_stream("R", 2, 80, domain=40, seed=1)
        engine.apply_stream(stream)
        stats = engine.rebalance_stats
        assert stats.major_rebalances >= 3
        # size invariant ⌊M/4⌋ ≤ N < M holds after the stream
        size = engine.database.size
        base = engine._driver.threshold_base
        assert base // 4 <= size < base

    def test_shrink_triggers_major_rebalancing(self):
        database = random_database(schemas_for(PATH), tuples_per_relation=60, seed=5, domain=50)
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        # delete almost everything: the database must fall below ⌊M/4⌋
        deletions = [
            Update(name, tup, -mult)
            for name in ("R", "S")
            for tup, mult in list(database.relation(name).items())
        ]
        for update in deletions[: len(deletions) - 2]:
            engine.apply(update)
        assert engine.rebalance_stats.major_rebalances >= 1
        size = engine.database.size
        base = engine._driver.threshold_base
        assert base // 4 <= size < base

    def test_results_stay_correct_across_major_rebalances(self):
        query = parse_query(PATH)
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        shadow = empty_path_database()
        stream = growth_stream("R", 2, 50, domain=6, seed=2)
        extra = growth_stream("S", 2, 50, domain=6, seed=3)
        for r_update, s_update in zip(stream, extra):
            for update in (r_update, s_update):
                engine.apply(update)
                shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        assert engine.rebalance_stats.major_rebalances >= 3
        assert engine.result() == evaluate_query_naive(query, shadow).as_dict()

    def test_partitions_strict_after_major_rebalance(self):
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        engine.apply_stream(growth_stream("R", 2, 64, domain=8, seed=4))
        # right after the last major rebalancing the loose invariant must hold
        engine._driver.check_partitions()


class TestMinorRebalancing:
    def test_hot_key_moves_to_heavy_and_back(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(a, a) for a in range(30)]),
                "S": (("B", "C"), [(b, b) for b in range(30)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        stream = skew_shift_stream("R", 2, 60, hot_key=0, key_position=1, seed=6)
        query = parse_query(PATH)
        shadow = database.copy()
        for update in stream:
            engine.apply(update)
            shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        stats = engine.rebalance_stats
        assert stats.moved_to_heavy > 0
        assert stats.moved_to_light > 0
        assert engine.result() == evaluate_query_naive(query, shadow).as_dict()
        engine._driver.check_partitions()

    def test_indicator_supports_stay_consistent(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(a, a % 4) for a in range(40)]),
                "S": (("B", "C"), [(b % 4, b) for b in range(40)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        stream = skew_shift_stream("R", 2, 40, hot_key=1, key_position=1, seed=8)
        for update in stream:
            engine.apply(update)
            for triple in engine._skew_plan.indicator_triples:
                assert triple.check_support()

    def test_rebalancing_disabled_skips_all_rebalances(self):
        engine = DynamicEngine(PATH, epsilon=0.5, enable_rebalancing=False).load(
            empty_path_database()
        )
        engine.apply_stream(growth_stream("R", 2, 60, domain=6, seed=9))
        stats = engine.rebalance_stats
        assert stats.major_rebalances == 0
        assert stats.minor_rebalances == 0

    def test_epsilon_zero_has_threshold_one(self):
        """With ε = 0 the threshold is 1: every existing key is heavy."""
        database = random_database(schemas_for(PATH), tuples_per_relation=20, seed=3)
        engine = DynamicEngine(PATH, epsilon=0.0).load(database)
        assert engine.threshold == pytest.approx(1.0)
        for partition in engine._skew_plan.partitions:
            assert len(partition.light) == 0

    def test_epsilon_one_keeps_everything_light_on_uniform_data(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(a, a) for a in range(20)]),
                "S": (("B", "C"), [(b, b) for b in range(20)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=1.0).load(database)
        for partition in engine._skew_plan.partitions:
            assert len(partition.light) == len(partition.base)


class TestRebalanceStats:
    def test_stats_dictionary_shape(self):
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        engine.update("R", (1, 2), 1)
        stats = engine.rebalance_stats.as_dict()
        assert set(stats) == {
            "updates",
            "batches",
            "minor_rebalances",
            "major_rebalances",
            "moved_to_light",
            "moved_to_heavy",
            "retunes",
        }
        assert stats["updates"] == 1


class TestThresholdSingleSourceOfTruth:
    """Satellite: core/api.py and ivm/rebalance.py must agree on θ, always."""

    def _live_size_threshold(self, engine):
        """The formula api.py used to recompute — kept here to prove it drifts."""
        return max(1.0, float(engine.database.size)) ** engine.epsilon

    def test_threshold_identical_across_a_doubling_boundary(self):
        """Insert past M: engine and driver report one θ at every point."""
        engine = DynamicEngine(PATH, epsilon=0.5).load(
            random_database(schemas_for(PATH), tuples_per_relation=8, seed=2)
        )
        driver = engine._driver
        base_before = driver.threshold_base
        drifted_somewhere = False
        for i in range(2 * base_before):
            engine.update("R", (1000 + i, i % 7), 1)
            # both public code paths and the Definition 51 derivation agree
            assert engine.threshold == driver.threshold
            assert engine.threshold == engine.threshold_base**engine.epsilon
            assert engine.threshold_base == driver.threshold_base
            # invariant probe consumes the same θ internally
            engine.check_invariants()
            if self._live_size_threshold(engine) != driver.threshold:
                drifted_somewhere = True
        assert driver.threshold_base > base_before  # the boundary was crossed
        assert engine.rebalance_stats.major_rebalances >= 1
        # the regression this guards against: a live-size recomputation
        # disagrees with the driver's M between rebalances, so any code
        # path using it would classify keys inconsistently
        assert drifted_somewhere

    def test_threshold_identical_across_retune(self):
        engine = DynamicEngine(PATH, epsilon=0.25).load(
            random_database(schemas_for(PATH), tuples_per_relation=30, seed=4)
        )
        engine.retune(0.75)
        assert engine.threshold == engine._driver.threshold
        assert engine.threshold_base == engine._driver.threshold_base

    def test_static_threshold_frozen_at_load(self):
        """Static mode pins θ at materialization time; later mutation of a
        shared database must not drift the reported threshold."""
        from repro import StaticEngine

        database = random_database(schemas_for(PATH), tuples_per_relation=20, seed=6)
        engine = StaticEngine(PATH, epsilon=0.5, copy_database=False).load(database)
        frozen = engine.threshold
        assert frozen == engine.threshold_base**0.5
        database.relation("R").insert((999, 999))
        assert engine.threshold == frozen


class TestEpsilonBoundaryClassification:
    """Satellite: θ ∈ {1, 2} — strict and loose classification must agree.

    With integer degrees the loose bounds θ/2 and 3θ/2 leave no room for
    oscillation: a key moves to heavy exactly when its light degree reaches
    ⌈3θ/2⌉, never moves back above θ/2, and a strict repartition is a fixed
    point of the minor-rebalance check.  These tests pin the audited
    boundary semantics at the two smallest thresholds, where an off-by-one
    between ``<`` and ``>=`` would make minor rebalancing oscillate.
    """

    def _engine_with_threshold(self, theta):
        import math

        database = Database.from_dict(
            {
                "R": (("A", "B"), [(i, 100 + i) for i in range(6)]),
                "S": (("B", "C"), [(100 + i, i) for i in range(6)]),
            }
        )
        size = database.size
        base = 2 * size + 1
        epsilon = 0.0 if theta == 1 else math.log(theta) / math.log(base)
        engine = DynamicEngine(PATH, epsilon=epsilon).load(database)
        assert engine.threshold == pytest.approx(theta)
        return engine

    def _r_partition(self, engine):
        return next(
            partition
            for partition in engine._skew_plan.partitions.partitions()
            if partition.base.name == "R"
        )

    @pytest.mark.parametrize("theta", [1, 2])
    def test_boundary_degrees_move_exactly_once(self, theta):
        """Degree 0→5→0: light at 1, heavy at ⌈3θ/2⌉, gone at 0 — no churn."""
        engine = self._engine_with_threshold(theta)
        partition = self._r_partition(engine)
        key = (55,)
        move_up = 2 if theta == 1 else 3  # smallest integer ≥ 3θ/2
        observed = []
        state = None
        for tup, mult in [((i, 55), 1) for i in range(5)] + [
            ((i, 55), -1) for i in reversed(range(5))
        ]:
            engine.update("R", tup, mult)
            engine.check_invariants()
            degree = partition.base_degree(key)
            now = partition.is_light_key(key) if degree else None
            if now != state:
                observed.append((degree, now))
                state = now
        assert observed == [(1, True), (move_up, False), (0, None)]

    @pytest.mark.parametrize("theta", [1, 2])
    def test_minor_check_is_idempotent_at_every_degree(self, theta):
        """Re-running the minor-rebalance check must never move a key again."""
        engine = self._engine_with_threshold(theta)
        driver = engine._driver
        partition = self._r_partition(engine)
        key = (55,)
        for tup, mult in [((i, 55), 1) for i in range(5)] + [
            ((i, 55), -1) for i in reversed(range(5))
        ]:
            engine.update("R", tup, mult)
            before = (partition.light_degree(key), partition.base_degree(key))
            driver._check_partition_key(
                partition, key, (0, 55), "R", driver.threshold
            )
            after = (partition.light_degree(key), partition.base_degree(key))
            assert before == after, (
                f"theta={theta}: minor check oscillated at degrees {before}"
            )

    @pytest.mark.parametrize("theta", [1, 2])
    def test_strict_partition_is_a_fixed_point_of_the_minor_check(self, theta):
        engine = self._engine_with_threshold(theta)
        for update in skew_shift_stream("R", 2, 30, hot_key=3, seed=1):
            engine.apply(update)
        driver = engine._driver
        driver._major_rebalance()  # strict repartition at the current θ
        snapshot = {
            partition.base.name: sorted(map(tuple, partition.light_keys()))
            for partition in engine._skew_plan.partitions.partitions()
        }
        for partition in engine._skew_plan.partitions.partitions():
            for key in list(partition.base.distinct_keys(partition.keys)):
                witness = next(iter(partition.base.slice(partition.keys, key)))
                driver._check_partition_key(
                    partition, key, witness, partition.base.name, driver.threshold
                )
        after = {
            partition.base.name: sorted(map(tuple, partition.light_keys()))
            for partition in engine._skew_plan.partitions.partitions()
        }
        assert snapshot == after

    def test_epsilon_boundaries_match_naive_under_churn(self):
        """End-to-end pin: ε ∈ {0, 1} engines track the oracle through churn."""
        from repro.baselines import NaiveRecomputeEngine

        database = random_database(schemas_for(PATH), tuples_per_relation=12, seed=8)
        stream = list(skew_shift_stream("R", 2, 60, hot_key=2, seed=2))
        for epsilon in (0.0, 1.0):
            engine = DynamicEngine(PATH, epsilon=epsilon).load(database)
            oracle = NaiveRecomputeEngine(PATH).load(database)
            for update in stream:
                engine.apply(update)
                oracle.apply(update)
                engine.check_invariants()
            assert dict(engine.result()) == dict(oracle.result())


class TestRebalanceStatsRoundTrip:
    """Satellite: every counter — retunes included — survives serialization."""

    def _full_stats(self):
        from repro.ivm.rebalance import RebalanceStats

        return RebalanceStats(
            updates=7,
            batches=3,
            minor_rebalances=5,
            major_rebalances=2,
            moved_to_light=11,
            moved_to_heavy=13,
            retunes=4,
        )

    def test_as_dict_from_dict_round_trip_with_all_fields_nonzero(self):
        from repro.ivm.rebalance import RebalanceStats

        stats = self._full_stats()
        raw = stats.as_dict()
        assert all(value != 0 for value in raw.values())
        assert RebalanceStats.from_dict(raw) == stats

    def test_add_and_merged_accumulate_retunes(self):
        from repro.ivm.rebalance import RebalanceStats

        total = RebalanceStats.merged([self._full_stats(), self._full_stats()])
        assert total.retunes == 8
        assert total.updates == 14
        accumulated = self._full_stats().add(self._full_stats())
        assert accumulated.retunes == 8

    def test_from_dict_tolerates_legacy_payloads_without_retunes(self):
        """Dicts recorded before the counter existed default to zero."""
        from repro.ivm.rebalance import RebalanceStats

        legacy = self._full_stats().as_dict()
        del legacy["retunes"]
        assert RebalanceStats.from_dict(legacy).retunes == 0

    def test_sharded_fold_up_keeps_retunes(self):
        from repro import ShardedEngine

        engine = ShardedEngine(PATH, shards=4, epsilon=0.5, executor="serial")
        engine.load(
            random_database(schemas_for(PATH), tuples_per_relation=25, seed=12)
        )
        engine.retune(0.0)
        engine.retune(1.0)
        assert engine.rebalance_stats.retunes == 8  # 2 retunes × 4 shards
        engine.close()
