"""Tests for minor/major rebalancing and the size-invariant bookkeeping."""

import pytest

from repro import Database, DynamicEngine, Update
from repro.engine import evaluate_query_naive
from repro.query import parse_query
from repro.workloads import growth_stream, insert_stream_from_database, skew_shift_stream
from tests.conftest import random_database, schemas_for

PATH = "Q(A, C) = R(A, B), S(B, C)"


def empty_path_database():
    return Database.from_dict({"R": (("A", "B"), []), "S": (("B", "C"), [])})


class TestMajorRebalancing:
    def test_growth_triggers_major_rebalancing(self):
        """Starting from an empty database, M = 1, so inserts must double M."""
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        stream = growth_stream("R", 2, 80, domain=40, seed=1)
        engine.apply_stream(stream)
        stats = engine.rebalance_stats
        assert stats.major_rebalances >= 3
        # size invariant ⌊M/4⌋ ≤ N < M holds after the stream
        size = engine.database.size
        base = engine._driver.threshold_base
        assert base // 4 <= size < base

    def test_shrink_triggers_major_rebalancing(self):
        database = random_database(schemas_for(PATH), tuples_per_relation=60, seed=5, domain=50)
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        # delete almost everything: the database must fall below ⌊M/4⌋
        deletions = [
            Update(name, tup, -mult)
            for name in ("R", "S")
            for tup, mult in list(database.relation(name).items())
        ]
        for update in deletions[: len(deletions) - 2]:
            engine.apply(update)
        assert engine.rebalance_stats.major_rebalances >= 1
        size = engine.database.size
        base = engine._driver.threshold_base
        assert base // 4 <= size < base

    def test_results_stay_correct_across_major_rebalances(self):
        query = parse_query(PATH)
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        shadow = empty_path_database()
        stream = growth_stream("R", 2, 50, domain=6, seed=2)
        extra = growth_stream("S", 2, 50, domain=6, seed=3)
        for r_update, s_update in zip(stream, extra):
            for update in (r_update, s_update):
                engine.apply(update)
                shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        assert engine.rebalance_stats.major_rebalances >= 3
        assert engine.result() == evaluate_query_naive(query, shadow).as_dict()

    def test_partitions_strict_after_major_rebalance(self):
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        engine.apply_stream(growth_stream("R", 2, 64, domain=8, seed=4))
        # right after the last major rebalancing the loose invariant must hold
        engine._driver.check_partitions()


class TestMinorRebalancing:
    def test_hot_key_moves_to_heavy_and_back(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(a, a) for a in range(30)]),
                "S": (("B", "C"), [(b, b) for b in range(30)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        stream = skew_shift_stream("R", 2, 60, hot_key=0, key_position=1, seed=6)
        query = parse_query(PATH)
        shadow = database.copy()
        for update in stream:
            engine.apply(update)
            shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        stats = engine.rebalance_stats
        assert stats.moved_to_heavy > 0
        assert stats.moved_to_light > 0
        assert engine.result() == evaluate_query_naive(query, shadow).as_dict()
        engine._driver.check_partitions()

    def test_indicator_supports_stay_consistent(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(a, a % 4) for a in range(40)]),
                "S": (("B", "C"), [(b % 4, b) for b in range(40)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        stream = skew_shift_stream("R", 2, 40, hot_key=1, key_position=1, seed=8)
        for update in stream:
            engine.apply(update)
            for triple in engine._skew_plan.indicator_triples:
                assert triple.check_support()

    def test_rebalancing_disabled_skips_all_rebalances(self):
        engine = DynamicEngine(PATH, epsilon=0.5, enable_rebalancing=False).load(
            empty_path_database()
        )
        engine.apply_stream(growth_stream("R", 2, 60, domain=6, seed=9))
        stats = engine.rebalance_stats
        assert stats.major_rebalances == 0
        assert stats.minor_rebalances == 0

    def test_epsilon_zero_has_threshold_one(self):
        """With ε = 0 the threshold is 1: every existing key is heavy."""
        database = random_database(schemas_for(PATH), tuples_per_relation=20, seed=3)
        engine = DynamicEngine(PATH, epsilon=0.0).load(database)
        assert engine.threshold == pytest.approx(1.0)
        for partition in engine._skew_plan.partitions:
            assert len(partition.light) == 0

    def test_epsilon_one_keeps_everything_light_on_uniform_data(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(a, a) for a in range(20)]),
                "S": (("B", "C"), [(b, b) for b in range(20)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=1.0).load(database)
        for partition in engine._skew_plan.partitions:
            assert len(partition.light) == len(partition.base)


class TestRebalanceStats:
    def test_stats_dictionary_shape(self):
        engine = DynamicEngine(PATH, epsilon=0.5).load(empty_path_database())
        engine.update("R", (1, 2), 1)
        stats = engine.rebalance_stats.as_dict()
        assert set(stats) == {
            "updates",
            "batches",
            "minor_rebalances",
            "major_rebalances",
            "moved_to_light",
            "moved_to_heavy",
        }
        assert stats["updates"] == 1
