"""Tests for query planning/validation and the public engine API surface."""

import pytest

from repro import Database, DynamicEngine, HierarchicalEngine, StaticEngine
from repro.core.planner import (
    coerce_query,
    instantiate_plan,
    plan_query,
    validate_database,
    validate_query,
)
from repro.exceptions import (
    ReproError,
    SchemaError,
    UnknownRelationError,
    UnsupportedQueryError,
)
from repro.query import parse_query
from tests.conftest import random_database, schemas_for

PATH = "Q(A, C) = R(A, B), S(B, C)"


class TestValidation:
    def test_coerce_accepts_string_and_query(self):
        q = parse_query(PATH)
        assert coerce_query(PATH) == q
        assert coerce_query(q) is q

    def test_coerce_rejects_other_types(self):
        with pytest.raises(UnsupportedQueryError):
            coerce_query(42)

    def test_non_hierarchical_query_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            plan_query("Q(A, C) = R(A, B), S(B, C), T(C)")

    def test_repeated_relation_symbols_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            plan_query("Q(A) = R(A, B), R(B, C)")

    def test_empty_schema_atom_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            plan_query("Q(A) = R(A), S()")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            validate_query(parse_query(PATH), mode="streaming")

    def test_validate_database_missing_relation(self):
        database = Database.from_dict({"R": (("A", "B"), [])})
        with pytest.raises(UnknownRelationError):
            validate_database(parse_query(PATH), database)

    def test_validate_database_arity_mismatch(self):
        database = Database.from_dict(
            {"R": (("A", "B", "Z"), []), "S": (("B", "C"), [])}
        )
        with pytest.raises(SchemaError):
            validate_database(parse_query(PATH), database)

    def test_plan_query_reports_widths_and_classes(self):
        plan = plan_query(PATH, mode="dynamic")
        assert plan.static_width == pytest.approx(2.0)
        assert plan.dynamic_width == pytest.approx(1.0)
        assert plan.classification.hierarchical
        assert plan.canonical_order.is_canonical()
        assert "static width" in plan.describe()

    def test_expected_exponents(self):
        plan = plan_query(PATH, mode="dynamic")
        exps = plan.expected_exponents(0.5)
        assert exps == {"preprocessing": 1.5, "delay": 0.5, "update": 0.5}
        static_exps = plan_query(PATH, mode="static").expected_exponents(1.0)
        assert "update" not in static_exps

    def test_instantiate_plan_builds_trees(self):
        database = random_database(schemas_for(PATH), tuples_per_relation=10, seed=1)
        plan = plan_query(PATH, mode="dynamic")
        skew = instantiate_plan(plan, database)
        assert skew.all_trees()


class TestEngineAPI:
    def make_database(self):
        return random_database(schemas_for(PATH), tuples_per_relation=15, seed=2)

    def test_epsilon_bounds_enforced(self):
        with pytest.raises(ValueError):
            HierarchicalEngine(PATH, epsilon=1.5)
        with pytest.raises(ValueError):
            HierarchicalEngine(PATH, epsilon=-0.1)

    def test_properties_before_and_after_load(self):
        engine = HierarchicalEngine(PATH, epsilon=0.5)
        assert engine.static_width == pytest.approx(2.0)
        assert engine.dynamic_width == pytest.approx(1.0)
        with pytest.raises(ReproError):
            engine.view_size()
        with pytest.raises(ReproError):
            _ = engine.threshold
        engine.load(self.make_database())
        assert engine.view_size() > 0
        assert engine.threshold > 0
        assert engine.preprocessing_seconds is not None

    def test_expected_exponents_on_engine(self):
        engine = HierarchicalEngine(PATH, epsilon=0.25)
        assert engine.expected_exponents()["preprocessing"] == pytest.approx(1.25)

    def test_explain_contains_plan_and_trees(self):
        engine = HierarchicalEngine(PATH, epsilon=0.5).load(self.make_database())
        text = engine.explain()
        assert "static width" in text
        assert "strategy tree" in text
        assert "epsilon: 0.5" in text

    def test_static_and_dynamic_subclasses(self):
        static = StaticEngine(PATH)
        dynamic = DynamicEngine(PATH)
        assert static.mode == "static"
        assert dynamic.mode == "dynamic"

    def test_classification_property(self):
        engine = HierarchicalEngine(PATH)
        assert "hierarchical" in engine.classification.classes

    def test_insert_delete_helpers(self):
        database = Database.from_dict(
            {"R": (("A", "B"), []), "S": (("B", "C"), [(0, 1)])}
        )
        engine = DynamicEngine(PATH).load(database)
        engine.insert("R", (1, 0))
        assert engine.result() == {(1, 1): 1}
        engine.delete("R", (1, 0))
        assert engine.result() == {}

    def test_copy_database_false_shares_state(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 0)]), "S": (("B", "C"), [(0, 1)])}
        )
        engine = DynamicEngine(PATH, copy_database=False).load(database)
        engine.update("R", (2, 0), 1)
        # the caller's database object was mutated because copy was disabled
        assert database.relation("R").multiplicity((2, 0)) == 1

    def test_rebalance_stats_none_for_static(self):
        engine = StaticEngine(PATH).load(self.make_database())
        assert engine.rebalance_stats is None

    def test_repr_mentions_query(self):
        assert "R(A, B)" in repr(HierarchicalEngine(PATH))
