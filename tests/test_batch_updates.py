"""Batched update ingestion: consolidation, equivalence, and rebalancing."""

from __future__ import annotations

import pytest

from repro import Database, DynamicEngine, StaticEngine, Update, UpdateBatch, UpdateStream
from repro.data.update import as_batch, iter_batches
from repro.engine import evaluate_query_naive
from repro.exceptions import UnsupportedQueryError
from repro.query import parse_query
from repro.workloads import growth_stream, mixed_stream, skew_shift_stream

from tests.conftest import random_database, schemas_for

PATH = "Q(A, C) = R(A, B), S(B, C)"


# ----------------------------------------------------------------------
# (b) net-effect consolidation
# ----------------------------------------------------------------------
class TestUpdateBatchConsolidation:
    def test_insert_delete_pairs_cancel(self):
        batch = UpdateBatch(
            [Update("R", (1, 2), 1), Update("R", (1, 2), -1)]
        )
        assert batch.is_empty()
        assert len(batch) == 0
        assert batch.source_count == 2
        assert batch.relations() == ()

    def test_same_tuple_deltas_merge(self):
        batch = UpdateBatch(
            [
                Update("R", (1, 2), 1),
                Update("R", (1, 2), 3),
                Update("R", (7, 8), -2),
            ]
        )
        assert dict(batch.delta_for("R")) == {(1, 2): 4, (7, 8): -2}
        assert batch.source_count == 3
        assert len(batch) == 2

    def test_groups_by_relation(self):
        batch = UpdateBatch(
            [
                Update("R", (1, 2), 1),
                Update("S", (2, 3), 1),
                Update("R", (4, 5), -1),
            ]
        )
        assert set(batch.relations()) == {"R", "S"}
        assert dict(batch.delta_for("S")) == {(2, 3): 1}
        assert sorted(
            (u.relation, u.tuple, u.multiplicity) for u in batch.updates()
        ) == [("R", (1, 2), 1), ("R", (4, 5), -1), ("S", (2, 3), 1)]

    def test_grouped_by_key(self):
        batch = UpdateBatch(
            [
                Update("R", (1, 10), 1),
                Update("R", (2, 10), 1),
                Update("R", (3, 20), 1),
            ]
        )
        grouped = batch.grouped_by_key("R", key_of=lambda tup: (tup[1],))
        assert grouped == {
            (10,): {(1, 10): 1, (2, 10): 1},
            (20,): {(3, 20): 1},
        }

    def test_apply_to_database(self):
        database = Database.from_dict({"R": (("A", "B"), [(1, 2)])})
        batch = UpdateBatch(
            [Update("R", (1, 2), -1), Update("R", (3, 4), 2)]
        )
        batch.apply_to(database)
        assert database.relation("R").as_dict() == {(3, 4): 2}

    def test_as_batch_coercion(self):
        stream = UpdateStream([Update("R", (1, 2), 1)])
        batch = as_batch(stream)
        assert isinstance(batch, UpdateBatch)
        assert as_batch(batch) is batch

    def test_stream_batches_chunking(self):
        stream = UpdateStream(
            [Update("R", (i, i), 1) for i in range(10)]
        )
        batches = list(stream.batches(4))
        assert [b.source_count for b in batches] == [4, 4, 2]
        assert sum(len(b) for b in batches) == 10
        assert stream.consolidated().source_count == 10
        with pytest.raises(ValueError):
            list(iter_batches(stream, 0))


# ----------------------------------------------------------------------
# (a) batch ≡ sequential on randomized hierarchical workloads
# ----------------------------------------------------------------------
EQUIVALENCE_QUERIES = [
    "Q(A, C) = R(A, B), S(B, C)",
    "Q(A) = R(A, B), S(B)",
    "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",
    "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)",
]


class TestBatchSequentialEquivalence:
    @pytest.mark.parametrize("query_text", EQUIVALENCE_QUERIES)
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_matches_sequential_and_ground_truth(self, query_text, batch_size):
        database = random_database(
            schemas_for(query_text), tuples_per_relation=60, domain=12, seed=5
        )
        stream = mixed_stream(database, 150, seed=6, domain=12)

        sequential = DynamicEngine(query_text, epsilon=0.5).load(database)
        sequential.apply_stream(stream)

        batched = DynamicEngine(query_text, epsilon=0.5).load(database)
        for batch in stream.batches(batch_size):
            batched.apply_batch(batch)

        shadow = database.copy()
        stream.apply_to(shadow)
        truth = evaluate_query_naive(parse_query(query_text), shadow).as_dict()

        assert batched.result() == sequential.result() == truth
        # the deferred rebalance check restored every partition invariant
        batched._driver.check_partitions()
        for triple in batched._skew_plan.indicator_triples:
            assert triple.check_support()

    def test_apply_stream_batch_size_argument(self):
        database = random_database(schemas_for(PATH), seed=9)
        stream = mixed_stream(database, 80, seed=10, domain=8)
        chunked = DynamicEngine(PATH, epsilon=0.5).load(database)
        chunked.apply_stream(stream, batch_size=16)
        sequential = DynamicEngine(PATH, epsilon=0.5).load(database)
        sequential.apply_stream(stream)
        assert chunked.result() == sequential.result()
        assert chunked.rebalance_stats.batches == 5
        assert chunked.rebalance_stats.updates == 80

    def test_empty_and_cancelled_batches_are_noops(self):
        database = random_database(schemas_for(PATH), seed=11)
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        before = engine.result()
        engine.apply_batch([])
        engine.apply_batch(
            [Update("R", (100, 100), 1), Update("R", (100, 100), -1)]
        )
        assert engine.result() == before
        assert engine.rebalance_stats.batches == 2
        assert engine.rebalance_stats.updates == 2

    def test_rejected_batch_is_all_or_nothing(self):
        from repro.exceptions import RejectedUpdateError

        database = Database.from_dict(
            {
                "R": (("A", "B"), [(1, 10), (2, 20)]),
                "S": (("B", "C"), [(10, 5), (20, 6)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        before_result = engine.result()
        before_r = engine.database.relation("R").as_dict()
        with pytest.raises(RejectedUpdateError):
            engine.apply_batch(
                [
                    Update("R", (3, 10), 1),      # valid insert...
                    Update("R", (9, 9), -1),      # ...but this over-deletes
                    Update("S", (10, 7), 1),
                ]
            )
        # the up-front validation rejected the batch before any mutation
        assert engine.database.relation("R").as_dict() == before_r
        assert engine.result() == before_result

    def test_apply_batch_requires_dynamic_mode(self):
        database = random_database(schemas_for(PATH), seed=12)
        engine = StaticEngine(PATH, epsilon=0.5)
        engine.load(database)
        with pytest.raises(UnsupportedQueryError):
            engine.apply_batch([Update("R", (1, 2), 1)])

    @pytest.mark.parametrize("query_text", EQUIVALENCE_QUERIES[:2])
    def test_baselines_batched_match_ground_truth(self, query_text):
        from repro.baselines import (
            FirstOrderIVMEngine,
            NaiveRecomputeEngine,
        )

        database = random_database(
            schemas_for(query_text), tuples_per_relation=40, domain=10, seed=13
        )
        stream = mixed_stream(database, 90, seed=14, domain=10)
        shadow = database.copy()
        stream.apply_to(shadow)
        truth = evaluate_query_naive(parse_query(query_text), shadow).as_dict()
        for factory in (FirstOrderIVMEngine, NaiveRecomputeEngine):
            engine = factory(query_text)
            engine.load(database)
            engine.apply_stream(stream, batch_size=25)
            assert engine.result() == truth, factory.name

    def test_free_connex_baseline_batched(self):
        from repro.baselines import FreeConnexEngine

        query_text = "Q(A, B) = R(A, B), S(B, C)"
        database = random_database(
            schemas_for(query_text), tuples_per_relation=40, domain=10, seed=15
        )
        stream = mixed_stream(database, 90, seed=16, domain=10)
        shadow = database.copy()
        stream.apply_to(shadow)
        truth = evaluate_query_naive(parse_query(query_text), shadow).as_dict()
        engine = FreeConnexEngine(query_text)
        engine.load(database)
        engine.apply_stream(stream, batch_size=30)
        assert engine.result() == truth


# ----------------------------------------------------------------------
# (c) deferred rebalancing across batch boundaries
# ----------------------------------------------------------------------
class TestBatchRebalancing:
    def _skewed_engine(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(i, i % 4) for i in range(24)]),
                "S": (("B", "C"), [(i % 4, i) for i in range(24)]),
            }
        )
        return DynamicEngine(PATH, epsilon=0.5).load(database)

    def test_minor_rebalance_fires_when_batch_crosses_threshold(self):
        engine = self._skewed_engine()
        # pile one join key far past the heavy threshold inside single batches
        stream = skew_shift_stream("R", 2, 160, hot_key=3, seed=17)
        for batch in stream.batches(40):
            engine.apply_batch(batch)
        stats = engine.rebalance_stats
        assert stats.minor_rebalances > 0
        assert stats.moved_to_heavy > 0
        # the key came back below the threshold at the end of the stream
        assert stats.moved_to_light > 0
        engine._driver.check_partitions()

    def test_major_rebalance_fires_when_batch_outgrows_threshold_base(self):
        engine = self._skewed_engine()
        driver = engine._driver
        base_before = driver.threshold_base
        # one batch that more than doubles the database blows the size
        # invariant ⌊M/4⌋ ≤ N < M; the deferred check must double M (possibly
        # several times) and run exactly one major rebalance for the batch.
        stream = growth_stream("R", 2, 4 * base_before, domain=10_000, seed=18)
        engine.apply_batch(stream)
        stats = engine.rebalance_stats
        assert stats.major_rebalances == 1
        assert stats.batches == 1
        assert driver.threshold_base > 2 * base_before
        assert driver._size_invariant_holds()
        engine._driver.check_partitions()
        # result still matches ground truth after the rebuild
        shadow = engine.database.copy()
        truth = evaluate_query_naive(parse_query(PATH), shadow).as_dict()
        assert engine.result() == truth

    def test_shrinking_batch_halves_threshold_base(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(i, i) for i in range(64)]),
                "S": (("B", "C"), [(i, i) for i in range(64)]),
            }
        )
        engine = DynamicEngine(PATH, epsilon=0.5).load(database)
        driver = engine._driver
        base_before = driver.threshold_base
        deletes = [Update("R", (i, i), -1) for i in range(64)]
        deletes += [Update("S", (i, i), -1) for i in range(60)]
        engine.apply_batch(deletes)
        assert driver.threshold_base < base_before
        assert driver._size_invariant_holds()
        assert engine.rebalance_stats.major_rebalances == 1
        assert engine.result() == {}
