"""Metamorphic properties, driven by Hypothesis over the degree knobs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FirstOrderIVMEngine, NaiveRecomputeEngine
from repro.conformance import (
    DataProfile,
    check_batch_permutation_invariance,
    check_insert_delete_noop,
    check_partition_union,
    random_database,
    random_labeled_query,
    random_update_stream,
)
from repro.core.api import HierarchicalEngine

# the degree-distribution knobs of workloads/generators.py, as strategies
profiles = st.builds(
    DataProfile,
    tuples_per_relation=st.integers(min_value=4, max_value=18),
    domain=st.integers(min_value=3, max_value=8),
    skew=st.sampled_from((0.0, 0.8, 2.0)),
    heavy_fraction=st.sampled_from((0.0, 0.4)),
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
epsilons = st.sampled_from((0.0, 0.5, 1.0))


def _workload(seed: int, profile: DataProfile, updates: int):
    rng = random.Random(seed)
    labeled = random_labeled_query(rng)
    database = random_database(labeled.query, profile, seed=rng.randrange(1 << 30))
    stream = random_update_stream(
        database, updates, profile, delete_fraction=0.4, seed=rng.randrange(1 << 30)
    )
    return labeled.query, database, list(stream)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, profile=profiles, epsilon=epsilons)
def test_insert_then_delete_is_a_noop(seed, profile, epsilon):
    query, database, updates = _workload(seed, profile, updates=12)
    check_insert_delete_noop(
        lambda: HierarchicalEngine(query, epsilon=epsilon), database, updates
    )


@settings(max_examples=15, deadline=None)
@given(seed=seeds, profile=profiles, epsilon=epsilons)
def test_batch_permutation_is_result_invariant(seed, profile, epsilon):
    query, database, updates = _workload(seed, profile, updates=15)
    check_batch_permutation_invariance(
        lambda: HierarchicalEngine(query, epsilon=epsilon),
        database,
        updates,
        random.Random(seed),
    )


@settings(max_examples=15, deadline=None)
@given(seed=seeds, profile=profiles, epsilon=epsilons, parts=st.integers(2, 5))
def test_partitioned_stream_equals_the_whole(seed, profile, epsilon, parts):
    query, database, updates = _workload(seed, profile, updates=18)
    check_partition_union(
        lambda: HierarchicalEngine(query, epsilon=epsilon), database, updates, parts
    )


@pytest.mark.parametrize("factory", [NaiveRecomputeEngine, FirstOrderIVMEngine])
def test_metamorphic_properties_hold_for_baselines_too(factory):
    query, database, updates = _workload(7, DataProfile(tuples_per_relation=10), 15)
    check_insert_delete_noop(lambda: factory(query), database, updates)
    check_batch_permutation_invariance(
        lambda: factory(query), database, updates, random.Random(0)
    )
    check_partition_union(lambda: factory(query), database, updates, parts=3)
