"""Process-kill integration tests: ShardSupervisor over real worker deaths.

The headline scenario: a sharded deployment with per-shard durability,
one worker SIGKILLed mid-stream, the supervisor restart-and-recovers
exactly that shard while the others keep serving, and the merged
enumeration afterwards equals the never-killed oracle.  The
deterministic variants arm ``REPRO_CRASH_POINT`` so workers die at an
exact WAL site, covering both reconciliation outcomes: a crash *before*
the record is durable (re-send) and a crash *after* fsync but before the
acknowledgement (skip — re-sending would double-apply).
"""

import os
import signal
import time
from contextlib import contextmanager

import pytest

from repro.core.api import HierarchicalEngine
from repro.data.database import Database
from repro.data.update import Update
from repro.durability import ShardSupervisor
from repro.durability.crashpoints import ENV_VAR
from repro.exceptions import DurabilityError, StaleStateError
from repro.sharding import ShardedEngine

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def make_database():
    database = Database()
    r = database.create_relation("R", ("A", "B"))
    s = database.create_relation("S", ("B", "C"))
    for tup in ((0, 1), (1, 1), (2, 2), (3, 3)):
        r.apply_delta(tup, 1)
    for tup in ((1, 10), (2, 11), (3, 12)):
        s.apply_delta(tup, 1)
    return database


# a stream that touches every shard of a small deployment repeatedly
STREAM = [
    Update("R", (4, 1), 1),
    Update("R", (5, 2), 1),
    Update("S", (1, 13), 1),
    Update("R", (6, 3), 1),
    Update("S", (2, 14), 1),
    Update("R", (7, 1), 1),
    Update("S", (3, 15), 1),
    Update("R", (8, 2), 1),
    Update("S", (1, 16), 1),
    Update("R", (9, 3), 1),
]


def oracle_result(updates=STREAM):
    engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5)
    engine.load(make_database())
    for update in updates:
        engine.apply(update)
    return dict(engine.result())


def sharded_twin_enumeration(shards, updates=STREAM):
    twin = ShardedEngine(PATH_QUERY, shards=shards, epsilon=0.5, executor="serial")
    twin.load(make_database())
    for update in updates:
        twin.apply(update)
    merged = list(twin.enumerate())
    twin.close()
    return merged


def start_supervised(tmp_path, shards=2, watch_interval=None):
    engine = ShardedEngine(
        PATH_QUERY,
        shards=shards,
        epsilon=0.5,
        executor="process",
        durability=str(tmp_path / "wal"),
    )
    engine.load(make_database())
    return ShardSupervisor(engine, watch_interval=watch_interval)


def kill_worker(engine, shard):
    """SIGKILL one worker process and wait for it to actually be gone."""
    process = engine._executor._processes[shard]
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=10)
    assert not process.is_alive()


@contextmanager
def armed_workers(spec):
    """Arm REPRO_CRASH_POINT for worker *startup* only.

    The variable must be set while the executor forks its workers (each
    worker re-arms from the environment) and removed before any recovery,
    so restarted workers come up unarmed and the deployment heals.
    """
    os.environ[ENV_VAR] = spec
    try:
        yield
    finally:
        os.environ.pop(ENV_VAR, None)


class TestSigkillMidStream:
    def test_kill_one_worker_recover_and_match_oracle(self, tmp_path):
        supervisor = start_supervised(tmp_path, shards=2)
        engine = supervisor.engine
        try:
            for update in STREAM[:4]:
                supervisor.apply(update)
            held = supervisor.snapshot()

            victim = engine.router.shard_of_update(STREAM[4])
            kill_worker(engine, victim)

            # the stream continues: the first command routed to the dead
            # shard trips WorkerDiedError, the supervisor restarts that
            # worker in recovery mode and reconciles, others keep serving
            for update in STREAM[4:]:
                supervisor.apply(update)

            assert supervisor.recoveries >= 1
            assert supervisor.result() == oracle_result()
            assert list(supervisor.enumerate()) == sharded_twin_enumeration(2)
            supervisor.check_invariants()

            # the held snapshot's shard-local capture died with the
            # worker: honest staleness, not silent wrong answers
            with pytest.raises(StaleStateError):
                dict(held.result())

            # a snapshot captured after recovery serves the merged state
            fresh = supervisor.snapshot()
            assert dict(fresh.result()) == oracle_result()
        finally:
            supervisor.close()

    def test_kill_during_batch_round(self, tmp_path):
        supervisor = start_supervised(tmp_path, shards=2)
        engine = supervisor.engine
        try:
            supervisor.apply_batch(STREAM[:4])
            victim = engine.router.shard_of_update(STREAM[4])
            kill_worker(engine, victim)
            # this batch spans both shards: the survivor applies, the dead
            # shard is recovered and its sub-batch reconciled (re-sent)
            supervisor.apply_batch(STREAM[4:])
            assert supervisor.recoveries >= 1
            assert supervisor.result() == oracle_result()
            supervisor.check_invariants()
        finally:
            supervisor.close()

    def test_watcher_thread_heals_idle_death(self, tmp_path):
        supervisor = start_supervised(tmp_path, shards=2, watch_interval=0.05)
        engine = supervisor.engine
        try:
            for update in STREAM[:6]:
                supervisor.apply(update)
            kill_worker(engine, 0)
            deadline = time.monotonic() + 10
            while supervisor.recoveries == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert supervisor.recoveries >= 1
            for update in STREAM[6:]:
                supervisor.apply(update)
            assert supervisor.result() == oracle_result()
        finally:
            supervisor.close()

    def test_read_path_recovers_dead_shard(self, tmp_path):
        supervisor = start_supervised(tmp_path, shards=2)
        try:
            for update in STREAM:
                supervisor.apply(update)
            kill_worker(supervisor.engine, 1)
            # reads broadcast to every shard, trip on the dead pipe, and
            # retry after recovery — no mutation needed to heal
            assert supervisor.result() == oracle_result()
            assert supervisor.recoveries >= 1
        finally:
            supervisor.close()


class TestDeterministicCrashSites:
    """Workers die at an exact WAL site via REPRO_CRASH_POINT."""

    def _run_stream_with_armed_workers(self, tmp_path, spec):
        with armed_workers(spec):
            supervisor = start_supervised(tmp_path, shards=2)
        # env is clear again: restarted workers must come up unarmed
        assert ENV_VAR not in os.environ
        try:
            for update in STREAM:
                supervisor.apply(update)
            result = dict(supervisor.result())
            recoveries = supervisor.recoveries
            supervisor.check_invariants()
        finally:
            supervisor.close()
        return result, recoveries

    def test_crash_before_append_is_resent(self, tmp_path):
        """wal-append crash: nothing durable, reconcile must re-send."""
        result, recoveries = self._run_stream_with_armed_workers(
            tmp_path, "wal-append:3"
        )
        assert recoveries >= 1
        assert result == oracle_result()

    def test_crash_after_fsync_is_skipped(self, tmp_path):
        """wal-fsync crash: the record IS durable but the ack died with
        the worker — reconcile must skip, or the update double-applies."""
        result, recoveries = self._run_stream_with_armed_workers(
            tmp_path, "wal-fsync:3"
        )
        assert recoveries >= 1
        assert result == oracle_result()

    def test_torn_write_is_repaired_on_recovery(self, tmp_path):
        """wal-torn crash: half a record on disk; the scan truncates it
        and the reconcile re-sends the lost command."""
        result, recoveries = self._run_stream_with_armed_workers(
            tmp_path, "wal-torn:4"
        )
        assert recoveries >= 1
        assert result == oracle_result()


class TestColdShardedRecovery:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_recover_matches_closed_deployment(self, tmp_path, executor):
        engine = ShardedEngine(
            PATH_QUERY,
            shards=2,
            epsilon=0.5,
            executor=executor,
            durability=str(tmp_path / "wal"),
        )
        engine.load(make_database())
        for update in STREAM:
            engine.apply(update)
        expected_versions = engine.shard_versions()
        expected = dict(engine.result())
        engine.close()

        recovered = ShardedEngine(
            PATH_QUERY,
            shards=2,
            epsilon=0.5,
            executor=executor,
            durability=str(tmp_path / "wal"),
        )
        recovered.recover()
        assert recovered.shard_versions() == expected_versions
        assert dict(recovered.result()) == expected
        assert list(recovered.enumerate()) == sharded_twin_enumeration(2)
        recovered.check_invariants()
        recovered.close()

    def test_serial_restart_shard_recovers_in_place(self, tmp_path):
        engine = ShardedEngine(
            PATH_QUERY,
            shards=2,
            epsilon=0.5,
            executor="serial",
            durability=str(tmp_path / "wal"),
        )
        engine.load(make_database())
        for update in STREAM:
            engine.apply(update)
        expected = dict(engine.result())
        engine._executor.restart_shard(0)
        assert dict(engine.result()) == expected
        engine.check_invariants()
        engine.close()

    def test_recover_without_durability_raises(self):
        engine = ShardedEngine(PATH_QUERY, shards=2, executor="serial")
        engine.load(make_database())
        with pytest.raises(DurabilityError):
            engine.recover()
        engine.close()


class TestSupervisorPreconditions:
    def test_supervisor_requires_durability(self):
        engine = ShardedEngine(PATH_QUERY, shards=2, executor="serial")
        engine.load(make_database())
        with pytest.raises(DurabilityError):
            ShardSupervisor(engine)
        engine.close()

    def test_supervisor_serves_normally_without_faults(self, tmp_path):
        supervisor = start_supervised(tmp_path, shards=2)
        try:
            supervisor.apply_stream(STREAM, batch_size=4)
            supervisor.retune(0.25)
            assert supervisor.recoveries == 0
            assert supervisor.result() == oracle_result()
            assert supervisor.count_distinct() == len(oracle_result())
        finally:
            supervisor.close()
