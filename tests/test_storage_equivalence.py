"""Observational equivalence of the dict and columnar storage backends.

The columnar backend is a drop-in replacement for the dict backend: same
results, same enumeration order, same index key/group orders, same
rejection points.  A Hypothesis property drives both backends through the
same random interleaving of inserts, deletes, clears, multiplicity writes,
index builds, probes and (columnar-only) compactions and diffs every
observable after every step; an engine-level test replays a rebalance-heavy
workload through :class:`~repro.core.api.HierarchicalEngine` under both
backends, retune included.

Also pins the key-normalisation contract at its audited call sites:
``ensure_index`` (and everything routed through it) normalises the *schema*
to relation order, so key tuples must be built in relation-schema order —
the tuple-addressed forms (``contains_key_of``/``degree_of``) exist so hot
callers never build key tuples at all.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import HierarchicalEngine
from repro.data.partition import Partition
from repro.data.relation import DictRelation, backend_class
from repro.data.storage import ColumnarRelation
from repro.workloads.scenarios import get_scenario

SCHEMA = ("A", "B")

_values = st.sampled_from([0, 1, 2, 3, True, 1.0, 2.0, "x", "y", 1 << 50])
_tuples = st.tuples(_values, _values)
_key_schemas = st.sampled_from([("A",), ("B",), ("A", "B")])

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("delta"), _tuples, st.integers(-2, 3)),
        st.tuples(st.just("set"), _tuples, st.integers(-1, 3)),
        st.tuples(st.just("index"), _key_schemas),
        st.tuples(st.just("probe"), _key_schemas, _tuples),
        st.tuples(st.just("invalidate")),
        st.tuples(st.just("compact")),
        st.tuples(st.just("clear")),
    ),
    max_size=60,
)


def _apply(relation, op):
    """Run one op; return (tag, payload) capturing every observable effect."""
    try:
        if op[0] == "delta":
            return ("ok", relation.apply_delta(op[1], op[2]))
        if op[0] == "set":
            return ("ok", relation.set_multiplicity(op[1], op[2]))
        if op[0] == "index":
            relation.ensure_index(op[1])
            return ("ok", None)
        if op[0] == "probe":
            return (
                "ok",
                (
                    relation.contains_key_of(op[1], op[2]),
                    relation.degree_of(op[1], op[2]),
                ),
            )
        if op[0] == "invalidate":
            return ("ok", relation.invalidate_indexes())
        if op[0] == "compact":
            # Dict backend has no row arrays to compact; equivalence means
            # compaction must be invisible, so it maps to a no-op there.
            if hasattr(relation, "compact"):
                relation.compact()
            return ("ok", None)
        if op[0] == "clear":
            return ("ok", relation.clear())
        raise AssertionError(f"unknown op {op!r}")
    except Exception as exc:  # compared by type below
        return ("raise", type(exc).__name__)


def _observe(relation):
    """Everything an engine can see: contents, order, index structure."""
    state = {"items": list(relation.items()), "len": len(relation)}
    for key_schema, index in sorted(relation._indexes.items()):
        keys = list(index.keys())
        state[("index", key_schema)] = [
            (key, list(index.group(key)), index.group_size(key)) for key in keys
        ]
    return state


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations=_operations)
def test_backends_observationally_identical(operations):
    dict_rel = DictRelation("R", SCHEMA)
    col_rel = ColumnarRelation("R", SCHEMA)
    for op in operations:
        assert _apply(dict_rel, op) == _apply(col_rel, op), op
        assert _observe(dict_rel) == _observe(col_rel), op


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    epsilon=st.sampled_from([0.1, 0.3, 0.5]),
)
def test_engines_agree_across_backends_with_rebalances(seed, epsilon):
    """Same adversarial stream, both backends, identical enumerations.

    The adversarial scenario flip-flops one join key across the heavy/light
    threshold, forcing minor and major rebalances; a mid-stream retune to a
    different ε exercises the strict repartition path as well.
    """
    scenario = get_scenario("adversarial")
    sequences = {}
    for backend in ("dict", "columnar"):
        cls = backend_class(backend)
        database = scenario.make_database(seed=seed, scale=0.2)
        # Rebuild the database under the pinned backend class.
        rebuilt = {}
        for relation in database.relations():
            rebuilt[relation.name] = cls(
                relation.name, relation.schema, dict(relation.items())
            )
        from repro.data.database import Database

        db = Database()
        for name, relation in rebuilt.items():
            db.add_relation(relation)
        updates = list(scenario.make_stream(database, count=120, seed=seed))
        engine = HierarchicalEngine(scenario.query, epsilon=epsilon).load(db)
        checkpoints = []
        for position, update in enumerate(updates):
            engine.apply(update)
            if position == len(updates) // 2:
                engine.retune(0.7)
                checkpoints.append(list(engine.enumerate()))
        checkpoints.append(list(engine.enumerate()))
        engine.check_invariants()
        sequences[backend] = checkpoints
    assert sequences["dict"] == sequences["columnar"]


# ----------------------------------------------------------------------
# key-normalisation pins (audited slice/slice_size/contains_key callers)
# ----------------------------------------------------------------------

@pytest.fixture(params=[DictRelation, ColumnarRelation])
def relation(request):
    rel = request.param("R", ("A", "B"))
    rel.apply_delta((1, 2), 1)
    rel.apply_delta((1, 3), 1)
    rel.apply_delta((4, 2), 1)
    return rel


def test_ensure_index_normalises_caller_schema_order(relation):
    # Logically equal requests share one index object...
    assert relation.ensure_index(("B", "A")) is relation.ensure_index(("A", "B"))
    # ...and its key tuples are in relation-schema order regardless of how
    # the caller spelled the schema: (A=1, B=2), never (B=2, A=1).
    assert relation.contains_key(("B", "A"), (1, 2))
    assert not relation.contains_key(("B", "A"), (2, 1))
    assert relation.slice_size(("B", "A"), (1, 2)) == 1
    assert relation.ensure_index(("B", "A")).key_of((1, 2)) == (1, 2)


def test_tuple_addressed_probes_match_key_built_probes(relation):
    # The maintenance pre-state capture and rebalance witness probes use
    # the tuple-addressed forms; they must agree with building the key by
    # hand in schema order.
    for keys in (("A",), ("B",), ("A", "B")):
        index = relation.ensure_index(keys)
        for tup in [(1, 2), (4, 3), (9, 9)]:
            key = index.key_of(tup)
            assert relation.contains_key_of(keys, tup) == relation.contains_key(
                keys, key
            )
            assert relation.degree_of(keys, tup) == relation.slice_size(keys, key)


def test_partition_normalises_key_schema(relation):
    # Partition.__init__ reorders the caller's key set into schema order;
    # every degree/containment helper then passes self.keys down, so the
    # key tuples it builds (via key_of) are schema-ordered by construction.
    partition = Partition(relation, ("B", "A"))
    assert partition.keys == ("A", "B")
    assert partition.key_of((1, 2)) == (1, 2)
    assert partition.base_degree((1, 2)) == 1
    single = Partition(relation, ("B",))
    assert single.keys == ("B",)
    assert single.base_degree((2,)) == 2
