"""Tests for the baseline engines (recompute, first-order IVM, full
materialization, free-connex views)."""

import pytest

from repro import Database, HierarchicalEngine
from repro.baselines import (
    FirstOrderIVMEngine,
    FreeConnexEngine,
    FullMaterializationEngine,
    NaiveRecomputeEngine,
)
from repro.engine import evaluate_query_naive
from repro.exceptions import ReproError, UnsupportedQueryError
from repro.query import parse_query
from repro.workloads import mixed_stream
from tests.conftest import random_database, schemas_for

PATH = "Q(A, C) = R(A, B), S(B, C)"
SEMIJOIN = "Q(A) = R(A, B), S(B)"
ALL_BASELINES = [NaiveRecomputeEngine, FirstOrderIVMEngine, FullMaterializationEngine]


def make_workload(text, seed=1):
    database = random_database(schemas_for(text), tuples_per_relation=25, seed=seed)
    stream = mixed_stream(database, 40, delete_fraction=0.3, domain=6, seed=seed + 1)
    return database, stream


class TestBaselineCorrectness:
    @pytest.mark.parametrize("engine_cls", ALL_BASELINES)
    @pytest.mark.parametrize("text", [PATH, SEMIJOIN])
    def test_static_result_matches_naive(self, engine_cls, text):
        database, _ = make_workload(text)
        truth = evaluate_query_naive(parse_query(text), database).as_dict()
        engine = engine_cls(text).load(database)
        assert engine.result() == truth

    @pytest.mark.parametrize("engine_cls", ALL_BASELINES)
    @pytest.mark.parametrize("text", [PATH, SEMIJOIN])
    def test_dynamic_result_matches_naive(self, engine_cls, text):
        database, stream = make_workload(text)
        engine = engine_cls(text).load(database)
        shadow = database.copy()
        for update in stream:
            engine.apply(update)
            shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        truth = evaluate_query_naive(parse_query(text), shadow).as_dict()
        assert engine.result() == truth

    @pytest.mark.parametrize("engine_cls", ALL_BASELINES)
    def test_baselines_match_ivm_epsilon_engine(self, engine_cls):
        """All engines — ours and the baselines — agree on the same stream."""
        database, stream = make_workload(PATH, seed=4)
        baseline = engine_cls(PATH).load(database)
        ours = HierarchicalEngine(PATH, epsilon=0.5).load(database)
        for update in stream:
            baseline.apply(update)
            ours.apply(update)
        assert baseline.result() == ours.result()

    def test_update_before_load_raises(self):
        engine = NaiveRecomputeEngine(PATH)
        with pytest.raises(ReproError):
            engine.update("R", (1, 2), 1)

    def test_preprocessing_time_recorded(self):
        database, _ = make_workload(PATH)
        engine = FirstOrderIVMEngine(PATH).load(database)
        assert engine.preprocessing_seconds is not None
        assert engine.preprocessing_seconds >= 0.0

    def test_first_order_ivm_unknown_relation(self):
        database, _ = make_workload(PATH)
        engine = FirstOrderIVMEngine(PATH).load(database)
        with pytest.raises(KeyError):
            engine.update("Z", (1, 2), 1)

    def test_full_materialization_reports_size(self):
        database, _ = make_workload(PATH)
        engine = FullMaterializationEngine(PATH).load(database)
        assert engine.materialized_size() == len(engine.result())

    def test_count_distinct_and_iteration(self):
        database, _ = make_workload(PATH)
        engine = NaiveRecomputeEngine(PATH).load(database)
        assert engine.count_distinct() == len(dict(iter(engine)))


class TestFreeConnexBaseline:
    def test_rejects_non_free_connex_queries(self):
        with pytest.raises(UnsupportedQueryError):
            FreeConnexEngine(PATH)

    def test_free_connex_query_accepted_and_correct(self):
        database, stream = make_workload(SEMIJOIN, seed=6)
        engine = FreeConnexEngine(SEMIJOIN).load(database)
        shadow = database.copy()
        for update in stream:
            engine.apply(update)
            shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        truth = evaluate_query_naive(parse_query(SEMIJOIN), shadow).as_dict()
        assert engine.result() == truth

    def test_constant_update_flag_follows_q_hierarchy(self):
        assert not FreeConnexEngine(SEMIJOIN).supports_constant_updates
        assert FreeConnexEngine("Q(A, B) = R(A, B), S(A)").supports_constant_updates

    def test_static_variant(self):
        database, _ = make_workload(SEMIJOIN, seed=8)
        engine = FreeConnexEngine(SEMIJOIN, dynamic=False).load(database)
        truth = evaluate_query_naive(parse_query(SEMIJOIN), database).as_dict()
        assert engine.result() == truth
