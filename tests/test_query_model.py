"""Tests for atoms and conjunctive queries."""

import pytest

from repro.exceptions import SchemaError, UnsupportedQueryError
from repro.query.atom import Atom, atom
from repro.query.conjunctive import ConjunctiveQuery, query
from repro.query.parser import parse_query


class TestAtom:
    def test_basic_properties(self):
        a = atom("R", "A", "B")
        assert a.relation == "R"
        assert a.variables == ("A", "B")
        assert a.arity == 2
        assert a.contains("A") and not a.contains("C")
        assert a.covers(["A"]) and not a.covers(["A", "C"])
        assert str(a) == "R(A, B)"

    def test_atoms_are_hashable_value_objects(self):
        assert atom("R", "A") == Atom("R", ("A",))
        assert len({atom("R", "A"), Atom("R", ("A",))}) == 1

    def test_repeated_variable_rejected(self):
        with pytest.raises(SchemaError):
            atom("R", "A", "A")

    def test_rename(self):
        assert atom("R", "A").rename("R2") == atom("R2", "A")


class TestConjunctiveQuery:
    def setup_method(self):
        self.q = parse_query("Q(A, C) = R(A, B), S(B, C)")

    def test_vocabulary(self):
        assert self.q.variables == {"A", "B", "C"}
        assert self.q.free_variables == {"A", "C"}
        assert self.q.bound_variables == {"B"}
        assert self.q.relation_names == ("R", "S")
        assert not self.q.is_full
        assert not self.q.is_boolean

    def test_atoms_of_variable(self):
        assert [a.relation for a in self.q.atoms_of("B")] == ["R", "S"]
        assert [a.relation for a in self.q.atoms_of("A")] == ["R"]

    def test_atom_for_relation(self):
        assert self.q.atom_for_relation("S").variables == ("B", "C")
        assert self.q.atom_for_relation("Z") is None

    def test_vars_and_free_of_atoms(self):
        atoms = self.q.atoms_of("B")
        assert self.q.vars_of_atoms(atoms) == {"A", "B", "C"}
        assert self.q.free_of_atoms(atoms) == {"A", "C"}

    def test_full_and_boolean_flags(self):
        assert parse_query("Q(A, B) = R(A, B)").is_full
        assert parse_query("Q() = R(A)").is_boolean

    def test_repeated_relation_symbols_detected(self):
        q = query(("A",), atom("R", "A", "B"), atom("R", "B", "C"))
        assert q.has_repeated_relation_symbols()

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(UnsupportedQueryError):
            query(("Z",), atom("R", "A"))

    def test_duplicate_head_variable_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            ConjunctiveQuery(("A", "A"), (atom("R", "A"),))

    def test_empty_body_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            ConjunctiveQuery(("A",), ())

    def test_equality_ignores_order_and_name(self):
        q1 = parse_query("Q(A, C) = R(A, B), S(B, C)")
        q2 = parse_query("P(C, A) = S(B, C), R(A, B)")
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_connected_components(self):
        q = parse_query("Q(A, C) = R(A, B), S(C, D), T(B, E)")
        components = q.connected_components()
        assert len(components) == 2
        sizes = sorted(len(c.atoms) for c in components)
        assert sizes == [1, 2]
        heads = sorted(tuple(c.head) for c in components)
        assert heads == [("A",), ("C",)]

    def test_single_component(self):
        assert len(self.q.connected_components()) == 1

    def test_restrict_to_atoms(self):
        sub = self.q.restrict_to_atoms([self.q.atoms[0]])
        assert sub.relation_names == ("R",)
        assert set(sub.head) == {"A"}

    def test_restrict_with_explicit_head(self):
        sub = self.q.restrict_to_atoms([self.q.atoms[0]], head=("A", "B"))
        assert set(sub.head) == {"A", "B"}

    def test_with_head(self):
        boolean = self.q.with_head(())
        assert boolean.is_boolean
        assert boolean.atoms == self.q.atoms

    def test_str_roundtrip_through_parser(self):
        assert parse_query(str(self.q)) == self.q
