"""Smoke tests: every example script runs end to end.

The heavier examples are parameterised down via monkeypatching where needed;
the goal is to guarantee the examples in the README never rot.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, monkeypatch, capsys):
    """Execute an example as __main__ and return its captured stdout."""
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_examples_directory_contents(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "retail_analytics.py", "matrix_multiplication.py",
                "social_feed.py", "tradeoff_exploration.py"} <= names

    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart.py", monkeypatch, capsys)
        assert "Static evaluation" in out
        assert "Dynamic evaluation" in out
        assert "result" in out

    def test_matrix_multiplication(self, monkeypatch, capsys):
        import repro.workloads.matrix as matrix_module

        original = matrix_module.matmul_database

        def small_matmul(n, density=0.15, seed=11):
            return original(20, density=density, seed=seed)

        monkeypatch.setattr(matrix_module, "matmul_database", small_matmul)
        # the example imports the symbol from repro.workloads, patch there too
        import repro.workloads as workloads_module

        monkeypatch.setattr(workloads_module, "matmul_database", small_matmul)
        out = run_example("matrix_multiplication.py", monkeypatch, capsys)
        assert "all match" in out

    def test_retail_analytics(self, monkeypatch, capsys):
        import repro.workloads.scenarios as scenarios
        import repro.workloads as workloads_module

        original_db = scenarios.retail_database
        original_stream = scenarios.retail_update_stream

        def small_db(**kwargs):
            return original_db(orders=300, returns=150, products=60, skew=1.2, seed=1)

        def small_stream(count, **kwargs):
            return original_stream(60, products=60, seed=2)

        for module in (scenarios, workloads_module):
            monkeypatch.setattr(module, "retail_database", small_db)
            monkeypatch.setattr(module, "retail_update_stream", small_stream)
        out = run_example("retail_analytics.py", monkeypatch, capsys)
        assert "orders/returns workload" in out
        assert "distinct (customer, region) pairs" in out

    def test_social_feed(self, monkeypatch, capsys):
        import repro.workloads.scenarios as scenarios
        import repro.workloads as workloads_module

        original_db = scenarios.social_database
        original_stream = scenarios.social_post_stream

        def small_db(**kwargs):
            return original_db(follows=300, posts=300, users=120, channels=40, skew=1.3, seed=3)

        def small_stream(count, **kwargs):
            return original_stream(50, channels=40, seed=4)

        for module in (scenarios, workloads_module):
            monkeypatch.setattr(module, "social_database", small_db)
            monkeypatch.setattr(module, "social_post_stream", small_stream)
        out = run_example("social_feed.py", monkeypatch, capsys)
        assert "social feed" in out

    def test_tradeoff_exploration(self, monkeypatch, capsys):
        # load the module without running main(), then drive a tiny sweep
        module_globals = runpy.run_path(
            str(EXAMPLES_DIR / "tradeoff_exploration.py"), run_name="not_main"
        )
        scaling = module_globals["scaling_experiment"]
        outcome = scaling(
            module_globals["QUERY"],
            lambda size: module_globals["path_query_database"](size, skew=1.1, seed=17),
            sizes=[120, 240],
            epsilon=0.5,
            updates_factory=lambda db, size: module_globals["mixed_stream"](db, 20, seed=18),
            delay_limit=200,
        )
        assert "preprocessing" in outcome["fits"]
