"""Elastic online resharding: snapshot-consistent split/merge of a live fleet.

The tentpole contract under test: ``ShardedEngine.reshard(k')`` must be
*invisible* — the resharded fleet is result- and order-equivalent to a
fresh ``k'``-shard deployment fed the same stream, snapshots captured
before the swap keep enumerating their exact capture through the retired
fleet, the facade version ticks exactly once (like a retune), and a
durable deployment recovers at exactly the old or the new count after a
crash anywhere inside the barrier — never a hybrid.  The satellites ride
along: the exactly-once accounting audit of the routed single-update
path, the empty-net-effect ``split_by`` boundary (including tail replay),
the MAAS-style capacity model on :class:`AdaptiveController`, and the
serving/networking integration.
"""

import asyncio
import socket
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.adaptive import (
    AdaptiveController,
    ShardCapacity,
    ShardCapacityConfig,
    WorkloadTelemetry,
)
from repro.core.api import HierarchicalEngine
from repro.core.serving import EngineServer
from repro.data.database import Database
from repro.data.update import Update, UpdateBatch, UpdateStream
from repro.durability import CrashPointInjector, SimulatedCrashError, injected
from repro.durability.manager import read_fleet_meta
from repro.exceptions import ReproError
from repro.net.client import EngineClient
from repro.net.server import ServerConfig, ServerThread
from repro.sharding import ShardedEngine

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def make_database():
    database = Database()
    r = database.create_relation("R", ("A", "B"))
    s = database.create_relation("S", ("B", "C"))
    for tup in ((0, 1), (1, 1), (2, 2), (3, 3)):
        r.apply_delta(tup, 1)
    for tup in ((1, 10), (2, 11), (3, 12)):
        s.apply_delta(tup, 1)
    return database


STREAM = [
    Update("R", (4, 1), 1),
    Update("R", (5, 2), 1),
    Update("S", (1, 13), 1),
    Update("R", (6, 3), 1),
    Update("S", (2, 14), 1),
    Update("R", (7, 1), 1),
    Update("S", (3, 15), 1),
    Update("R", (8, 2), 1),
    Update("S", (1, 16), 1),
    Update("R", (9, 3), 1),
]


def oracle_result(updates=STREAM):
    engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5)
    engine.load(make_database())
    for update in updates:
        engine.apply(update)
    return dict(engine.result())


def fresh_fleet_enumeration(shards, updates=STREAM, epsilon=0.5):
    fresh = ShardedEngine(PATH_QUERY, shards=shards, epsilon=epsilon, executor="serial")
    fresh.load(make_database())
    for update in updates:
        fresh.apply(update)
    merged = list(fresh.enumerate())
    fresh.close()
    return merged


def live_fleet(shards=2, updates=STREAM, **kwargs):
    kwargs.setdefault("epsilon", 0.5)
    kwargs.setdefault("executor", "serial")
    engine = ShardedEngine(PATH_QUERY, shards=shards, **kwargs)
    engine.load(make_database())
    for update in updates:
        engine.apply(update)
    return engine


# ---------------------------------------------------------------------------
# the tentpole: reshard == fresh fleet at the new count
# ---------------------------------------------------------------------------
class TestReshardEquivalence:
    @pytest.mark.parametrize("before,after", [(1, 2), (2, 4), (2, 7), (4, 2), (7, 1)])
    def test_reshard_matches_fresh_fleet(self, before, after):
        engine = live_fleet(shards=before)
        version_before = engine.version
        engine.reshard(after)
        try:
            assert engine.shards == after
            assert engine.version == version_before + 1
            assert list(engine.enumerate()) == fresh_fleet_enumeration(after)
            engine.check_invariants()
        finally:
            engine.close()

    def test_post_reshard_ingest_stays_equivalent(self):
        engine = live_fleet(shards=2, updates=STREAM[:5])
        engine.reshard(4)
        fresh = ShardedEngine(PATH_QUERY, shards=4, epsilon=0.5, executor="serial")
        fresh.load(make_database())
        for update in STREAM[:5]:
            fresh.apply(update)
        try:
            for update in STREAM[5:]:
                engine.apply(update)
                fresh.apply(update)
                assert list(engine.enumerate()) == list(fresh.enumerate())
            engine.check_invariants()
        finally:
            engine.close()
            fresh.close()

    def test_snapshot_pinned_across_reshard(self):
        engine = live_fleet(shards=2, updates=STREAM[:5])
        held = engine.snapshot()
        capture = list(held.enumerate())
        engine.reshard(4)
        for update in STREAM[5:]:
            engine.apply(update)
        try:
            # the held snapshot reads its exact capture through the
            # *retired* fleet, even after the new fleet mutated
            assert list(held.enumerate()) == capture
            assert dict(held.result()) == oracle_result(STREAM[:5])
        finally:
            held.close()
            engine.close()

    def test_retired_fleet_released_when_last_snapshot_closes(self):
        engine = live_fleet(shards=2)
        held = engine.snapshot()
        engine.reshard(4)
        retired = engine._retired_fleets[-1]
        assert not retired.closed  # pinned by the held snapshot
        held.close()
        assert retired.closed
        engine.close()

    def test_reshard_with_live_tail_between_phases(self):
        """Updates committed between the cut and the swap replay exactly."""
        engine = live_fleet(shards=2, updates=STREAM[:4])
        plan = engine.begin_reshard(3)
        # the writer keeps committing against the old fleet: a single
        # update, a consolidated batch, and a retune all land in the tail
        engine.apply(STREAM[4])
        batch = UpdateBatch()
        for update in STREAM[5:8]:
            batch.add(update)
        engine.apply_batch(batch)
        engine.retune(0.75)
        engine.build_reshard(plan)
        engine.apply(STREAM[8])  # and one more between build and finish
        engine.finish_reshard(plan)

        fresh = ShardedEngine(PATH_QUERY, shards=3, epsilon=0.5, executor="serial")
        fresh.load(make_database())
        for update in STREAM[:5]:
            fresh.apply(update)
        fresh_batch = UpdateBatch()
        for update in STREAM[5:8]:
            fresh_batch.add(update)
        fresh.apply_batch(fresh_batch)
        fresh.retune(0.75)
        fresh.apply(STREAM[8])
        try:
            assert engine.shards == 3
            assert engine.epsilon == 0.75
            assert list(engine.enumerate()) == list(fresh.enumerate())
            engine.check_invariants()
        finally:
            engine.close()
            fresh.close()

    def test_second_begin_while_resharding_raises(self):
        engine = live_fleet(shards=2)
        plan = engine.begin_reshard(4)
        with pytest.raises(ReproError):
            engine.begin_reshard(3)
        engine.build_reshard(plan)
        engine.finish_reshard(plan)
        engine.close()

    def test_reshard_rejects_nonpositive_count(self):
        engine = live_fleet(shards=2)
        with pytest.raises(ValueError):
            engine.reshard(0)
        engine.close()


# ---------------------------------------------------------------------------
# satellite: the split_by empty-net-effect boundary
# ---------------------------------------------------------------------------
class TestSplitByBoundary:
    def test_batch_split_by_cancelled_net_is_empty_mapping(self):
        batch = UpdateBatch()
        batch.add(Update("R", (4, 1), 1))
        batch.add(Update("R", (4, 1), -1))
        assert batch.split_by(lambda relation, tup: 0) == {}

    def test_stream_split_by_keeps_cancelled_sources(self):
        stream = UpdateStream()
        stream.append(Update("R", (4, 1), 1))
        stream.append(Update("R", (4, 1), -1))
        stream.append(Update("S", (1, 13), 1))
        buckets = stream.split_by(lambda update: 0 if update.relation == "R" else 1)
        assert sorted(buckets) == [0, 1]
        # the cancelled pair survives as *sources*: exact per-bucket
        # accounting is the whole point of routing before consolidation
        assert len(list(buckets[0])) == 2

    def test_router_split_updates_keeps_cancelled_sub_batch(self):
        engine = ShardedEngine(PATH_QUERY, shards=2, executor="serial")
        cancelled = [Update("R", (4, 1), 1), Update("R", (4, 1), -1)]
        buckets = engine.router.split_updates(cancelled)
        assert len(buckets) == 1
        (batch,) = buckets.values()
        assert batch.source_count == 2
        assert batch.is_empty()

    def test_cancelled_raw_list_ticks_version_and_telemetry(self):
        engine = live_fleet(shards=2, updates=[], telemetry=True)
        version = engine.version
        events = engine.telemetry.events
        engine.apply_batch([Update("R", (4, 1), 1), Update("R", (4, 1), -1)])
        assert engine.version == version + 1
        assert engine.telemetry.events == events + 1
        engine.close()

    def test_cancelled_tail_batch_still_ticks_destination_shard(self):
        """Tail replay must preserve the raw-list boundary contract.

        A raw update list whose net effect is empty still dispatches an
        empty-net sub-batch to its destination shard (ticking that
        shard's version); a pre-consolidated batch with empty net
        dispatches nothing.  The replay through the new fleet must do
        exactly what the original ingest did.
        """
        cancelled = [Update("R", (4, 1), 1), Update("R", (4, 1), -1)]

        raw = live_fleet(shards=2)
        plan = raw.begin_reshard(3)
        raw.build_reshard(plan)
        raw.apply_batch(cancelled)  # raw list: buffered, replays one round
        raw.finish_reshard(plan)
        raw_tail_ticks = sum(raw.shard_versions())

        consolidated = live_fleet(shards=2)
        plan = consolidated.begin_reshard(3)
        consolidated.build_reshard(plan)
        batch = UpdateBatch()
        for update in cancelled:
            batch.add(update)
        consolidated.apply_batch(batch)  # empty net: no shard work at all
        consolidated.finish_reshard(plan)
        consolidated_tail_ticks = sum(consolidated.shard_versions())

        # fresh fleets count only tail replays, so the raw list's one
        # batch round is visible as exactly one extra shard-version tick
        assert raw_tail_ticks == consolidated_tail_ticks + 1
        # and the facade versions agree: both ingests committed
        assert raw.version == consolidated.version
        raw.close()
        consolidated.close()


# ---------------------------------------------------------------------------
# satellite: exactly-once accounting on the routed single-update path
# ---------------------------------------------------------------------------
class TestApplyAccountingAudit:
    def test_apply_fires_every_counter_exactly_once_per_update(self):
        engine = live_fleet(shards=2, updates=[], telemetry=True)
        engine.set_delta_capture(True)
        engine.drain_result_delta()  # discard the load-time state
        stats_before = engine.rebalance_stats.as_dict()
        assert engine.version == 0
        for update in STREAM:
            engine.apply(update)
        # facade version: one tick per routed update
        assert engine.version == len(STREAM)
        # facade telemetry: one ingest event per routed update
        assert engine.telemetry.update_events == len(STREAM)
        # RebalanceStats fold-up: the per-shard update counters sum to
        # exactly the routed updates, once each
        stats_after = engine.rebalance_stats.as_dict()
        assert stats_after["updates"] - stats_before["updates"] == len(STREAM)
        # delta capture: one drain returns the whole net delta ...
        delta = engine.drain_result_delta()
        assert delta
        base = dict(HierarchicalEngine(PATH_QUERY).load(make_database()).result())
        replayed = dict(base)
        for tup, change in delta.items():
            replayed[tup] = replayed.get(tup, 0) + change
            if replayed[tup] == 0:
                del replayed[tup]
        assert replayed == oracle_result()
        # ... and the second drain is empty (nothing double-counted)
        assert engine.drain_result_delta() == {}
        engine.close()

    def test_apply_batch_ticks_once_per_round_not_per_shard(self):
        engine = live_fleet(shards=4, updates=[], telemetry=True)
        engine.apply_batch(list(STREAM))  # spans several shards
        assert engine.version == 1
        assert engine.telemetry.update_events == 1
        assert engine.telemetry.update_tuples == len(STREAM)
        engine.close()


# ---------------------------------------------------------------------------
# satellite: the MAAS-style capacity model
# ---------------------------------------------------------------------------
def make_controller(engine, capacity, cooldown=1, **kwargs):
    telemetry = engine.telemetry or WorkloadTelemetry()
    return AdaptiveController(
        engine,
        cooldown=cooldown,
        telemetry=telemetry,
        capacity=capacity,
        **kwargs,
    )


class TestCapacityModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardCapacityConfig(shard_capacity=0)
        with pytest.raises(ValueError):
            ShardCapacityConfig(shard_capacity=10, over_commit_ratio=0.5)
        with pytest.raises(ValueError):
            ShardCapacityConfig(shard_capacity=10, min_shards=5, max_shards=2)
        with pytest.raises(ValueError):
            ShardCapacityConfig(shard_capacity=10, shrink_margin=0.0)

    def test_capacity_requires_sharded_engine(self):
        single = HierarchicalEngine(PATH_QUERY, telemetry=True)
        with pytest.raises(ValueError):
            AdaptiveController(single, capacity=ShardCapacityConfig(shard_capacity=4))

    def test_report_exposes_total_used_available(self):
        engine = live_fleet(shards=2, telemetry=True)
        controller = make_controller(
            engine, ShardCapacityConfig(shard_capacity=10, over_commit_ratio=1.5)
        )
        report = controller.capacity_report()
        assert [entry.shard for entry in report] == [0, 1]
        sizes = engine.shard_sizes()
        for entry, used in zip(report, sizes):
            assert isinstance(entry, ShardCapacity)
            assert entry.total == 15
            assert entry.used == used
            assert entry.available == 15 - used
        engine.close()

    def test_grow_proposed_when_over_committed(self):
        engine = live_fleet(shards=2, telemetry=True)
        used = sum(engine.shard_sizes())
        # pick a capacity small enough that some shard is over-committed
        policy = ShardCapacityConfig(shard_capacity=2, over_commit_ratio=1.0)
        controller = make_controller(engine, policy)
        engine.telemetry.record_update(1, 0.0)  # leave the initial cooldown
        target = controller.propose_shards()
        assert target is not None and target > 2
        assert target >= -(-used // 2)  # fits the fleet at nominal capacity
        engine.close()

    def test_shrink_needs_clear_headroom(self):
        engine = live_fleet(shards=7, telemetry=True)
        used = sum(engine.shard_sizes())
        roomy = ShardCapacityConfig(shard_capacity=10 * used, shrink_margin=0.6)
        controller = make_controller(engine, roomy)
        engine.telemetry.record_update(1, 0.0)
        target = controller.propose_shards()
        assert target is not None and target < 7
        # a tight shrink margin proposes nothing: the fleet is inside the
        # admitted envelope but lacks the clear headroom a merge demands
        snug = ShardCapacityConfig(
            shard_capacity=max(engine.shard_sizes()), shrink_margin=0.1
        )
        controller = make_controller(engine, snug)
        assert controller.propose_shards() is None
        engine.close()

    def test_stay_put_inside_envelope(self):
        engine = live_fleet(shards=2, telemetry=True)
        used = sum(engine.shard_sizes())
        policy = ShardCapacityConfig(
            shard_capacity=used, over_commit_ratio=1.5, shrink_margin=0.1
        )
        controller = make_controller(engine, policy)
        engine.telemetry.record_update(1, 0.0)
        assert controller.propose_shards() is None
        engine.close()

    def test_shared_cooldown_gates_both_knobs(self):
        engine = live_fleet(shards=2, telemetry=True)
        policy = ShardCapacityConfig(shard_capacity=1)
        controller = make_controller(engine, policy, cooldown=100)
        # inside the initial cooldown window: both knobs stay put
        assert controller.propose_shards() is None
        assert controller.propose() is None
        for _ in range(100):
            engine.telemetry.record_update(1, 0.0)
        assert controller.propose_shards() is not None
        # a reshard resets the *shared* window, silencing the ε knob too
        controller.record_reshard(4)
        assert controller.propose_shards() is None
        assert controller.propose() is None
        assert controller.reshards_applied == 1
        assert controller.reshard_history[-1][1] == 4
        engine.close()

    def test_maybe_reshard_applies_the_proposal(self):
        engine = live_fleet(shards=2, telemetry=True)
        policy = ShardCapacityConfig(shard_capacity=2, over_commit_ratio=1.0)
        controller = make_controller(engine, policy)
        engine.telemetry.record_update(1, 0.0)
        applied = controller.maybe_reshard()
        assert applied is not None
        assert engine.shards == applied
        assert controller.reshards_applied == 1
        assert list(engine.enumerate()) == fresh_fleet_enumeration(applied)
        engine.close()


# ---------------------------------------------------------------------------
# serving integration: reshard rides the commit/publish discipline
# ---------------------------------------------------------------------------
class TestServingReshard:
    def test_server_reshard_publishes_empty_delta(self):
        engine = live_fleet(shards=2, updates=[])
        engine.set_delta_capture(True)
        server = EngineServer(engine, mode="snapshot")
        server.apply_batch(STREAM[:5])
        seen = []
        server.on_commit(lambda version, delta: seen.append((version, dict(delta))))
        server.reshard(4)
        assert engine.shards == 4
        assert server.stats.reshards_applied == 1
        # subscribers ride through: the post-swap version arrives with an
        # empty delta, exactly like a retune — no phantom tuples
        assert seen == [(engine.version, {})]
        ticket = server.read()
        assert dict(ticket.pairs) == oracle_result(STREAM[:5])
        server.apply_update(STREAM[5])
        assert len(seen) == 2 and seen[-1][1] != {}

    def test_auto_reshard_from_capacity_policy(self):
        engine = live_fleet(shards=2, updates=[], telemetry=True)
        policy = ShardCapacityConfig(shard_capacity=2, over_commit_ratio=1.0)
        controller = make_controller(engine, policy, cooldown=1)
        server = EngineServer(engine, mode="snapshot", controller=controller)
        for update in STREAM:
            server.apply_update(update)
        assert controller.reshards_applied >= 1
        assert engine.shards > 2
        assert dict(server.read().pairs) == oracle_result()
        assert server.stats.reshards_applied == controller.reshards_applied
        engine.check_invariants()


# ---------------------------------------------------------------------------
# durability: the reshard barrier, and crash-anywhere inside it
# ---------------------------------------------------------------------------
class TestDurableReshard:
    def test_recover_comes_back_at_the_new_count(self, tmp_path):
        engine = live_fleet(shards=2, durability=str(tmp_path / "wal"))
        engine.reshard(4)
        for update in (Update("R", (10, 1), 1), Update("S", (2, 17), 1)):
            engine.apply(update)
        expected = dict(engine.result())
        engine.close()

        meta = read_fleet_meta(str(tmp_path / "wal"))
        assert meta is not None and meta["shards"] == 4 and meta["epoch"] == 1

        # recovery is constructed at the *old* count: the barrier record
        # must override it
        recovered = ShardedEngine(
            PATH_QUERY,
            shards=2,
            epsilon=0.5,
            executor="serial",
            durability=str(tmp_path / "wal"),
        )
        recovered.recover()
        assert recovered.shards == 4
        assert recovered.epoch == 1
        assert dict(recovered.result()) == expected
        recovered.check_invariants()
        recovered.close()

    def test_double_reshard_prunes_old_epochs(self, tmp_path):
        engine = live_fleet(shards=2, durability=str(tmp_path / "wal"))
        engine.reshard(4)
        engine.reshard(3)
        expected = dict(engine.result())
        engine.close()
        entries = sorted(p.name for p in tmp_path.joinpath("wal").iterdir())
        assert "epoch-2" in entries
        assert "epoch-1" not in entries  # superseded epochs are pruned
        assert not any(name.startswith("shard-") for name in entries)
        recovered = ShardedEngine(
            PATH_QUERY,
            shards=2,
            epsilon=0.5,
            executor="serial",
            durability=str(tmp_path / "wal"),
        )
        recovered.recover()
        assert recovered.shards == 3 and recovered.epoch == 2
        assert dict(recovered.result()) == expected
        recovered.close()

    @pytest.mark.parametrize(
        "site,expected_shards",
        [
            ("reshard-prepare", 2),  # new fleet built, nothing durable yet
            ("reshard-tail", 2),  # mid tail replay, barrier not written
            ("reshard-barrier", 2),  # meta written but not yet renamed
            ("reshard-swap", 4),  # barrier renamed: the new fleet owns it
        ],
    )
    def test_crash_inside_the_barrier_never_leaves_a_hybrid(
        self, tmp_path, site, expected_shards
    ):
        """Kill-anywhere inside reshard: recovery lands at exactly the old
        or the new count, and matches a never-crashed oracle there."""
        engine = live_fleet(shards=2, durability=str(tmp_path / "wal"))
        plan = engine.begin_reshard(4)
        engine.apply(Update("R", (10, 1), 1))  # one tail event to replay
        engine.build_reshard(plan)
        with injected(CrashPointInjector(site, hits=1)):
            with pytest.raises(SimulatedCrashError):
                engine.finish_reshard(plan)
        # the process is "dead": no cleanup runs; recover from disk alone
        recovered = ShardedEngine(
            PATH_QUERY,
            shards=2,
            epsilon=0.5,
            executor="serial",
            durability=str(tmp_path / "wal"),
        )
        recovered.recover()
        assert recovered.shards == expected_shards
        assert dict(recovered.result()) == oracle_result(
            STREAM + [Update("R", (10, 1), 1)]
        )
        assert list(recovered.enumerate()) == fresh_fleet_enumeration(
            expected_shards, STREAM + [Update("R", (10, 1), 1)]
        )
        recovered.check_invariants()
        recovered.close()
        engine.close()


# ---------------------------------------------------------------------------
# networking: reshard over the wire, and session-teardown accounting
# ---------------------------------------------------------------------------
def open_server(engine, **server_kwargs):
    serving = EngineServer(engine, mode="snapshot")
    handle = ServerThread(
        serving, ServerConfig(host="127.0.0.1", port=0, **server_kwargs)
    )
    handle.start()
    return serving, handle


def shard_side_snapshot_count(engine):
    return sum(len(server._snapshots) for server in engine._executor._servers)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestNetReshard:
    def test_client_reshard_with_subscriber_and_pinned_snapshot(self):
        engine = live_fleet(shards=2, executor="thread", updates=STREAM[:5])
        expected = oracle_result(STREAM[:5])
        serving, handle = open_server(engine)
        client = EngineClient("127.0.0.1", handle.port)
        try:
            subscription = client.subscribe()
            held = client.open_snapshot()
            version = client.reshard(4)
            assert client.ping()["shards"] == 4
            assert subscription.wait_for_version(version, timeout=10.0)
            version = client.apply_update(Update("R", (20, 1), 1))
            assert subscription.wait_for_version(version, timeout=10.0)
            assert subscription.result() == oracle_result(
                STREAM[:5] + [Update("R", (20, 1), 1)]
            )
            # the pre-reshard snapshot pages its capture through the
            # retired fleet, after the swap and the write
            assert dict(held.result()) == expected
            stats = client.server_stats()
            assert stats["serving"]["reshards_applied"] == 1
            assert stats["shards"] == 4
            held.close()
            subscription.close()
        finally:
            client.close()
            handle.close()
            engine.close()

    def test_reshard_rejects_bad_shard_count(self):
        engine = live_fleet(shards=2, executor="thread", updates=[])
        serving, handle = open_server(engine)
        client = EngineClient("127.0.0.1", handle.port)
        try:
            from repro.net.client import RemoteError

            with pytest.raises(RemoteError):
                client.reshard(0)
        finally:
            client.close()
            handle.close()
            engine.close()


class TestSessionTeardownAccounting:
    """Satellite: abnormal disconnects must release every snapshot handle."""

    def test_crash_looping_client_cannot_exhaust_capacity(self):
        engine = live_fleet(shards=2, executor="thread", updates=STREAM[:5])
        serving, handle = open_server(engine, max_snapshots_per_session=4)
        try:
            for _ in range(5):  # a client that crashes after every connect
                client = EngineClient("127.0.0.1", handle.port)
                for _ in range(4):  # ... with its session limit maxed out
                    snapshot = client.open_snapshot()
                    snapshot.page(limit=2)  # mid-page: iterator half-drained
                # abrupt socket death: no snapshot_close, no clean goodbye
                # (shutdown sends the FIN the kernel would send on a kill)
                client._sock.shutdown(socket.SHUT_RDWR)
                client._sock.close()
            # every engine-side handle must drain as the server reaps the
            # dead sessions — this is what keeps the registries bounded
            assert wait_until(lambda: shard_side_snapshot_count(engine) == 0), (
                f"{shard_side_snapshot_count(engine)} snapshot handles leaked"
            )
            # and a well-behaved client still gets its full allowance
            client = EngineClient("127.0.0.1", handle.port)
            opened = [client.open_snapshot() for _ in range(4)]
            for snapshot in opened:
                assert dict(snapshot.result()) == oracle_result(STREAM[:5])
                snapshot.close()
            client.close()
        finally:
            handle.close()
            engine.close()

    def test_teardown_without_pool_still_releases_handles(self):
        """Post-stop teardown: the pool is gone, handles must not leak.

        A connection task that dies after ``stop()`` released the pool
        reaches ``_teardown_session`` with ``_run`` unusable; the old
        best-effort loop swallowed the failure per snapshot and leaked
        every engine-side handle.
        """
        from repro.net.server import EngineTCPServer, _Session

        engine = live_fleet(shards=2, executor="thread", updates=[])
        serving = EngineServer(engine, mode="snapshot")
        server = EngineTCPServer(serving, ServerConfig(host="127.0.0.1", port=0))

        class _DeadWriter:
            def close(self):
                pass

        async def scenario():
            server._loop = asyncio.get_running_loop()
            server._pool = None  # the pool died before this session's teardown
            session = _Session(_DeadWriter())
            for index in range(3):
                session.snapshots[index] = serving.snapshot()
            assert shard_side_snapshot_count(engine) == 3 * 2
            await server._teardown_session(session)

        asyncio.run(scenario())
        assert shard_side_snapshot_count(engine) == 0
        engine.close()

    def test_teardown_cancelled_midway_still_releases_handles(self):
        """Cancellation mid-teardown must not abandon the remaining handles.

        Server shutdown cancels connection tasks; a task already inside
        ``_teardown_session`` takes the ``CancelledError`` at its next
        await.  ``CancelledError`` is not an ``Exception``, so the old
        loop abandoned every snapshot not yet closed.
        """
        from repro.net.server import EngineTCPServer, _Session

        engine = live_fleet(shards=2, executor="thread", updates=[])
        serving = EngineServer(engine, mode="snapshot")
        server = EngineTCPServer(serving, ServerConfig(host="127.0.0.1", port=0))

        class _DeadWriter:
            def close(self):
                pass

        async def scenario():
            loop = asyncio.get_running_loop()
            server._loop = loop
            server._pool = ThreadPoolExecutor(max_workers=1)
            try:
                session = _Session(_DeadWriter())
                for index in range(3):
                    session.snapshots[index] = serving.snapshot()
                task = loop.create_task(server._teardown_session(session))
                await asyncio.sleep(0)  # let it reach the first pool await
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
            finally:
                server._pool.shutdown(wait=True)
                server._pool = None

        asyncio.run(scenario())
        assert shard_side_snapshot_count(engine) == 0
        engine.close()

    def test_server_stop_with_live_sessions_releases_handles(self):
        engine = live_fleet(shards=2, executor="thread", updates=STREAM[:5])
        serving, handle = open_server(engine)
        client = EngineClient("127.0.0.1", handle.port)
        client.open_snapshot()
        client.open_snapshot()
        assert shard_side_snapshot_count(engine) > 0
        # stopping the server cancels the connection tasks mid-session;
        # teardown must still release the engine-side handles
        handle.close()
        assert wait_until(lambda: shard_side_snapshot_count(engine) == 0)
        client.close()
        engine.close()
