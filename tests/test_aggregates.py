"""Engine-level maintained aggregates: every read path against the fold.

The contract under test: for any registered `AggregateSpec`, the engine's
maintained answer equals the one true fold (`fold_result`) over a naive
recompute oracle at every step of an update stream — through retraction
churn, retunes, reloads, snapshots, sharded merges, and online reshards —
and every read path (maintained, enumerate-and-fold, snapshot, sharded)
records its cost into the engine's workload telemetry.
"""

from __future__ import annotations

import random

import pytest

from repro import Database, HierarchicalEngine, ShardedEngine, Update
from repro.baselines.naive import NaiveRecomputeEngine
from repro.core.api import StaticEngine
from repro.exceptions import StaleStateError, UnsupportedQueryError
from repro.rings import AggregateSpec, answer_map, fold_result

QUERY = "Q(A, C) = R(A, B), S(B, C)"
HEAD = ("A", "C")
DOMAIN = 6

SPECS = (
    AggregateSpec("counting", None, ("A",)),
    AggregateSpec("sum", "C", ("A",)),
    AggregateSpec("max", "C"),
    AggregateSpec("min", "C", ("A",)),
)


def make_database(seed: int = 5, rows: int = 50) -> Database:
    rng = random.Random(seed)
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    for _ in range(rows):
        database.relation("R").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
        database.relation("S").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
    return database


def churn_batches(seed: int = 21, batches: int = 12, size: int = 8):
    """Mixed insert/delete batches, ~40% retractions of earlier inserts."""
    rng = random.Random(seed)
    inserted = []
    out = []
    for _ in range(batches):
        batch = []
        for _ in range(size):
            if inserted and rng.random() < 0.4:
                relation, tup = inserted.pop(rng.randrange(len(inserted)))
                batch.append(Update(relation, tup, -1))
            else:
                relation = rng.choice(("R", "S"))
                tup = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
                inserted.append((relation, tup))
                batch.append(Update(relation, tup, 1))
        out.append(batch)
    return out


def oracle_answers(oracle: NaiveRecomputeEngine, spec: AggregateSpec):
    pairs = list(dict(oracle.result()).items())
    return answer_map(spec, fold_result(spec, HEAD, pairs))


def test_maintained_matches_fold_through_retraction_churn():
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    for spec in SPECS:
        engine.register_aggregate(spec)
    for batch in churn_batches():
        engine.apply_batch(batch)
        for update in batch:
            oracle.update(update.relation, update.tuple, update.multiplicity)
        for spec in SPECS:
            expected = oracle_answers(oracle, spec)
            assert engine.aggregate(spec) == expected, spec.describe()
            assert engine.aggregate(spec, maintained=False) == expected
    engine.check_invariants()
    engine.close()


def test_registration_survives_retune_and_refolds_on_reload():
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    spec = AggregateSpec("sum", "C", ("A",))
    engine.register_aggregate(spec)
    before = engine.aggregate(spec)
    engine.retune(0.25)
    assert engine.aggregate(spec) == before
    assert [s.key() for s in engine.registered_aggregates] == [spec.key()]
    # the maintained state keeps tracking after the retune
    engine.apply_batch([Update("R", (0, 1), 1), Update("S", (1, 5), 1)])
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    oracle.update("R", (0, 1), 1)
    oracle.update("S", (1, 5), 1)
    assert engine.aggregate(spec) == oracle_answers(oracle, spec)
    # a reload refolds the registered state from the new database
    fresh = make_database(seed=99, rows=30)
    engine.load(fresh)
    twin = NaiveRecomputeEngine(QUERY)
    twin.load(make_database(seed=99, rows=30))
    assert engine.aggregate(spec) == oracle_answers(twin, spec)
    engine.close()


def test_static_engine_folds_on_demand_and_rejects_registration():
    engine = StaticEngine(QUERY)
    engine.load(make_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    spec = AggregateSpec("max", "C", ("A",))
    assert engine.aggregate(spec) == oracle_answers(oracle, spec)
    with pytest.raises(UnsupportedQueryError):
        engine.register_aggregate(spec)


def test_aggregate_reads_record_into_workload_telemetry():
    """Regression: both aggregate read paths must count as workload reads.

    The adaptive controller sizes ε from the read/update mix; an
    aggregate-heavy workload that recorded no reads would look
    write-only and be tuned for the wrong regime.
    """
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    spec = AggregateSpec("counting", None, ("A",))
    base = engine.telemetry.as_dict()["read_events"]
    answers = engine.aggregate(spec)
    after_maintained = engine.telemetry.as_dict()
    assert after_maintained["read_events"] == base + 1
    assert after_maintained["read_tuples"] >= len(answers)
    engine.aggregate(spec, maintained=False)
    assert engine.telemetry.as_dict()["read_events"] == base + 2
    engine.close()

    sharded = ShardedEngine(QUERY, shards=2, epsilon=0.5, executor="serial")
    sharded.load(make_database())
    base = sharded.telemetry.as_dict()["read_events"]
    sharded.aggregate(spec)
    assert sharded.telemetry.as_dict()["read_events"] == base + 1
    sharded.close()


def test_snapshot_aggregate_is_frozen_then_goes_stale():
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    spec = AggregateSpec("sum", "C", ("A",))
    snapshot = engine.snapshot()
    frozen = oracle_answers(oracle, spec)
    assert snapshot.aggregate(spec) == frozen
    # the live engine moves on; the snapshot's answer does not
    engine.apply_batch([Update("R", (0, 0), 1), Update("S", (0, 0), 1)])
    assert snapshot.aggregate(spec) == frozen
    assert snapshot.aggregate("sum", "C", group_by=("A",)) == frozen
    # a reload invalidates the capture like any snapshot read
    engine.load(make_database(seed=7))
    with pytest.raises(StaleStateError):
        snapshot.aggregate(spec)
    engine.close()


def test_sharded_aggregate_merges_to_the_single_engine_answer():
    single = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    sharded = ShardedEngine(QUERY, shards=2, epsilon=0.5, executor="serial")
    sharded.load(make_database())
    for spec in SPECS:
        sharded.register_aggregate(spec)
        single.register_aggregate(spec)
    batches = churn_batches(seed=31)
    for number, batch in enumerate(batches):
        single.apply_batch(batch)
        sharded.apply_batch(batch)
        if number == len(batches) // 2:
            sharded.reshard(4)  # registry re-broadcast to the new fleet
        for spec in SPECS:
            assert sharded.aggregate(spec) == single.aggregate(spec), (
                spec.describe()
            )
            assert sharded.aggregate_elements(spec) == single.aggregate_elements(
                spec
            )
    assert {s.key() for s in sharded.registered_aggregates} == {
        s.key() for s in SPECS
    }
    sharded.check_invariants()
    # sharded snapshots answer at their pinned version
    snapshot_spec = SPECS[1]
    snapshot = sharded.snapshot()
    pinned = sharded.aggregate(snapshot_spec)
    sharded.apply_batch([Update("R", (1, 1), 1), Update("S", (1, 1), 1)])
    assert snapshot.aggregate(snapshot_spec) == pinned
    snapshot.close()
    sharded.close()
    single.close()


def test_sharded_facade_rejects_callable_specs_eagerly():
    sharded = ShardedEngine(QUERY, shards=2, epsilon=0.5, executor="serial")
    sharded.load(make_database())
    with pytest.raises(TypeError, match="cannot cross"):
        sharded.register_aggregate(AggregateSpec("sum", lambda tup: tup[0]))
    sharded.close()
