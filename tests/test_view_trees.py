"""Tests for view-tree construction: BuildVT, NewVT, AuxView, IndicatorVTs, τ."""

import pytest

from repro.data.database import Database
from repro.data.partition import PartitionRegistry
from repro.query.parser import parse_query
from repro.views.build import (
    DYNAMIC_MODE,
    STATIC_MODE,
    build_view_tree,
    make_light_part_leaf_factory,
    make_relation_leaf_factory,
    new_view_tree,
)
from repro.views.indicators import build_indicator_triple
from repro.views.skew import build_skew_aware_plan
from repro.views.view import (
    IndicatorLeaf,
    LightPartLeaf,
    NameGenerator,
    RelationLeaf,
    ViewNode,
)
from repro.vo.variable_order import build_canonical_variable_order
from tests.conftest import random_database, schemas_for


def make_setup(query_text, seed=0, size=20):
    query = parse_query(query_text)
    database = random_database(schemas_for(query_text), tuples_per_relation=size, seed=seed)
    order = build_canonical_variable_order(query)
    return query, database, order


class TestNewViewTree:
    def test_collapses_single_child_with_same_schema(self):
        query, database, order = make_setup("Q(A, B) = R(A, B)")
        leaf = RelationLeaf(query.atoms[0], database.relation("R"))
        namer = NameGenerator()
        tree = new_view_tree("V", ("A", "B"), [leaf], namer)
        assert tree is leaf

    def test_creates_view_over_multiple_children(self):
        query, database, order = make_setup("Q(A) = R(A, B), S(B)")
        leaves = [
            RelationLeaf(query.atoms[0], database.relation("R")),
            RelationLeaf(query.atoms[1], database.relation("S")),
        ]
        tree = new_view_tree("V", ("B",), leaves, NameGenerator())
        assert isinstance(tree, ViewNode)
        assert tree.schema == ("B",)
        assert len(tree.children) == 2


class TestBuildViewTree:
    def test_example18_static_views(self):
        """Figure 9 / Example 18: static BuildVT creates V_C(A,B), V_B(A,D), V_A(A)."""
        query, database, order = make_setup(
            "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"
        )
        factory = make_relation_leaf_factory(database, query)
        tree = build_view_tree(
            "V", order.roots[0], query.free_variables, STATIC_MODE, factory, NameGenerator()
        )
        schemas = sorted(set(view.schema for view in tree.views()))
        assert ("A",) in schemas          # V_A(A)
        assert ("A", "D") in schemas      # V_B(A, D)
        assert ("A", "B") in schemas      # V_C(A, B)
        # no auxiliary views in static mode
        assert not any(view.is_aux for view in tree.views())

    def test_example18_dynamic_adds_aux_views(self):
        """Figure 9: the dynamic case adds V'_B(A) and T'(A)."""
        query, database, order = make_setup(
            "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"
        )
        factory = make_relation_leaf_factory(database, query)
        tree = build_view_tree(
            "V", order.roots[0], query.free_variables, DYNAMIC_MODE, factory, NameGenerator()
        )
        aux_schemas = [view.schema for view in tree.views() if view.is_aux]
        assert aux_schemas.count(("A",)) == 2

    def test_leaves_reference_shared_relations(self):
        query, database, order = make_setup("Q(A) = R(A, B), S(B)")
        factory = make_relation_leaf_factory(database, query)
        tree = build_view_tree(
            "V", order.roots[0], query.free_variables, STATIC_MODE, factory, NameGenerator()
        )
        leaves = {leaf.source_name: leaf for leaf in tree.leaves()}
        assert leaves["R"].relation() is database.relation("R")
        assert leaves["S"].relation() is database.relation("S")

    def test_light_factory_creates_partitions(self):
        query, database, order = make_setup("Q(A, C) = R(A, B), S(B, C)")
        registry = PartitionRegistry()
        factory = make_light_part_leaf_factory(database, registry, ("B",))
        tree = build_view_tree(
            "L", order.roots[0], frozenset({"B"}), STATIC_MODE, factory, NameGenerator()
        )
        assert len(registry) == 2
        assert all(isinstance(leaf, LightPartLeaf) for leaf in tree.leaves())


class TestIndicatorTriples:
    def test_triple_structure_for_path_query(self):
        query, database, order = make_setup("Q(A, C) = R(A, B), S(B, C)")
        registry = PartitionRegistry()
        base_factory = make_relation_leaf_factory(database, query)
        light_factory = make_light_part_leaf_factory(database, registry, ("B",))
        triple = build_indicator_triple(
            order.roots[0], base_factory, light_factory, DYNAMIC_MODE, NameGenerator()
        )
        assert triple.keys == ("B",)
        assert triple.relation_names == {"R", "S"}
        assert triple.all_tree.schema == ("B",)
        assert triple.light_tree.schema == ("B",)

    def test_support_check_on_materialized_triple(self):
        from repro.engine.materialize import materialize_indicator_triple

        query, database, order = make_setup("Q(A, C) = R(A, B), S(B, C)", size=30)
        registry = PartitionRegistry()
        base_factory = make_relation_leaf_factory(database, query)
        light_factory = make_light_part_leaf_factory(database, registry, ("B",))
        triple = build_indicator_triple(
            order.roots[0], base_factory, light_factory, DYNAMIC_MODE, NameGenerator()
        )
        for partition in registry:
            partition.strict_repartition(threshold=2)
        materialize_indicator_triple(triple)
        assert triple.check_support()


class TestSkewAwarePlan:
    def test_free_connex_query_gets_single_tree(self):
        """Free-connex residual queries short-circuit to one BuildVT tree."""
        query, database, order = make_setup(
            "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"
        )
        plan = build_skew_aware_plan(query, order, database, STATIC_MODE)
        assert len(plan.component_trees) == 1
        assert len(plan.component_trees[0]) == 1
        assert not plan.indicator_triples

    def test_path_query_has_light_and_heavy_strategies(self):
        """Example 28 / Figure 23: one light tree, one heavy tree, one indicator."""
        query, database, order = make_setup("Q(A, C) = R(A, B), S(B, C)")
        plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        trees = plan.component_trees[0]
        assert len(trees) == 2
        assert len(plan.indicator_triples) == 1
        assert len(plan.partitions) == 2  # R^B and S^B
        indicator_leaves = [
            leaf
            for tree in trees
            for leaf in tree.leaves()
            if isinstance(leaf, IndicatorLeaf)
        ]
        assert len(indicator_leaves) == 1

    def test_example19_produces_three_strategies_and_two_indicators(self):
        """Figure 12: light-A, heavy-A/light-AB, heavy-A/heavy-AB trees."""
        query, database, order = make_setup(
            "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)"
        )
        plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        trees = plan.component_trees[0]
        assert len(trees) == 3
        assert len(plan.indicator_triples) == 2
        keys = sorted(triple.keys for triple in plan.indicator_triples)
        assert keys == [("A",), ("A", "B")]
        # partitions: R,S,T,U on A plus R,S on (A,B)
        assert len(plan.partitions) == 6

    def test_proposition_20_leaf_relations_cover_all_atoms(self):
        """Every strategy tree joins one leaf per query atom (base or light part)."""
        query, database, order = make_setup(
            "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)"
        )
        plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        for tree in plan.all_trees():
            non_indicator = [
                leaf for leaf in tree.leaves() if not isinstance(leaf, IndicatorLeaf)
            ]
            atoms_covered = sorted(
                leaf.atom.relation for leaf in non_indicator  # type: ignore[attr-defined]
            )
            assert atoms_covered == sorted(a.relation for a in query.atoms)

    def test_q_hierarchical_query_has_no_indicators_in_dynamic_mode(self):
        query, database, order = make_setup("Q(A, B) = R(A, B), S(A)")
        plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        assert not plan.indicator_triples
        assert len(plan.all_trees()) == 1

    def test_non_free_connex_but_q_hierarchical_static_split(self):
        """Q(A) = R(A,B), S(B) is free-connex: static mode needs no indicators,
        dynamic mode partitions on B (Example 29 / Figure 24)."""
        query, database, order = make_setup("Q(A) = R(A, B), S(B)")
        static_plan = build_skew_aware_plan(query, order, database, STATIC_MODE)
        dynamic_plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        assert not static_plan.indicator_triples
        assert len(static_plan.all_trees()) == 1
        assert len(dynamic_plan.indicator_triples) == 1
        assert len(dynamic_plan.all_trees()) == 2

    def test_trees_referencing(self):
        query, database, order = make_setup("Q(A, C) = R(A, B), S(B, C)")
        plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        assert len(plan.trees_referencing("R")) >= 1
        assert plan.trees_referencing("does-not-exist") == ()

    def test_describe_mentions_strategies_and_indicators(self):
        query, database, order = make_setup("Q(A, C) = R(A, B), S(B, C)")
        plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        description = plan.describe()
        assert "strategy tree" in description
        assert "indicator" in description

    def test_disconnected_query_has_one_tree_list_per_component(self):
        query, database, order = make_setup("Q(A, C) = R(A, B), S(C, D)")
        plan = build_skew_aware_plan(query, order, database, DYNAMIC_MODE)
        assert len(plan.component_trees) == 2
