"""Sharded maintenance engine: routing, merging, equivalence, determinism.

The contract under test is a single sentence: running any workload through
:class:`repro.sharding.ShardedEngine` at any shard count must be
indistinguishable from the single engine — same result dictionary, same
multiplicities, enumeration in the canonical order — while minor/major
rebalancing stays local to the shard that triggered it.  The Hypothesis
properties drive the k-way merge and the full engine over random workloads;
the deterministic tests pin the boundary cases (empty shards, cancelled
batches, forced rebalances, worker-process errors).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Database,
    HierarchicalEngine,
    ShardedEngine,
    StaticEngine,
    Update,
    UpdateBatch,
    UpdateStream,
)
from repro.conformance import check_shard_merge
from repro.core.planner import choose_shard_key, is_shardable
from repro.data.partition import shard_of, stable_hash
from repro.enumeration.union import (
    canonical_sort_key,
    merge_shards,
    sort_shard_result,
)
from repro.exceptions import (
    InvariantViolationError,
    RejectedUpdateError,
    ReproError,
    UnsupportedQueryError,
)
from repro.ivm.rebalance import RebalanceStats
from repro.sharding import ShardRouter
from repro.workloads import (
    HOT_SHARD_KEY_BASE,
    hot_shard_database,
    hot_shard_stream,
    skewed_shard_database,
    skewed_shard_stream,
)

PATH = "Q(A, C) = R(A, B), S(B, C)"
STAR = "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)"
SEMIJOIN = "Q(A) = R(A, B), S(B)"
PRODUCT = "Q(A, C) = R(A, B), S(C, D)"  # disconnected: unshardable


def small_path_database(seed: int = 0, size: int = 40) -> Database:
    rng = random.Random(seed)
    r = [(rng.randrange(12), rng.randrange(8)) for _ in range(size)]
    s = [(rng.randrange(8), rng.randrange(12)) for _ in range(size)]
    return Database.from_dict({"R": (("A", "B"), r), "S": (("B", "C"), s)})


def mixed_path_stream(seed: int = 1, count: int = 60) -> UpdateStream:
    rng = random.Random(seed)
    updates, live = [], []
    for _ in range(count):
        if live and rng.random() < 0.4:
            updates.append(live.pop(rng.randrange(len(live))).inverted())
            continue
        if rng.random() < 0.5:
            update = Update("R", (rng.randrange(12), rng.randrange(8)), 1)
        else:
            update = Update("S", (rng.randrange(8), rng.randrange(12)), 1)
        updates.append(update)
        live.append(update)
    return UpdateStream(updates)


def assert_matches_single(
    query: str, database: Database, stream, shards: int, batched: bool, **kwargs
) -> ShardedEngine:
    """Run the workload sharded and unsharded; assert indistinguishable."""
    single = HierarchicalEngine(query, **kwargs).load(database)
    sharded = ShardedEngine(query, shards=shards, executor="serial", **kwargs)
    sharded.load(database)
    if batched:
        single.apply_batch(list(stream))
        sharded.apply_batch(list(stream))
    else:
        for update in stream:
            single.apply(update)
            sharded.apply(update)
    expected = single.result()
    merged = list(sharded.enumerate())
    assert dict(merged) == expected
    assert merged == sort_shard_result(expected.items())
    sharded.check_invariants()
    return sharded


# ----------------------------------------------------------------------
# the shard-aware planner gate
# ----------------------------------------------------------------------
class TestShardKeyGate:
    def test_path_query_shards_on_the_join_variable(self):
        assert choose_shard_key(PATH) == "B"
        # the property and the sharded engine's attribute mirror each other
        assert HierarchicalEngine(PATH).shard_key == "B"
        assert ShardedEngine(PATH, shards=2).shard_key == "B"

    def test_star_query_shards_on_the_center(self):
        assert choose_shard_key(STAR) == "X"

    def test_free_variable_preferred_over_sorted_order(self):
        # A and B both occur in every atom; A is bound, B is free.
        assert choose_shard_key("Q(B) = R(A, B), S(B, A)") == "B"

    def test_disconnected_query_rejected_but_single_engine_accepts(self):
        assert not is_shardable(PRODUCT)
        HierarchicalEngine(PRODUCT)  # single engine is fine with it
        with pytest.raises(UnsupportedQueryError, match="disconnected"):
            ShardedEngine(PRODUCT, shards=2)
        with pytest.raises(UnsupportedQueryError):
            HierarchicalEngine(PRODUCT).shard_key

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="shard count"):
            ShardedEngine(PATH, shards=0)
        with pytest.raises(ValueError, match="executor"):
            ShardedEngine(PATH, executor="gpu")

    def test_requires_load_first(self):
        engine = ShardedEngine(PATH, shards=2)
        with pytest.raises(ReproError, match="load"):
            engine.result()
        with pytest.raises(ReproError, match="load"):
            engine.apply(Update("R", (1, 2), 1))


# ----------------------------------------------------------------------
# stable routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_stable_hash_is_process_independent(self):
        # pinned values: a changed hash would silently re-route every tuple
        assert stable_hash(0) == stable_hash(0)
        assert shard_of("key", 4) == shard_of("key", 4)
        assert shard_of(123, 1) == 0

    def test_python_equal_values_route_identically(self):
        # tuple equality treats 1 == 1.0 == True as one value; routing and
        # canonical ordering must agree or a float-typed delete would miss
        # the int-typed stored tuple's shard
        for shards in (2, 4, 7):
            assert shard_of(1, shards) == shard_of(1.0, shards) == shard_of(True, shards)
            assert shard_of(7, shards) == shard_of(7.0, shards)
        assert canonical_sort_key((10, 1)) == canonical_sort_key((10, 1.0))
        assert canonical_sort_key((0,)) == canonical_sort_key((False,))

    def test_numeric_equivalent_update_reaches_the_stored_tuple(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(10, 1)]), "S": (("B", "C"), [(1, 20)])}
        )
        single = HierarchicalEngine(PATH).load(database)
        sharded = ShardedEngine(PATH, shards=4, executor="serial").load(database)
        update = Update("R", (10, 1.0), -1)  # float-typed view of (10, 1)
        single.apply(update)
        sharded.apply(update)
        assert sharded.result() == single.result() == {}
        sharded.check_invariants()
        sharded.close()

    def test_shard_of_range_and_validation(self):
        for value in range(200):
            assert 0 <= shard_of(value, 7) < 7
        with pytest.raises(ValueError):
            shard_of(1, 0)

    def test_router_columns(self):
        router = ShardRouter(HierarchicalEngine(PATH).query, 4)
        assert router.columns == {"R": 1, "S": 0}
        assert router.shard_key == "B"
        assert not router.key_is_free
        with pytest.raises(Exception):
            router.column_of("T")

    def test_split_database_partitions_every_tuple_exactly_once(self):
        database = small_path_database()
        router = ShardRouter(HierarchicalEngine(PATH).query, 4)
        parts = router.split_database(database)
        assert len(parts) == 4
        for index, part in enumerate(parts):
            assert part.names() == database.names()
            router.check_placement(part, index)
        for relation in database:
            for tup, mult in relation.items():
                owners = [
                    part.relation(relation.name).multiplicity(tup)
                    for part in parts
                ]
                assert sorted(owners) == [0, 0, 0, mult] if mult else True
                assert sum(1 for m in owners if m) == 1

    def test_relation_outside_the_query_is_parked_on_shard_zero(self):
        database = small_path_database()
        extra = database.create_relation("Audit", ("X",))
        extra.insert((1,))
        router = ShardRouter(HierarchicalEngine(PATH).query, 3)
        parts = router.split_database(database)
        assert len(parts[0].relation("Audit")) == 1
        assert len(parts[1].relation("Audit")) == 0
        for index, part in enumerate(parts):
            router.check_placement(part, index)  # ignores parked relations

    def test_misplaced_tuple_detected(self):
        database = small_path_database()
        router = ShardRouter(HierarchicalEngine(PATH).query, 4)
        parts = router.split_database(database)
        # plant one tuple on a wrong shard
        victim = next(iter(parts[0].relation("R").tuples()), None)
        if victim is None:
            victim = (99, 99)
        wrong = (router.shard_of_tuple("R", victim) + 1) % 4
        parts[wrong].relation("R").insert(victim)
        with pytest.raises(InvariantViolationError, match="hashes to shard"):
            router.check_placement(parts[wrong], wrong)

    def test_split_updates_keeps_exact_source_counts(self):
        router = ShardRouter(HierarchicalEngine(PATH).query, 4)
        stream = mixed_path_stream(seed=7, count=40)
        buckets = router.split_updates(stream)
        assert sum(b.source_count for b in buckets.values()) == len(stream)
        # the generic data-layer split agrees with the router's batching
        sub_streams = stream.split_by(router.shard_of_update)
        assert set(sub_streams) == set(buckets)
        for shard, sub in sub_streams.items():
            assert buckets[shard].source_count == len(sub)


# ----------------------------------------------------------------------
# sharded == single, across shard counts and ingestion paths
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    @pytest.mark.parametrize("batched", [False, True])
    def test_path_query(self, shards, batched):
        engine = assert_matches_single(
            PATH,
            small_path_database(seed=3),
            mixed_path_stream(seed=4),
            shards,
            batched,
            epsilon=0.5,
        )
        assert engine.shard_sizes() and sum(engine.shard_sizes()) > 0

    @pytest.mark.parametrize("shards", [2, 5])
    def test_star_query_sums_multiplicities_across_shards(self, shards):
        # the shard key X is bound, so several shards can produce the same
        # head tuple; the merge must sum their multiplicities
        rng = random.Random(11)
        contents = {
            name: (
                (("X", f"Y{i}")),
                [(rng.randrange(6), rng.randrange(3)) for _ in range(25)],
            )
            for i, name in enumerate(("R0", "R1", "R2"))
        }
        database = Database.from_dict(contents)
        stream = UpdateStream(
            [
                Update(rng.choice(("R0", "R1", "R2")), (rng.randrange(6), rng.randrange(3)), 1)
                for _ in range(25)
            ]
        )
        assert_matches_single(STAR, database, stream, shards, batched=True)

    def test_semijoin_query(self):
        rng = random.Random(5)
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(rng.randrange(9), rng.randrange(5)) for _ in range(30)]),
                "S": (("B",), [(rng.randrange(5),) for _ in range(10)]),
            }
        )
        stream = UpdateStream(
            [Update("S", (rng.randrange(5),), 1) for _ in range(12)]
            + [Update("R", (rng.randrange(9), rng.randrange(5)), 1) for _ in range(12)]
        )
        assert_matches_single(SEMIJOIN, database, stream, shards=3, batched=False)

    def test_static_mode_enumerates_but_rejects_updates(self):
        database = small_path_database(seed=9)
        sharded = ShardedEngine(PATH, shards=3, mode="static", executor="serial")
        sharded.load(database)
        expected = StaticEngine(PATH).load(database).result()
        assert sharded.result() == expected
        with pytest.raises(UnsupportedQueryError):
            sharded.apply(Update("R", (1, 2), 1))
        sharded.close()

    def test_empty_database(self):
        database = Database.from_dict({"R": (("A", "B"), []), "S": (("B", "C"), [])})
        sharded = ShardedEngine(PATH, shards=4, executor="serial").load(database)
        assert sharded.result() == {}
        sharded.apply(Update("R", (1, 2), 1))
        sharded.apply(Update("S", (2, 3), 1))
        assert sharded.result() == {(1, 3): 1}
        sharded.check_invariants()

    def test_apply_stream_with_batch_size(self):
        database = small_path_database(seed=13)
        stream = mixed_path_stream(seed=14, count=50)
        single = HierarchicalEngine(PATH).load(database)
        single.apply_stream(stream, batch_size=7)
        sharded = ShardedEngine(PATH, shards=4, executor="serial").load(database)
        sharded.apply_stream(stream, batch_size=7)
        assert sharded.result() == single.result()
        # raw chunks are routed before consolidation, so fleet-wide source
        # accounting matches the unsharded driver exactly
        assert (
            sharded.rebalance_stats.updates == single.rebalance_stats.updates
        )
        with pytest.raises(ValueError, match="batch size"):
            sharded.apply_stream(stream, batch_size=0)
        with pytest.raises(ValueError, match="batch size"):
            sharded.apply_stream(stream, batch_size=True)

    def test_over_delete_raises(self):
        sharded = ShardedEngine(PATH, shards=2, executor="serial")
        sharded.load(small_path_database(seed=15))
        with pytest.raises(RejectedUpdateError):
            sharded.apply(Update("R", (987, 654), -1))

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_cross_shard_batch_is_all_or_nothing(self, executor):
        # a batch spanning several shards with an over-delete on one of
        # them must leave every shard untouched, exactly like the single
        # engine's validated batch path
        database = small_path_database(seed=16)
        sharded = ShardedEngine(PATH, shards=4, executor=executor)
        sharded.load(database)
        before = sharded.result()
        before_sizes = sharded.shard_sizes()
        router = sharded.router
        good = [
            Update("R", (500 + b, b), 1)
            for b in range(8)  # spreads over several shards
        ]
        assert len({router.shard_of_update(u) for u in good}) > 1
        bad = Update("R", (987, 654), -1)  # over-delete on its shard
        with pytest.raises(RejectedUpdateError):
            sharded.apply_batch(good + [bad])
        assert sharded.shard_sizes() == before_sizes
        assert sharded.result() == before
        sharded.check_invariants()
        sharded.close()


# ----------------------------------------------------------------------
# rebalancing stays shard-local
# ----------------------------------------------------------------------
class TestShardLocalRebalancing:
    def test_minor_rebalances_confined_to_the_hot_shard(self):
        database = small_path_database(seed=21, size=60)
        hot_key = 3
        burst = [Update("R", (1000 + i, hot_key), 1) for i in range(40)]
        stream = UpdateStream(burst + [u.inverted() for u in reversed(burst)])
        sharded = assert_matches_single(
            PATH, database, stream, shards=4, batched=False, epsilon=0.5
        )
        per_shard = sharded.rebalance_stats_per_shard()
        hot_shard = sharded.router.shard_of_value(hot_key)
        assert per_shard[hot_shard].minor_rebalances > 0
        merged = sharded.rebalance_stats
        assert merged.minor_rebalances == sum(
            s.minor_rebalances for s in per_shard if s is not None
        )
        assert merged.updates == len(stream)

    def test_major_rebalances_fire_per_shard_and_stay_correct(self):
        database = small_path_database(seed=22, size=20)
        growth = [
            Update("R", (5000 + i, i % 8), 1) for i in range(300)
        ]  # > 2N inserts: every shard's threshold base must double
        sharded = assert_matches_single(
            PATH, database, UpdateStream(growth), shards=4, batched=False
        )
        assert sharded.rebalance_stats.major_rebalances >= 4

    def test_merged_stats_helpers(self):
        a = RebalanceStats(updates=3, minor_rebalances=1)
        b = RebalanceStats(updates=4, major_rebalances=2)
        merged = RebalanceStats.merged([a, b])
        assert merged.updates == 7
        assert merged.minor_rebalances == 1
        assert merged.major_rebalances == 2
        assert RebalanceStats.from_dict(merged.as_dict()) == merged


# ----------------------------------------------------------------------
# the k-way merge
# ----------------------------------------------------------------------
class TestMergeShards:
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 20), st.integers(0, 20)),
                st.integers(1, 5),
            ),
            max_size=60,
        ),
        st.integers(1, 6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_aggregated_sort(self, pairs, shards, rng):
        aggregated = {}
        for tup, mult in pairs:
            aggregated[tup] = aggregated.get(tup, 0) + mult
        buckets = [dict() for _ in range(shards)]
        for tup, mult in aggregated.items():
            bucket = buckets[rng.randrange(shards)]
            bucket[tup] = mult
        sources = [sort_shard_result(bucket.items()) for bucket in buckets]
        merged = list(merge_shards(sources))
        assert merged == sort_shard_result(aggregated.items())

    @given(
        st.lists(
            st.tuples(st.tuples(st.integers(0, 10)), st.integers(1, 3)),
            max_size=30,
        ),
        st.integers(2, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_overlapping_shards_sum_multiplicities(self, pairs, shards):
        # every shard carries the same tuples: the merge must emit each
        # tuple once with the multiplicity summed shard-count times
        deduped = {}
        for tup, mult in pairs:
            deduped[tup] = mult
        source = sort_shard_result(deduped.items())
        merged = dict(merge_shards([list(source) for _ in range(shards)]))
        assert merged == {tup: mult * shards for tup, mult in deduped.items()}

    def test_out_of_order_source_detected(self):
        good = [((1,), 1), ((2,), 1)]
        bad = [((5,), 1), ((3,), 1)]
        with pytest.raises(ValueError, match="out of canonical order"):
            list(merge_shards([good, bad]))

    def test_mixed_type_tuples_merge_deterministically(self):
        a = sort_shard_result([(("x", 1), 1), ((2, 2), 1)])
        b = sort_shard_result([((1, "y"), 2)])
        merged = list(merge_shards([a, b]))
        keys = [canonical_sort_key(tup) for tup, _ in merged]
        assert keys == sorted(keys)
        assert dict(merged) == {("x", 1): 1, (2, 2): 1, (1, "y"): 2}


# ----------------------------------------------------------------------
# Hypothesis: sharded enumeration == single engine, end to end
# ----------------------------------------------------------------------
@st.composite
def path_workload(draw):
    tuples = draw(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 4)), min_size=0, max_size=25
        )
    )
    # a hot join value so thresholds get crossed and minor rebalances fire
    hot = draw(st.integers(0, 4))
    bursts = draw(st.integers(0, 15))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("R", "S")),
                st.integers(0, 5),
                st.integers(0, 4),
                st.sampled_from((1, 1, -1)),
            ),
            max_size=30,
        )
    )
    shards = draw(st.sampled_from((1, 2, 4, 7)))
    epsilon = draw(st.sampled_from((0.0, 0.5, 1.0)))
    return tuples, hot, bursts, operations, shards, epsilon


class TestShardMergeProperty:
    @given(path_workload())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_sharded_indistinguishable_from_single(self, workload):
        tuples, hot, bursts, operations, shards, epsilon = workload
        database = Database.from_dict(
            {"R": (("A", "B"), tuples), "S": (("B", "C"), [(b, a) for a, b in tuples])}
        )
        shadow = database.copy()
        updates = []
        for i in range(bursts):
            updates.append(Update("R", (100 + i, hot), 1))
        for relation, a, b, sign in operations:
            tup = (a, b)
            if sign < 0 and shadow.relation(relation).multiplicity(tup) == 0:
                continue
            updates.append(Update(relation, tup, sign))
            shadow.relation(relation).apply_delta(tup, sign)
        for i in reversed(range(bursts)):
            updates.append(Update("R", (100 + i, hot), -1))
        check_shard_merge(PATH, epsilon, database, updates, shard_counts=(shards,))


# ----------------------------------------------------------------------
# seeded determinism: byte-identical enumeration across runs and executors
# ----------------------------------------------------------------------
def _enumeration_bytes(executor: str, seed: int, shards: int = 4) -> bytes:
    database = skewed_shard_database(size=300, seed=seed)
    stream = skewed_shard_stream(120, seed=seed + 1)
    engine = ShardedEngine(PATH, shards=shards, executor=executor)
    engine.load(database)
    engine.apply_stream(stream, batch_size=20)
    payload = repr(list(engine.enumerate())).encode("utf-8")
    engine.close()
    return payload


class TestSeededDeterminism:
    def test_two_runs_byte_identical(self):
        assert _enumeration_bytes("serial", seed=42) == _enumeration_bytes(
            "serial", seed=42
        )

    def test_thread_scheduling_cannot_leak_into_results(self):
        # the thread executor dispatches shard batches concurrently; results
        # must still be byte-identical to the serial run and to a rerun
        first = _enumeration_bytes("thread", seed=43)
        second = _enumeration_bytes("thread", seed=43)
        assert first == second
        assert first == _enumeration_bytes("serial", seed=43)

    def test_different_seeds_differ(self):
        # guard against the determinism test passing vacuously
        assert _enumeration_bytes("serial", seed=44) != _enumeration_bytes(
            "serial", seed=45
        )


# ----------------------------------------------------------------------
# empty-net-effect batches at shard boundaries (regression)
# ----------------------------------------------------------------------
class TestEmptyNetEffectBatches:
    def test_batches_yield_cancelled_chunks_and_routing_dispatches_nothing(self):
        pairs = [Update("R", (7, 3), 1), Update("R", (7, 3), -1)] * 3
        stream = UpdateStream(pairs)
        chunks = list(stream.batches(2))
        # every chunk consolidates to an empty net effect but keeps counts
        assert len(chunks) == 3
        assert all(chunk.is_empty() and chunk.source_count == 2 for chunk in chunks)
        router = ShardRouter(HierarchicalEngine(PATH).query, 4)
        for chunk in chunks:
            assert router.split_batch(chunk) == {}

    def test_consolidated_empty_batch_is_a_noop_on_every_shard(self):
        database = small_path_database(seed=31)
        sharded = ShardedEngine(PATH, shards=4, executor="serial").load(database)
        before_sizes = sharded.shard_sizes()
        before_result = sharded.result()
        batch = UpdateBatch([Update("R", (9, 1), 1), Update("R", (9, 1), -1)])
        assert batch.is_empty()
        sharded.apply_batch(batch)
        assert sharded.shard_sizes() == before_sizes
        assert sharded.result() == before_result
        sharded.check_invariants()

    def test_raw_cancelled_updates_still_counted_like_the_unsharded_driver(self):
        database = small_path_database(seed=32)
        single = HierarchicalEngine(PATH).load(database)
        sharded = ShardedEngine(PATH, shards=4, executor="serial").load(database)
        cancelled = [Update("R", (9, 1), 1), Update("R", (9, 1), -1)]
        single.apply_batch(cancelled)
        sharded.apply_batch(cancelled)
        # both paths route the raw pair, so both count its source updates
        assert single.rebalance_stats.updates == 2
        assert sharded.rebalance_stats.updates == 2
        assert sharded.result() == single.result()

    def test_boundary_chunking_equals_whole_for_sharded_and_single(self):
        rng = random.Random(33)
        database = small_path_database(seed=33)
        updates = []
        for i in range(10):
            tup = (rng.randrange(12), rng.randrange(8))
            # insert/delete pairs straddling batch boundaries of size 3
            updates.append(Update("R", tup, 1))
            updates.append(Update("R", tup, -1))
        stream = UpdateStream(updates)
        single = HierarchicalEngine(PATH).load(database)
        single.apply_stream(stream)
        for batch_size in (1, 2, 3, 5, len(updates)):
            sharded = ShardedEngine(PATH, shards=3, executor="serial")
            sharded.load(database)
            for batch in stream.batches(batch_size):
                sharded.apply_batch(batch)
            assert sharded.result() == single.result(), batch_size
            sharded.check_invariants()
            sharded.close()

    def test_batch_split_by_buckets_net_entries(self):
        batch = UpdateBatch(
            [
                Update("R", (1, 2), 2),
                Update("S", (2, 9), 1),
                Update("R", (3, 4), 1),
                Update("R", (3, 4), -1),
            ]
        )
        split = batch.split_by(lambda relation, tup: 0 if relation == "R" else 1)
        assert set(split) == {0, 1}
        assert dict(split[0].delta_for("R")) == {(1, 2): 2}
        assert dict(split[1].delta_for("S")) == {(2, 9): 1}


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class TestExecutors:
    def test_thread_executor_matches_serial(self):
        database = small_path_database(seed=51)
        stream = mixed_path_stream(seed=52, count=40)
        results = {}
        for executor in ("serial", "thread"):
            engine = ShardedEngine(PATH, shards=4, executor=executor)
            engine.load(database)
            engine.apply_batch(stream)
            results[executor] = list(engine.enumerate())
            engine.check_invariants()
            engine.close()
        assert results["serial"] == results["thread"]

    def test_process_executor_end_to_end(self):
        database = small_path_database(seed=53, size=25)
        stream = mixed_path_stream(seed=54, count=20)
        single = HierarchicalEngine(PATH).load(database)
        single.apply_batch(list(stream))
        with ShardedEngine(PATH, shards=2, executor="process") as engine:
            engine.load(database)
            engine.apply_batch(stream)
            assert engine.result() == single.result()
            engine.check_invariants()
            assert engine.rebalance_stats.updates == len(stream)

    def test_process_executor_propagates_typed_errors(self):
        database = small_path_database(seed=55, size=15)
        with ShardedEngine(PATH, shards=2, executor="process") as engine:
            engine.load(database)
            with pytest.raises(RejectedUpdateError):
                engine.apply(Update("R", (12345, 6789), -1))
            # the worker survives the error and keeps serving
            engine.apply(Update("R", (12345, 6789), 1))
            assert engine.shard_sizes()

    def test_process_executor_pipes_stay_level_after_mapped_error(self):
        # an error on one shard during a fan-out must not leave other
        # shards' replies queued (a desynced pipe corrupts every later
        # command); the engine must keep answering correctly afterwards
        database = small_path_database(seed=59)
        single = HierarchicalEngine(PATH).load(database)
        with ShardedEngine(PATH, shards=3, executor="process") as engine:
            engine.load(database)
            before = engine.result()
            assert before == single.result()
            good = [Update("R", (700 + b, b), 1) for b in range(8)]
            with pytest.raises(RejectedUpdateError):
                engine.apply_batch(good + [Update("R", (987, 654), -1)])
            # pipes drained and state untouched: results still coherent
            assert engine.result() == before
            engine.apply_batch(good)
            single.apply_batch(list(good))
            assert engine.result() == single.result()
            engine.check_invariants()

    def test_auto_resolution_prefers_in_process_for_small_n(self):
        engine = ShardedEngine(PATH, shards=4, executor="auto")
        engine.load(small_path_database(seed=56))
        assert engine.executor_name in ("thread", "serial")
        engine.close()

    def test_hot_shard_scenario_flips_keys_heavy(self):
        # the benchmark's premise, pinned as a fast test: hot keys are light
        # for the single engine but heavy for every shard of a 4-way split
        database = hot_shard_database(size=300, hot_keys=4, seed=57)
        single = HierarchicalEngine(PATH, epsilon=0.5).load(database)
        sharded = ShardedEngine(PATH, shards=4, epsilon=0.5, executor="serial")
        sharded.load(database)
        stream = hot_shard_stream(40, hot_keys=4, seed=58)
        for update in stream:
            single.apply(update)
            sharded.apply(update)
        assert sharded.result() == single.result()
        assert max(sharded.thresholds()) < single.threshold
        assert HOT_SHARD_KEY_BASE  # hot keys live in a reserved id range
        sharded.close()


def test_epsilon_validated_at_construction():
    with pytest.raises(ValueError, match="epsilon"):
        ShardedEngine(PATH, shards=2, epsilon=1.5)
    with pytest.raises(ValueError, match="epsilon"):
        ShardedEngine(PATH, shards=2, epsilon=-0.1)
