"""Property-based end-to-end test: random hierarchical queries, random data,
random update sequences — the engine must always agree with naive evaluation.

This is the strongest invariant in the repository: it exercises the whole
pipeline (classification, variable orders, τ, materialization, enumeration,
delta propagation, rebalancing) on query shapes the hand-written tests do not
cover.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, HierarchicalEngine
from repro.engine import evaluate_query_naive
from repro.query.atom import Atom
from repro.query.classes import is_hierarchical
from repro.query.conjunctive import ConjunctiveQuery


@st.composite
def hierarchical_query_and_workload(draw):
    """A random hierarchical query plus initial data and an update sequence.

    The query is built over a two-level variable hierarchy: a root variable
    ``X`` shared by every atom, group variables ``G_j`` shared by the atoms
    of one group, and per-atom private variables ``P_i`` — which guarantees
    the hierarchical property by construction.
    """
    n_atoms = draw(st.integers(1, 3))
    atoms = []
    all_vars = ["X"]
    for i in range(n_atoms):
        schema = ["X"]
        group = draw(st.integers(0, 1))
        if draw(st.booleans()):
            group_var = f"G{group}"
            schema.append(group_var)
            if group_var not in all_vars:
                all_vars.append(group_var)
        if draw(st.booleans()):
            private = f"P{i}"
            schema.append(private)
            all_vars.append(private)
        atoms.append(Atom(f"R{i}", tuple(schema)))
    head = tuple(v for v in all_vars if draw(st.booleans()))
    query = ConjunctiveQuery(head, atoms)

    def rows(atom):
        return draw(
            st.lists(
                st.tuples(*[st.integers(0, 2) for _ in atom.variables]), max_size=8
            )
        )

    initial = {atom.relation: (atom.variables, rows(atom)) for atom in atoms}
    operations = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_atoms - 1),
                st.integers(0, 2),
                st.integers(0, 2),
                st.integers(0, 2),
                st.integers(-1, 1).filter(lambda m: m != 0),
            ),
            max_size=20,
        )
    )
    epsilon = draw(st.sampled_from([0.0, 0.5, 1.0]))
    return query, initial, operations, epsilon


class TestRandomHierarchicalMaintenance:
    @given(hierarchical_query_and_workload())
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_engine_tracks_naive_evaluation(self, case):
        query, initial, operations, epsilon = case
        assert is_hierarchical(query)
        database = Database.from_dict(initial)
        engine = HierarchicalEngine(query, epsilon=epsilon, mode="dynamic")
        engine.load(database)
        shadow = database.copy()
        for atom_index, *values, mult in operations:
            atom = query.atoms[atom_index]
            tup = tuple(values[: len(atom.variables)])
            if shadow.relation(atom.relation).multiplicity(tup) + mult < 0:
                continue
            engine.update(atom.relation, tup, mult)
            shadow.relation(atom.relation).apply_delta(tup, mult)
        assert engine.result() == evaluate_query_naive(query, shadow).as_dict()

    @given(hierarchical_query_and_workload())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_static_mode_matches_naive_on_final_state(self, case):
        query, initial, operations, epsilon = case
        database = Database.from_dict(initial)
        for atom_index, *values, mult in operations:
            atom = query.atoms[atom_index]
            tup = tuple(values[: len(atom.variables)])
            if database.relation(atom.relation).multiplicity(tup) + mult < 0:
                continue
            database.relation(atom.relation).apply_delta(tup, mult)
        engine = HierarchicalEngine(query, epsilon=epsilon, mode="static")
        engine.load(database)
        assert engine.result() == evaluate_query_naive(query, database).as_dict()

    @given(hierarchical_query_and_workload())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_enumeration_produces_distinct_tuples(self, case):
        query, initial, _operations, epsilon = case
        database = Database.from_dict(initial)
        engine = HierarchicalEngine(query, epsilon=epsilon, mode="dynamic")
        engine.load(database)
        tuples = [tup for tup, _mult in engine.enumerate()]
        assert len(tuples) == len(set(tuples))
        assert all(len(tup) == len(query.head) for tup in tuples)

    @given(hierarchical_query_and_workload())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_partition_and_indicator_invariants_after_updates(self, case):
        query, initial, operations, epsilon = case
        database = Database.from_dict(initial)
        engine = HierarchicalEngine(query, epsilon=epsilon, mode="dynamic")
        engine.load(database)
        for atom_index, *values, mult in operations:
            atom = query.atoms[atom_index]
            tup = tuple(values[: len(atom.variables)])
            try:
                engine.update(atom.relation, tup, mult)
            except Exception:
                continue
        for partition in engine._skew_plan.partitions:
            partition.check_consistency()
        for triple in engine._skew_plan.indicator_triples:
            assert triple.check_support()
