"""Durability unit and regression tests: WAL format, checkpoints, recovery.

The corruption regressions follow one contract: *any* on-disk defect a
crash can leave behind — a torn last record, a flipped CRC byte, a
duplicate version, an empty or truncated file — recovers to the last
durable prefix with a clear log line, and never crashes or silently
diverges.
"""

import logging
import struct

import pytest

from repro.core.api import HierarchicalEngine
from repro.data.database import Database
from repro.data.update import Update
from repro.durability import (
    DurabilityConfig,
    coerce_config,
    recover_engine,
)
from repro.durability import checkpoint as ckpt
from repro.durability import wal as walmod
from repro.exceptions import DurabilityError
from repro.views.build import STATIC_MODE

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def make_database(pairs_r=((1, 1), (1, 2), (2, 3)), pairs_s=((1, 5), (2, 5), (3, 6))):
    database = Database()
    r = database.create_relation("R", ("A", "B"))
    s = database.create_relation("S", ("B", "C"))
    for tup in pairs_r:
        r.apply_delta(tup, 1)
    for tup in pairs_s:
        s.apply_delta(tup, 1)
    return database


def durable_engine(tmp_path, interval=3, epsilon=0.5, fsync=True):
    config = DurabilityConfig(
        str(tmp_path / "wal"), checkpoint_interval=interval, fsync=fsync
    )
    engine = HierarchicalEngine(PATH_QUERY, epsilon=epsilon, durability=config)
    engine.load(make_database())
    return engine, config


STREAM = [
    Update("R", (3, 1), 1),
    Update("S", (1, 7), 1),
    Update("R", (1, 2), 1),
    Update("S", (2, 8), 1),
    Update("R", (3, 1), -1),
    Update("S", (5, 5), 1),
    Update("R", (4, 5), 1),
]


class TestWalFormat:
    def test_append_scan_round_trip(self, tmp_path):
        path = tmp_path / walmod.wal_name(0)
        writer = walmod.WalWriter.create(path)
        for version, update in enumerate(STREAM, start=1):
            writer.append(walmod.encode_update(version, update))
        writer.close()
        scan = walmod.scan_wal(path)
        assert [record["v"] for record in scan.records] == list(
            range(1, len(STREAM) + 1)
        )
        assert scan.truncated_bytes == 0
        assert scan.warnings == []
        assert scan.valid_length == path.stat().st_size
        decoded = [
            Update(r["rel"], tuple(r["tup"]), r["m"]) for r in scan.records
        ]
        assert decoded == STREAM

    def test_batch_round_trip_preserves_order_and_source_count(self, tmp_path):
        from repro.data.update import as_batch

        batch = as_batch(
            [Update("S", (9, 9), 1), Update("R", (8, 8), 1), Update("S", (9, 9), 1)]
        )
        path = tmp_path / walmod.wal_name(0)
        writer = walmod.WalWriter.create(path)
        writer.append(walmod.encode_batch(1, batch))
        writer.close()
        (record,) = walmod.scan_wal(path).records
        rebuilt = walmod.decode_batch(record)
        assert rebuilt.source_count == batch.source_count
        assert list(rebuilt.deltas_by_relation()) == list(batch.deltas_by_relation())

    def test_segment_listing_sorts_and_skips_noise(self, tmp_path):
        for version in (7, 0, 21):
            walmod.WalWriter.create(tmp_path / walmod.wal_name(version)).close()
        (tmp_path / "wal-notanumber.log").write_bytes(b"junk")
        assert [start for start, _ in walmod.wal_segments(tmp_path)] == [0, 7, 21]


class TestWalCorruptionRegressions:
    """Every defect truncates to the durable prefix — logged, never fatal."""

    def _segment_with(self, tmp_path, count=4):
        path = tmp_path / walmod.wal_name(0)
        writer = walmod.WalWriter.create(path)
        for version, update in enumerate(STREAM[:count], start=1):
            writer.append(walmod.encode_update(version, update))
        writer.close()
        return path

    def test_truncated_last_record(self, tmp_path, caplog):
        path = self._segment_with(tmp_path)
        intact = walmod.scan_wal(path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with caplog.at_level(logging.WARNING, logger="repro.durability"):
            scan = walmod.scan_wal(path)
        assert [r["v"] for r in scan.records] == [1, 2, 3]
        assert scan.truncated_bytes > 0
        assert scan.valid_length < len(data) - 5
        assert any("truncating" in w for w in scan.warnings)
        assert any("torn record payload" in rec.message for rec in caplog.records)
        assert intact.records[:3] == scan.records

    def test_flipped_crc_byte(self, tmp_path, caplog):
        path = self._segment_with(tmp_path)
        data = bytearray(path.read_bytes())
        # flip one byte inside the *payload* of the third record
        offsets = self._record_offsets(data)
        payload_start = offsets[2] + 8
        data[payload_start + 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with caplog.at_level(logging.WARNING, logger="repro.durability"):
            scan = walmod.scan_wal(path)
        assert [r["v"] for r in scan.records] == [1, 2]
        assert any("CRC mismatch" in w for w in scan.warnings)

    def test_duplicate_version_record(self, tmp_path, caplog):
        path = tmp_path / walmod.wal_name(0)
        writer = walmod.WalWriter.create(path)
        writer.append(walmod.encode_update(1, STREAM[0]))
        writer.append(walmod.encode_update(2, STREAM[1]))
        writer.append(walmod.encode_update(2, STREAM[2]))  # duplicate
        writer.close()
        with caplog.at_level(logging.WARNING, logger="repro.durability"):
            scan = walmod.scan_wal(path, last_version=0)
        assert [r["v"] for r in scan.records] == [1, 2]
        assert any("duplicate or out-of-order" in w for w in scan.warnings)

    def test_version_gap_record(self, tmp_path):
        path = tmp_path / walmod.wal_name(0)
        writer = walmod.WalWriter.create(path)
        writer.append(walmod.encode_update(1, STREAM[0]))
        writer.append(walmod.encode_update(5, STREAM[1]))  # gap
        writer.close()
        scan = walmod.scan_wal(path, last_version=0)
        assert [r["v"] for r in scan.records] == [1]

    def test_empty_file(self, tmp_path, caplog):
        path = tmp_path / walmod.wal_name(0)
        path.write_bytes(b"")
        with caplog.at_level(logging.WARNING, logger="repro.durability"):
            scan = walmod.scan_wal(path)
        assert scan.records == []
        assert scan.valid_length == 0
        assert any("magic" in w for w in scan.warnings)

    def test_magic_only_file_is_a_valid_empty_segment(self, tmp_path):
        path = tmp_path / walmod.wal_name(0)
        walmod.WalWriter.create(path).close()
        scan = walmod.scan_wal(path)
        assert scan.records == []
        assert scan.warnings == []
        assert scan.valid_length == len(walmod.WAL_MAGIC)

    def test_garbage_prefix_file(self, tmp_path):
        path = tmp_path / walmod.wal_name(0)
        path.write_bytes(b"not a wal at all")
        scan = walmod.scan_wal(path)
        assert scan.records == []
        assert scan.truncated_bytes == len(b"not a wal at all")

    def test_implausible_length_prefix(self, tmp_path):
        path = self._segment_with(tmp_path, count=1)
        with open(path, "ab") as handle:
            handle.write(struct.pack(">II", walmod.MAX_RECORD_BYTES + 1, 0))
            handle.write(b"xx")
        scan = walmod.scan_wal(path)
        assert [r["v"] for r in scan.records] == [1]
        assert any("implausible" in w for w in scan.warnings)

    def test_unparseable_payload(self, tmp_path):
        import zlib as _z

        path = self._segment_with(tmp_path, count=1)
        body = b"this is not json"
        with open(path, "ab") as handle:
            handle.write(struct.pack(">II", len(body), _z.crc32(body)) + body)
        scan = walmod.scan_wal(path)
        assert [r["v"] for r in scan.records] == [1]
        assert any("unparseable" in w for w in scan.warnings)

    @staticmethod
    def _record_offsets(data):
        offsets = []
        offset = len(walmod.WAL_MAGIC)
        while offset + 8 <= len(data):
            length, _crc = struct.unpack_from(">II", data, offset)
            offsets.append(offset)
            offset += 8 + length
        return offsets


class TestCheckpointFiles:
    def test_write_load_round_trip(self, tmp_path):
        engine, _config = durable_engine(tmp_path)
        state = ckpt.engine_state(engine)
        path = ckpt.write_checkpoint(tmp_path, state)
        assert ckpt.load_checkpoint(path) == ckpt.load_checkpoint(path)
        loaded = ckpt.load_checkpoint(path)
        assert loaded["version"] == engine.version
        assert loaded["query"] == str(engine.query)
        engine.close()

    def test_newest_corrupt_falls_back(self, tmp_path, caplog):
        engine, _config = durable_engine(tmp_path)
        state = ckpt.engine_state(engine)
        ckpt.write_checkpoint(tmp_path, state)
        newer = dict(state, version=state["version"] + 5)
        newest = ckpt.write_checkpoint(tmp_path, newer)
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))
        with caplog.at_level(logging.WARNING, logger="repro.durability"):
            loaded, path, warnings = ckpt.load_newest_checkpoint(tmp_path)
        assert loaded["version"] == state["version"]
        assert warnings and "falling back" in warnings[0]
        engine.close()

    def test_no_valid_checkpoint_raises(self, tmp_path):
        (tmp_path / ckpt.checkpoint_name(3)).write_bytes(b"garbage")
        with pytest.raises(FileNotFoundError):
            ckpt.load_newest_checkpoint(tmp_path)

    def test_static_engine_cannot_be_checkpointed(self):
        engine = HierarchicalEngine(PATH_QUERY, mode=STATIC_MODE)
        engine.load(make_database())
        with pytest.raises(ValueError):
            ckpt.engine_state(engine)


class TestDurabilityConfig:
    def test_coercion_accepts_paths_and_configs(self, tmp_path):
        from pathlib import Path

        config = coerce_config(str(tmp_path / "x"))
        assert isinstance(config, DurabilityConfig)
        assert coerce_config(config) is config
        assert coerce_config(Path(tmp_path / "y")).directory.endswith("y")

    def test_for_shard_nests_directories(self, tmp_path):
        config = DurabilityConfig(str(tmp_path), checkpoint_interval=9, fsync=False)
        shard = config.for_shard(2)
        assert shard.directory.endswith("shard-2")
        assert shard.checkpoint_interval == 9
        assert shard.fsync is False

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityConfig(str(tmp_path), keep_checkpoints=0)
        # interval 0/None is legal: it disables *scheduled* checkpoints
        assert DurabilityConfig(str(tmp_path), checkpoint_interval=0)
        assert DurabilityConfig(str(tmp_path), checkpoint_interval=None)

    def test_static_mode_engine_rejects_durability(self, tmp_path):
        with pytest.raises(DurabilityError):
            HierarchicalEngine(
                PATH_QUERY, mode=STATIC_MODE, durability=str(tmp_path)
            )


class TestEngineRecovery:
    def test_clean_close_recovers_exact_state(self, tmp_path):
        engine, config = durable_engine(tmp_path, interval=3)
        for update in STREAM:
            engine.apply(update)
        engine.retune(0.75)
        expected = (engine.version, dict(engine.result()), list(engine.enumerate()))
        engine.close()
        recovered, report = recover_engine(config.directory, config)
        assert (
            recovered.version,
            dict(recovered.result()),
            list(recovered.enumerate()),
        ) == expected
        assert report.final_version == expected[0]
        recovered.check_invariants()
        recovered.close()

    def test_recovery_is_idempotent(self, tmp_path):
        engine, config = durable_engine(tmp_path, interval=2)
        for update in STREAM:
            engine.apply(update)
        expected = dict(engine.result())
        engine.close()
        for _ in range(3):
            recovered, _report = recover_engine(config.directory, config)
            assert dict(recovered.result()) == expected
            recovered.close()

    def test_recovered_engine_keeps_committing(self, tmp_path):
        engine, config = durable_engine(tmp_path, interval=3)
        for update in STREAM[:4]:
            engine.apply(update)
        engine.close()
        recovered, _report = recover_engine(config.directory, config)
        for update in STREAM[4:]:
            recovered.apply(update)
        expected = (recovered.version, dict(recovered.result()))
        recovered.close()
        again, _report = recover_engine(config.directory, config)
        assert (again.version, dict(again.result())) == expected
        again.close()

    def test_recovery_with_torn_tail_resumes_before_it(self, tmp_path, caplog):
        engine, config = durable_engine(tmp_path, interval=100)
        for update in STREAM:
            engine.apply(update)
        engine.close()
        segments = walmod.wal_segments(config.path)
        _start, active = segments[-1]
        active.write_bytes(active.read_bytes()[:-7])
        with caplog.at_level(logging.WARNING, logger="repro.durability"):
            recovered, report = recover_engine(config.directory, config)
        assert report.truncated_bytes > 0
        assert recovered.version == len(STREAM) - 1
        recovered.check_invariants()
        recovered.close()

    def test_empty_directory_raises_durability_error(self, tmp_path):
        with pytest.raises(DurabilityError):
            recover_engine(tmp_path)

    def test_wal_not_extending_checkpoint_raises(self, tmp_path):
        engine, config = durable_engine(tmp_path, interval=100)
        for update in STREAM[:3]:
            engine.apply(update)
        engine.close()
        # surgically remove the first record after the checkpoint: the tail
        # then starts at version 2, which cannot extend checkpoint 0
        _start, active = walmod.wal_segments(config.path)[-1]
        data = active.read_bytes()
        offset = len(walmod.WAL_MAGIC)
        length, _crc = struct.unpack_from(">II", data, offset)
        active.write_bytes(
            data[:offset] + data[offset + 8 + length :]
        )
        with pytest.raises(DurabilityError):
            recover_engine(config.directory, config)

    def test_manual_checkpoint_and_stats(self, tmp_path):
        engine, config = durable_engine(tmp_path, interval=1000)
        for update in STREAM[:3]:
            engine.apply(update)
        before = engine.durability_stats.checkpoints_written
        engine.checkpoint()
        stats = engine.durability_stats
        assert stats.checkpoints_written == before + 1
        assert stats.last_checkpoint_version == engine.version
        assert stats.wal_records == 3
        engine.close()

    def test_checkpoint_requires_durability(self):
        engine = HierarchicalEngine(PATH_QUERY)
        engine.load(make_database())
        with pytest.raises(DurabilityError):
            engine.checkpoint()

    def test_retention_prunes_checkpoints_and_segments(self, tmp_path):
        config = DurabilityConfig(
            str(tmp_path / "wal"), checkpoint_interval=2, keep_checkpoints=2
        )
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5, durability=config)
        engine.load(make_database())
        for index in range(12):
            engine.apply(Update("R", (90 + index, 90 + index), 1))
        engine.close()
        checkpoints = ckpt.find_checkpoints(config.path)
        assert len(checkpoints) == 2
        oldest_kept = checkpoints[0][0]
        segments = walmod.wal_segments(config.path)
        # every surviving segment is still reachable from the oldest kept
        # checkpoint: the last segment starting at or before it, plus later
        assert sum(1 for start, _ in segments if start < oldest_kept) <= 1
        recovered, _report = recover_engine(config.directory, config)
        assert recovered.version == 12
        recovered.close()

    def test_fsync_off_still_recovers_after_clean_close(self, tmp_path):
        engine, config = durable_engine(tmp_path, fsync=False)
        for update in STREAM:
            engine.apply(update)
        expected = dict(engine.result())
        engine.close()
        recovered, _report = recover_engine(config.directory, config)
        assert dict(recovered.result()) == expected
        recovered.close()

    def test_reload_starts_a_fresh_durable_history(self, tmp_path):
        engine, config = durable_engine(tmp_path, interval=2)
        for update in STREAM:
            engine.apply(update)
        engine.load(make_database())  # wipe: a new history begins at version 0
        engine.apply(STREAM[0])
        expected = dict(engine.result())
        engine.close()
        recovered, report = recover_engine(config.directory, config)
        assert recovered.version == 1
        assert dict(recovered.result()) == expected
        recovered.close()
