"""Concurrency battery: reader threads vs a writer thread, no torn reads.

Four reader threads enumerate snapshots in a loop while a writer thread
applies consolidated batches.  Every observed read must be a duplicate-free
enumeration with strictly positive multiplicities whose result equals the
oracle replayed to *some* prefix of the batch stream (identified by the
snapshot's version stamp) — for :class:`HierarchicalEngine` and for
:class:`ShardedEngine` under both the thread and the persistent-process
executors.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database, HierarchicalEngine, Update
from repro.baselines import NaiveRecomputeEngine
from repro.core.serving import EngineServer, ReadTicket
from repro.sharding import ShardedEngine

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
READERS = 4
WINDOW_SECONDS = 0.6
BATCHES = 60
BATCH_SIZE = 30


def make_db(seed: int = 11, size: int = 80, domain: int = 10) -> Database:
    rng = random.Random(seed)
    return Database.from_dict(
        {
            "R": (
                ("A", "B"),
                [(rng.randrange(40), rng.randrange(domain)) for _ in range(size)],
            ),
            "S": (
                ("B", "C"),
                [(rng.randrange(domain), rng.randrange(40)) for _ in range(size)],
            ),
        }
    )


def make_batches(seed: int = 12, domain: int = 10):
    rng = random.Random(seed)
    inserted = []
    batches = []
    for _ in range(BATCHES):
        batch = []
        deletable = len(inserted)
        for index in range(BATCH_SIZE):
            if deletable > 0 and index % 3 == 2:
                deletable -= 1
                batch.append(Update("R", inserted.pop(0), -1))
            else:
                tup = (rng.randrange(40), rng.randrange(domain))
                inserted.append(tup)
                batch.append(Update("R", tup, 1))
        batches.append(batch)
    return batches


@pytest.fixture(scope="module")
def workload():
    database = make_db()
    batches = make_batches()
    oracle = NaiveRecomputeEngine(PATH_QUERY).load(database)
    prefix = {0: dict(oracle.result())}
    for version, batch in enumerate(batches, start=1):
        oracle.apply_batch(batch)
        prefix[version] = dict(oracle.result())
    return database, batches, prefix


def assert_ticket_untorn(ticket: ReadTicket, prefix) -> None:
    seen = set()
    for tup, mult in ticket.pairs:
        assert mult > 0, f"non-positive multiplicity {mult} for {tup!r}"
        assert tup not in seen, f"tuple {tup!r} enumerated twice in one read"
        seen.add(tup)
    assert ticket.version in prefix, f"unknown version {ticket.version}"
    assert ticket.result() == prefix[ticket.version], (
        f"read at version {ticket.version} does not match the oracle prefix"
    )


def run_stress(engine, workload) -> int:
    """Writer thread + READERS reader threads; returns the number of reads."""
    database, batches, prefix = workload
    engine.load(database)
    server = EngineServer(engine, mode="snapshot")
    writer = server.start_writer(batches)
    tickets = server.run_readers(READERS, WINDOW_SECONDS)
    writer.join()  # drain the full stream so every version is well-defined
    server.stop_writer()
    tickets.append(server.read())  # one read of the final version
    for ticket in tickets:
        assert_ticket_untorn(ticket, prefix)
    assert engine.version == len(batches)
    assert tickets[-1].version == len(batches)
    return len(tickets)


class TestHierarchicalStress:
    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
    def test_readers_never_observe_torn_state(self, workload, epsilon):
        reads = run_stress(HierarchicalEngine(PATH_QUERY, epsilon=epsilon), workload)
        assert reads >= 1

    def test_private_snapshots_under_concurrent_writer(self, workload):
        """Readers capturing their own snapshots (not the published one)."""
        database, batches, prefix = workload
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(database)
        server = EngineServer(engine, mode="snapshot")
        errors = []
        observed = []

        def reader() -> None:
            try:
                for _ in range(8):
                    snapshot = server.snapshot()
                    result = dict(snapshot.result())
                    assert result == prefix[snapshot.version]
                    observed.append(snapshot.version)
                    snapshot.close()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        writer = server.start_writer(batches)
        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        writer.join()
        server.stop_writer()
        assert not errors, errors[0]
        assert len(observed) == READERS * 8


class TestShardedStress:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_readers_never_observe_torn_state(self, workload, executor):
        engine = ShardedEngine(
            PATH_QUERY, shards=3, epsilon=0.5, executor=executor
        )
        try:
            reads = run_stress(engine, workload)
            assert reads >= 1
        finally:
            engine.close()

    def test_serial_executor_is_safe_too(self, workload):
        engine = ShardedEngine(PATH_QUERY, shards=2, epsilon=0.5, executor="serial")
        try:
            reads = run_stress(engine, workload)
            assert reads >= 1
        finally:
            engine.close()


class TestWriterErrorSurfacing:
    def test_writer_exception_reraised_on_stop(self, workload):
        database, _batches, _prefix = workload
        engine = HierarchicalEngine(PATH_QUERY).load(database)
        server = EngineServer(engine)
        bad = [[Update("R", (1, 1), -10**9)]]  # over-delete: rejected batch
        writer = server.start_writer(bad)
        writer.join()
        with pytest.raises(Exception):
            server.stop_writer()

    def test_two_writers_rejected(self, workload):
        database, batches, _prefix = workload
        engine = HierarchicalEngine(PATH_QUERY).load(database)
        server = EngineServer(engine)
        server.start_writer(iter(batches))
        with pytest.raises(RuntimeError):
            server.start_writer(iter(batches))
        server.stop_writer()

    def test_unknown_mode_rejected(self, workload):
        database, _batches, _prefix = workload
        engine = HierarchicalEngine(PATH_QUERY).load(database)
        with pytest.raises(ValueError):
            EngineServer(engine, mode="optimistic")
