"""Tests for BoundRelation, the fold join, delta joins, and materialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.evaluator import evaluate_query_naive, evaluate_to_dict
from repro.engine.join import (
    BoundRelation,
    delta_join,
    join_children,
    join_to_relation,
)
from repro.engine.materialize import materialize_plan, total_view_size
from repro.exceptions import SchemaError
from repro.query.parser import parse_query
from repro.views.skew import build_skew_aware_plan
from repro.vo.variable_order import build_canonical_variable_order
from tests.conftest import random_database, schemas_for


class TestBoundRelation:
    def make_bound(self):
        relation = Relation("R", ("x", "y"), {(1, 2): 1, (1, 3): 2, (4, 2): 1})
        return BoundRelation(("A", "B"), relation)

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            BoundRelation(("A",), Relation("R", ("x", "y")))

    def test_multiplicity_lookup(self):
        bound = self.make_bound()
        assert bound.multiplicity((1, 3)) == 2
        assert bound.multiplicity_of_assignment({"A": 1, "B": 2}) == 1

    def test_matching_with_partial_assignment(self):
        bound = self.make_bound()
        assert dict(bound.matching({"A": 1})) == {(1, 2): 1, (1, 3): 2}
        assert dict(bound.matching({"B": 2})) == {(1, 2): 1, (4, 2): 1}

    def test_matching_with_full_assignment(self):
        bound = self.make_bound()
        assert dict(bound.matching({"A": 1, "B": 3})) == {(1, 3): 2}
        assert dict(bound.matching({"A": 9, "B": 9})) == {}

    def test_matching_with_empty_assignment_enumerates_all(self):
        bound = self.make_bound()
        assert len(dict(bound.matching({}))) == 3

    def test_matching_ignores_unrelated_context_variables(self):
        bound = self.make_bound()
        assert dict(bound.matching({"Z": 5, "A": 4})) == {(4, 2): 1}

    def test_count_and_contains(self):
        bound = self.make_bound()
        assert bound.count_matching({"A": 1}) == 2
        assert bound.contains_assignment({"B": 2})
        assert not bound.contains_assignment({"B": 99})


class TestJoinChildren:
    def test_two_way_join_with_projection(self):
        r = BoundRelation(("A", "B"), Relation("R", ("A", "B"), {(1, 10): 1, (2, 10): 2}))
        s = BoundRelation(("B", "C"), Relation("S", ("B", "C"), {(10, 5): 3, (11, 6): 1}))
        result = join_children([r, s], ("A", "C"))
        assert result == {(1, 5): 3, (2, 5): 6}

    def test_projection_aggregates_multiplicities(self):
        r = BoundRelation(("A", "B"), Relation("R", ("A", "B"), {(1, 10): 1, (1, 11): 1}))
        s = BoundRelation(("B",), Relation("S", ("B",), {(10,): 1, (11,): 1}))
        result = join_children([r, s], ("A",))
        assert result == {(1,): 2}

    def test_empty_child_gives_empty_result(self):
        r = BoundRelation(("A", "B"), Relation("R", ("A", "B"), {(1, 10): 1}))
        s = BoundRelation(("B", "C"), Relation("S", ("B", "C")))
        assert join_children([r, s], ("A", "C")) == {}

    def test_no_children_gives_unit(self):
        assert join_children([], ()) == {(): 1}

    def test_cartesian_product_when_no_shared_variables(self):
        r = BoundRelation(("A",), Relation("R", ("A",), {(1,): 2}))
        s = BoundRelation(("B",), Relation("S", ("B",), {(7,): 3}))
        assert join_children([r, s], ("A", "B")) == {(1, 7): 6}

    def test_output_variable_not_in_any_child_raises(self):
        r = BoundRelation(("A",), Relation("R", ("A",), {(1,): 1}))
        with pytest.raises(SchemaError):
            join_children([r], ("A", "Z"))

    def test_join_to_relation(self):
        r = BoundRelation(("A", "B"), Relation("R", ("A", "B"), {(1, 10): 1}))
        s = BoundRelation(("B", "C"), Relation("S", ("B", "C"), {(10, 5): 1}))
        relation = join_to_relation([r, s], ("A", "B", "C"), "V")
        assert relation.as_dict() == {(1, 10, 5): 1}
        assert relation.schema == ("A", "B", "C")

    def test_three_way_join_matches_naive_evaluator(self):
        text = "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"
        database = random_database(schemas_for(text), tuples_per_relation=30, seed=5)
        query = parse_query(text)
        children = [
            BoundRelation(atom.variables, database.relation(atom.relation))
            for atom in query.atoms
        ]
        assert join_children(children, tuple(query.head)) == evaluate_to_dict(
            query, database
        )


class TestDeltaJoin:
    def test_single_tuple_delta(self):
        s = BoundRelation(("B", "C"), Relation("S", ("B", "C"), {(10, 5): 2, (11, 6): 1}))
        delta = delta_join(("A", "B"), {(1, 10): 3}, [s], ("A", "C"))
        assert delta == {(1, 5): 6}

    def test_delta_with_negative_multiplicity(self):
        s = BoundRelation(("B",), Relation("S", ("B",), {(10,): 2}))
        delta = delta_join(("A", "B"), {(1, 10): -1}, [s], ("A",))
        assert delta == {(1,): -2}

    def test_empty_delta_short_circuits(self):
        s = BoundRelation(("B",), Relation("S", ("B",)))
        assert delta_join(("A", "B"), {}, [s], ("A",)) == {}
        assert delta_join(("A", "B"), {(1, 10): 0}, [s], ("A",)) == {}

    def test_delta_equals_result_difference(self):
        """δ(Q) after inserting x equals Q(D + x) − Q(D) (the delta rule)."""
        text = "Q(A, C) = R(A, B), S(B, C)"
        query = parse_query(text)
        database = random_database(schemas_for(text), tuples_per_relation=25, seed=9)
        before = evaluate_to_dict(query, database)
        new_tuple = (99, 3)
        siblings = [
            BoundRelation(("B", "C"), database.relation("S")),
        ]
        delta = delta_join(("A", "B"), {new_tuple: 1}, siblings, ("A", "C"))
        database.relation("R").insert(new_tuple)
        after = evaluate_to_dict(query, database)
        expected_delta = {
            key: after.get(key, 0) - before.get(key, 0)
            for key in set(after) | set(before)
            if after.get(key, 0) - before.get(key, 0) != 0
        }
        assert delta == expected_delta


class TestMaterializePlan:
    @pytest.mark.parametrize(
        "text",
        [
            "Q(A, C) = R(A, B), S(B, C)",
            "Q(A) = R(A, B), S(B)",
            "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)",
        ],
    )
    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    def test_root_views_or_union_encode_result(self, text, mode):
        query = parse_query(text)
        database = random_database(schemas_for(text), tuples_per_relation=25, seed=3)
        order = build_canonical_variable_order(query)
        plan = build_skew_aware_plan(query, order, database, mode)
        materialize_plan(plan, threshold=3.0)
        for triple in plan.indicator_triples:
            assert triple.check_support()
        assert total_view_size(plan) > 0

    def test_view_size_counts_light_parts_and_views(self):
        text = "Q(A, C) = R(A, B), S(B, C)"
        query = parse_query(text)
        database = random_database(schemas_for(text), tuples_per_relation=25, seed=3)
        order = build_canonical_variable_order(query)
        plan = build_skew_aware_plan(query, order, database, "dynamic")
        materialize_plan(plan, threshold=3.0)
        size = total_view_size(plan)
        light_total = sum(len(p.light) for p in plan.partitions)
        assert size >= light_total


class TestNaiveEvaluator:
    def test_matches_hand_computed_result(self):
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(1, 10), (2, 10), (2, 20)]),
                "S": (("B", "C"), [(10, 7), (20, 8), (20, 9)]),
            }
        )
        query = parse_query("Q(A, C) = R(A, B), S(B, C)")
        result = evaluate_query_naive(query, database)
        assert result.as_dict() == {
            (1, 7): 1,
            (2, 7): 1,
            (2, 8): 1,
            (2, 9): 1,
        }

    def test_multiplicities_multiply_and_sum(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10), (1, 10), (1, 20)]), "S": (("B",), [(10,), (20,)])}
        )
        query = parse_query("Q(A) = R(A, B), S(B)")
        assert evaluate_query_naive(query, database).as_dict() == {(1,): 3}

    def test_boolean_query(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10)]), "S": (("B",), [(10,)])}
        )
        query = parse_query("Q() = R(A, B), S(B)")
        assert evaluate_query_naive(query, database).as_dict() == {(): 1}


# ----------------------------------------------------------------------
# property-based: fold join against a brute-force nested-loop join
# ----------------------------------------------------------------------
small_pairs = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=0, max_size=15
)


class TestJoinProperties:
    @given(r_rows=small_pairs, s_rows=small_pairs)
    @settings(max_examples=60, deadline=None)
    def test_fold_join_matches_nested_loops(self, r_rows, s_rows):
        r = Relation("R", ("A", "B"))
        s = Relation("S", ("B", "C"))
        for row in r_rows:
            r.apply_delta(row, 1)
        for row in s_rows:
            s.apply_delta(row, 1)
        result = join_children(
            [BoundRelation(("A", "B"), r), BoundRelation(("B", "C"), s)], ("A", "C")
        )
        expected = {}
        for (a, b), m1 in r.items():
            for (b2, c), m2 in s.items():
                if b == b2:
                    expected[(a, c)] = expected.get((a, c), 0) + m1 * m2
        assert result == expected
