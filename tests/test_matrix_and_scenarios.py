"""Tests for the matrix (Example 28 / OMv) and scenario workloads."""

import numpy as np
import pytest

from repro import DynamicEngine, HierarchicalEngine, StaticEngine
from repro.engine import evaluate_query_naive
from repro.query import parse_query
from repro.workloads import (
    RETAIL_QUERY,
    SENSOR_QUERY,
    SOCIAL_QUERY,
    expected_product_support,
    matmul_database,
    matrix_to_pairs,
    omv_matrix_database,
    omv_vector_rounds,
    random_boolean_matrix,
    retail_database,
    retail_update_stream,
    sensor_database,
    sensor_reading_stream,
    social_database,
    social_post_stream,
)


class TestMatrixWorkloads:
    def test_random_boolean_matrix_density(self):
        matrix = random_boolean_matrix(50, density=0.2, seed=1)
        assert matrix.shape == (50, 50)
        assert 0.05 < matrix.mean() < 0.4

    def test_matrix_to_pairs_roundtrip(self):
        matrix = random_boolean_matrix(10, density=0.3, seed=2)
        pairs = matrix_to_pairs(matrix)
        assert len(pairs) == int(matrix.sum())
        for r, c in pairs:
            assert matrix[r, c] == 1

    def test_matmul_database_encodes_both_matrices(self):
        database, left, right = matmul_database(8, density=0.4, seed=3)
        assert len(database.relation("R")) == int(left.sum())
        assert len(database.relation("S")) == int(right.sum())

    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
    def test_example28_matmul_support(self, epsilon):
        """Q(A,C) = R(A,B), S(B,C) on matrix data computes the Boolean product."""
        database, left, right = matmul_database(10, density=0.35, seed=4)
        engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=epsilon).load(database)
        assert set(engine.result()) == expected_product_support(left, right)

    def test_example28_multiplicities_count_witnesses(self):
        """The multiplicity of (a, c) equals the number of shared B values —
        i.e. the integer matrix product."""
        database, left, right = matmul_database(8, density=0.5, seed=5)
        engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5).load(database)
        product = left @ right
        for (a, c), mult in engine.result().items():
            assert mult == product[a, c]

    def test_omv_rounds_reproduce_matrix_vector_products(self):
        """Proposition 10's reduction: each round of updates + enumeration
        yields exactly M·v (the support of the result of Q(A) = R(A,B), S(B))."""
        n = 12
        database, matrix = omv_matrix_database(n, density=0.3, seed=6)
        engine = DynamicEngine("Q(A) = R(A, B), S(B)", epsilon=0.5).load(database)
        for inserts, deletes, vector in omv_vector_rounds(n, rounds=3, seed=7):
            engine.apply_stream(inserts)
            support = {a for (a,), _mult in engine.enumerate()}
            expected = {int(i) for i in np.nonzero((matrix @ vector) > 0)[0]}
            assert support == expected
            engine.apply_stream(deletes)
        assert engine.result() == {}


class TestScenarioWorkloads:
    def test_retail_scenario_end_to_end(self):
        database = retail_database(orders=300, returns=200, seed=1)
        engine = DynamicEngine(RETAIL_QUERY, epsilon=0.5).load(database)
        truth = evaluate_query_naive(parse_query(RETAIL_QUERY), database).as_dict()
        assert engine.result() == truth
        stream = retail_update_stream(60, seed=2)
        shadow = database.copy()
        for update in stream:
            engine.apply(update)
            shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        assert engine.result() == evaluate_query_naive(parse_query(RETAIL_QUERY), shadow).as_dict()

    def test_social_scenario_matches_naive(self):
        database = social_database(follows=400, posts=400, seed=3)
        engine = HierarchicalEngine(SOCIAL_QUERY, epsilon=0.5).load(database)
        truth = evaluate_query_naive(parse_query(SOCIAL_QUERY), database).as_dict()
        assert engine.result() == truth

    def test_social_post_stream_applies_cleanly(self):
        database = social_database(follows=200, posts=200, seed=4)
        engine = DynamicEngine(SOCIAL_QUERY, epsilon=0.5).load(database)
        engine.apply_stream(social_post_stream(50, seed=5))
        assert engine.rebalance_stats.updates == 50

    def test_sensor_scenario_is_free_connex(self):
        database = sensor_database(
            devices=40, registrations=200, calibrations=200, readings=200, seed=6
        )
        engine = HierarchicalEngine(SENSOR_QUERY, epsilon=1.0).load(database)
        assert engine.static_width == pytest.approx(1.0)
        truth = evaluate_query_naive(parse_query(SENSOR_QUERY), database).as_dict()
        assert engine.result() == truth

    def test_sensor_reading_stream(self):
        database = sensor_database(devices=30, registrations=100, calibrations=100, readings=100)
        engine = DynamicEngine(SENSOR_QUERY, epsilon=0.5).load(database)
        shadow = database.copy()
        for update in sensor_reading_stream(40, devices=30, seed=8):
            engine.apply(update)
            shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        truth = evaluate_query_naive(parse_query(SENSOR_QUERY), shadow).as_dict()
        assert engine.result() == truth

    def test_scenario_queries_use_domain_column_names(self):
        """Stored relations use domain column names, queries use variables."""
        database = retail_database(orders=50, returns=50, seed=9)
        assert database.relation("Orders").schema == ("customer", "product")
        engine = HierarchicalEngine(RETAIL_QUERY).load(database)
        assert engine.result() is not None
