"""Tests for the synthetic workload generators and update streams."""

import pytest

from repro.data.update import UpdateStream
from repro.workloads import (
    bounded_degree_database,
    example19_database,
    free_connex_database,
    growth_stream,
    heavy_hitter_pairs,
    insert_stream_from_database,
    mixed_stream,
    path_query_database,
    shrink_stream,
    skew_shift_stream,
    star_query_database,
    uniform_pairs,
    zipf_insert_stream,
    zipf_pairs,
    zipf_values,
)


class TestGenerators:
    def test_uniform_pairs_deterministic(self):
        assert uniform_pairs(10, 5, seed=3) == uniform_pairs(10, 5, seed=3)
        assert uniform_pairs(10, 5, seed=3) != uniform_pairs(10, 5, seed=4)

    def test_zipf_values_range_and_skew(self):
        values = zipf_values(2000, 50, exponent=1.5, seed=1)
        assert all(0 <= v < 50 for v in values)
        counts = {v: values.count(v) for v in set(values)}
        most_common = max(counts.values())
        assert most_common > len(values) / 50  # far above the uniform share

    def test_zipf_exponent_zero_is_roughly_uniform(self):
        values = zipf_values(3000, 10, exponent=0.0, seed=2)
        counts = [values.count(v) for v in range(10)]
        assert max(counts) < 2.0 * min(counts)

    def test_zipf_pairs_key_position(self):
        first = zipf_pairs(50, 5, 100, seed=1, key_position=0)
        second = zipf_pairs(50, 5, 100, seed=1, key_position=1)
        assert all(pair[0] < 5 for pair in first)
        assert all(pair[1] < 5 for pair in second)

    def test_heavy_hitter_pairs_concentrate_mass(self):
        pairs = heavy_hitter_pairs(
            1000, heavy_keys=2, heavy_fraction=0.6, key_domain=500, value_domain=100, seed=0
        )
        hot = sum(1 for _value, key in pairs if key < 2)
        assert hot > 500

    def test_path_query_database_shape(self):
        db = path_query_database(200, skew=1.0, seed=1)
        assert set(db.names()) == {"R", "S"}
        assert db.relation("R").schema == ("A", "B")
        assert 0 < len(db.relation("R")) <= 200

    def test_star_query_database(self):
        db = star_query_database(100, branches=3, seed=2)
        assert set(db.names()) == {"R0", "R1", "R2"}

    def test_free_connex_database(self):
        db = free_connex_database(150, seed=3)
        assert set(db.names()) == {"R", "S", "T"}
        assert db.relation("R").schema == ("A", "B", "C")

    def test_example19_database(self):
        db = example19_database(100, seed=4)
        assert set(db.names()) == {"R", "S", "T", "U"}

    def test_bounded_degree_database_respects_degree(self):
        degree = 3
        db = bounded_degree_database(90, degree, seed=5)
        r = db.relation("R")
        for key in r.distinct_keys(("B",)):
            assert r.slice_size(("B",), key) <= degree


class TestStreams:
    def make_db(self):
        return path_query_database(60, seed=7)

    def test_insert_stream_covers_database(self):
        db = self.make_db()
        stream = insert_stream_from_database(db, seed=1)
        assert len(stream) == sum(len(r) for r in db)
        assert all(u.is_insert for u in stream)

    def test_mixed_stream_is_replayable(self):
        """Deletes in the stream always target tuples present at that point."""
        db = self.make_db()
        stream = mixed_stream(db, 120, delete_fraction=0.4, seed=3)
        shadow = db.copy()
        for update in stream:
            shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)

    def test_mixed_stream_does_not_mutate_input(self):
        db = self.make_db()
        before = {name: db.relation(name).as_dict() for name in db.names()}
        mixed_stream(db, 50, seed=4)
        after = {name: db.relation(name).as_dict() for name in db.names()}
        assert before == after

    def test_skew_shift_stream_is_balanced(self):
        stream = skew_shift_stream("R", 2, 30, hot_key=5, seed=1)
        inserts, deletes = stream.inserts(), stream.deletes()
        assert len(inserts) == len(deletes) == 15
        assert all(u.tuple[1] == 5 for u in stream)

    def test_growth_and_shrink_streams(self):
        assert all(u.is_insert for u in growth_stream("R", 2, 10, seed=2))
        db = self.make_db()
        deletes = shrink_stream(db, "R", 10, seed=3)
        assert all(u.is_delete for u in deletes)
        assert len(deletes) == 10

    def test_zipf_insert_stream(self):
        stream = zipf_insert_stream("S", 200, key_domain=10, value_domain=100, seed=5)
        assert len(stream) == 200
        assert all(u.relation == "S" for u in stream)

    def test_streams_are_update_streams(self):
        assert isinstance(growth_stream("R", 2, 5), UpdateStream)
