"""Tests for canonical variable orders and the free-top transformation."""

import pytest

from repro.exceptions import NotHierarchicalError, UnsupportedQueryError
from repro.query.parser import parse_query
from repro.vo.free_top import free_top_order, highest_bound_over_free, restrict
from repro.vo.variable_order import (
    AtomNode,
    VariableNode,
    build_canonical_variable_order,
)

PAPER_QUERIES = [
    "Q(A, C) = R(A, B), S(B, C)",
    "Q(A) = R(A, B), S(B)",
    "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)",
    "Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)",
    "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)",
    "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",
    "Q(A, B) = R(A, B), S(A)",
    "Q() = R(A, B), S(B)",
    "Q(A, C) = R(A, B), S(C, D)",
]


class TestCanonicalConstruction:
    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_canonical_order_is_valid_and_canonical(self, text):
        query = parse_query(text)
        order = build_canonical_variable_order(query)
        assert order.is_valid()
        assert order.is_canonical()
        assert order.variables() == query.variables
        assert set(order.atoms()) == set(query.atoms)

    def test_non_hierarchical_query_rejected(self):
        with pytest.raises(NotHierarchicalError):
            build_canonical_variable_order(
                parse_query("Q(A, C) = R(A, B), S(B, C), T(C)")
            )

    def test_empty_schema_atom_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            build_canonical_variable_order(parse_query("Q(A) = R(A), S()"))

    def test_disconnected_query_yields_forest(self):
        order = build_canonical_variable_order(
            parse_query("Q(A, C) = R(A, B), S(C, D)")
        )
        assert len(order.roots) == 2

    def test_example18_structure(self):
        """Figure 9: root A; B below A with children C and D's atoms; E below A."""
        query = parse_query("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)")
        order = build_canonical_variable_order(query)
        root = order.roots[0]
        assert isinstance(root, VariableNode) and root.variable == "A"
        child_vars = {c.variable for c in root.variable_children()}
        assert child_vars == {"B", "E"}
        assert order.ancestors("B") == ("A",)
        assert set(order.subtree_variables("B")) == {"B", "C", "D"}
        assert {a.relation for a in order.subtree_atoms("B")} == {"R", "S"}

    def test_path_query_structure(self):
        """For Q(A,C) = R(A,B), S(B,C) the bound join variable B is the root."""
        order = build_canonical_variable_order(parse_query("Q(A, C) = R(A, B), S(B, C)"))
        root = order.roots[0]
        assert root.variable == "B"
        assert {c.variable for c in root.variable_children()} == {"A", "C"}

    def test_dep_equals_ancestors_on_canonical_orders(self):
        query = parse_query(
            "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)"
        )
        order = build_canonical_variable_order(query)
        for node in order.iter_variable_nodes():
            assert order.dep(node.variable) == frozenset(node.ancestors())

    def test_has_sibling(self):
        query = parse_query("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)")
        order = build_canonical_variable_order(query)
        assert order.has_sibling("B")
        assert order.has_sibling("E")
        assert not order.has_sibling("A")

    def test_pretty_output_contains_all_nodes(self):
        order = build_canonical_variable_order(parse_query("Q(A) = R(A, B), S(B)"))
        rendered = order.pretty()
        for token in ["A", "B", "R(A, B)", "S(B)"]:
            assert token in rendered


class TestFreeTopTransformation:
    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_free_top_order_is_valid_and_free_top(self, text):
        """Lemma 33: free-top(canonical ω) is a valid free-top variable order."""
        query = parse_query(text)
        canonical = build_canonical_variable_order(query)
        transformed = free_top_order(canonical, query)
        assert transformed.is_valid()
        assert transformed.is_free_top()
        assert transformed.variables() == query.variables
        assert set(transformed.atoms()) == set(query.atoms)

    def test_canonical_order_not_always_free_top(self):
        query = parse_query("Q(A, C) = R(A, B), S(B, C)")
        canonical = build_canonical_variable_order(query)
        assert not canonical.is_free_top()
        assert free_top_order(canonical, query).is_free_top()

    def test_q_hierarchical_canonical_is_already_free_top(self):
        query = parse_query("Q(A, B) = R(A, B), S(A)")
        canonical = build_canonical_variable_order(query)
        assert canonical.is_free_top()

    def test_highest_bound_over_free(self):
        query = parse_query("Q(A, C) = R(A, B), S(B, C)")
        canonical = build_canonical_variable_order(query)
        nodes = highest_bound_over_free(canonical, query.free_variables)
        assert [n.variable for n in nodes] == ["B"]

    def test_restrict_removes_variables_and_keeps_atoms(self):
        query = parse_query("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)")
        canonical = build_canonical_variable_order(query)
        root = canonical.roots[0]
        restricted_roots = restrict(root, frozenset({"A", "B"}))
        assert len(restricted_roots) == 1
        kept_vars = set()
        stack = list(restricted_roots)
        atoms = []
        while stack:
            node = stack.pop()
            if isinstance(node, AtomNode):
                atoms.append(node.atom)
            else:
                kept_vars.add(node.variable)
                stack.extend(node.children)
        assert kept_vars == {"A", "B"}
        assert len(atoms) == 3
