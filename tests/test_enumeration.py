"""Tests for the Union and Product algorithms and the result enumerator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, HierarchicalEngine
from repro.engine import evaluate_query_naive
from repro.enumeration.union import CallbackSource, UnionIterator
from repro.query import parse_query
from tests.conftest import random_database, schemas_for


class _ListSource:
    """A deterministic union source backed by a dict of key → multiplicity."""

    def __init__(self, contents):
        self.contents = dict(contents)
        self._iter = iter(list(self.contents.items()))
        self.next_calls = 0

    def next(self):
        self.next_calls += 1
        return next(self._iter, None)

    def lookup(self, key):
        return self.contents.get(key, 0)


class TestUnionIterator:
    def drain(self, union):
        out = []
        while True:
            item = union.next()
            if item is None:
                return out
            out.append(item)

    def test_disjoint_sources(self):
        union = UnionIterator([_ListSource({(1,): 1}), _ListSource({(2,): 3})])
        assert dict(self.drain(union)) == {(1,): 1, (2,): 3}

    def test_overlapping_sources_sum_multiplicities(self):
        union = UnionIterator(
            [_ListSource({(1,): 1, (2,): 2}), _ListSource({(2,): 5, (3,): 1})]
        )
        result = dict(self.drain(union))
        assert result == {(1,): 1, (2,): 7, (3,): 1}

    def test_distinctness_with_three_sources(self):
        sources = [
            _ListSource({(1,): 1, (2,): 1}),
            _ListSource({(2,): 1, (3,): 1}),
            _ListSource({(1,): 1, (3,): 1, (4,): 1}),
        ]
        produced = self.drain(UnionIterator(sources))
        keys = [key for key, _ in produced]
        assert len(keys) == len(set(keys))
        assert dict(produced) == {(1,): 2, (2,): 2, (3,): 2, (4,): 1}

    def test_single_source_passthrough(self):
        union = UnionIterator([_ListSource({(5,): 2})])
        assert self.drain(union) == [((5,), 2)]

    def test_subset_source(self):
        """Second source contained in the first still enumerates everything once."""
        union = UnionIterator(
            [_ListSource({(1,): 1, (2,): 1, (3,): 1}), _ListSource({(2,): 1})]
        )
        assert dict(self.drain(union)) == {(1,): 1, (2,): 2, (3,): 1}

    def test_empty_sources(self):
        union = UnionIterator([_ListSource({}), _ListSource({})])
        assert self.drain(union) == []

    def test_lookup_sums_all_sources(self):
        union = UnionIterator([_ListSource({(1,): 1}), _ListSource({(1,): 4})])
        assert union.lookup((1,)) == 5
        assert union.lookup((9,)) == 0

    def test_requires_at_least_one_source(self):
        with pytest.raises(ValueError):
            UnionIterator([])

    def test_callback_source_adapter(self):
        items = iter([((1,), 1)])
        source = CallbackSource(lambda: next(items, None), lambda key: 1 if key == (1,) else 0)
        union = UnionIterator([source])
        assert self.drain(union) == [((1,), 1)]

    @given(
        contents=st.lists(
            st.dictionaries(
                st.tuples(st.integers(0, 6)), st.integers(1, 3), max_size=8
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_union_property(self, contents):
        """Union enumerates each key exactly once with the summed multiplicity."""
        union = UnionIterator([_ListSource(c) for c in contents])
        produced = self.drain(union)
        keys = [key for key, _ in produced]
        assert len(keys) == len(set(keys))
        expected = {}
        for c in contents:
            for key, mult in c.items():
                expected[key] = expected.get(key, 0) + mult
        assert dict(produced) == expected


class TestResultEnumerator:
    def make_engine(self, text, seed=1, size=30, epsilon=0.5, mode="dynamic"):
        database = random_database(schemas_for(text), tuples_per_relation=size, seed=seed)
        engine = HierarchicalEngine(text, epsilon=epsilon, mode=mode)
        engine.load(database)
        return engine, database

    def test_tuples_are_distinct(self):
        engine, _ = self.make_engine("Q(A, C) = R(A, B), S(B, C)")
        tuples = [tup for tup, _ in engine.enumerate()]
        assert len(tuples) == len(set(tuples))

    def test_tuples_follow_head_order(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10)]), "S": (("B", "C"), [(10, 7)])}
        )
        engine = HierarchicalEngine("Q(C, A) = R(A, B), S(B, C)", epsilon=0.5)
        engine.load(database)
        assert engine.result() == {(7, 1): 1}

    def test_multiplicities_match_naive(self):
        text = "Q(A) = R(A, B), S(B)"
        engine, database = self.make_engine(text, size=40)
        naive = evaluate_query_naive(parse_query(text), database).as_dict()
        assert engine.result() == naive

    def test_empty_result(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10)]), "S": (("B", "C"), [(99, 7)])}
        )
        engine = HierarchicalEngine("Q(A, C) = R(A, B), S(B, C)").load(database)
        assert engine.result() == {}
        assert engine.count_distinct() == 0

    def test_boolean_query_yields_single_tuple_with_count(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10), (2, 10)]), "S": (("B",), [(10,)])}
        )
        engine = HierarchicalEngine("Q() = R(A, B), S(B)").load(database)
        assert engine.result() == {(): 2}

    def test_cartesian_product_components(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10), (2, 11)]), "S": (("C", "D"), [(7, 0)])}
        )
        engine = HierarchicalEngine("Q(A, C) = R(A, B), S(C, D)").load(database)
        assert engine.result() == {(1, 7): 1, (2, 7): 1}

    def test_recorded_delays_are_collected(self):
        engine, _ = self.make_engine("Q(A, C) = R(A, B), S(B, C)")
        enumerator = engine.enumerate()
        list(enumerator)
        assert len(enumerator.recorded_delays) >= 1

    def test_enumeration_is_repeatable(self):
        engine, _ = self.make_engine("Q(A, C) = R(A, B), S(B, C)")
        assert engine.result() == engine.result()

    @pytest.mark.parametrize("epsilon", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_epsilon_does_not_change_the_result(self, epsilon):
        text = "Q(A, C) = R(A, B), S(B, C)"
        database = random_database(schemas_for(text), tuples_per_relation=40, seed=2)
        naive = evaluate_query_naive(parse_query(text), database).as_dict()
        engine = HierarchicalEngine(text, epsilon=epsilon).load(database)
        assert engine.result() == naive

    def test_iterating_engine_directly(self):
        engine, _ = self.make_engine("Q(A) = R(A, B), S(B)")
        assert dict(iter(engine)) == engine.result()
