"""Kill-anywhere crash-recovery tests: exhaustive sweep, property, mutation.

Three layers of evidence that the durability subsystem actually works:

1. an **exhaustive sweep** over every instrumented crash point of a small
   seeded conformance case — the harness arms hit k for every k in
   ``1..count_crash_sites(case)`` and demands a byte-identical recovery;
2. a **Hypothesis property**: random (database, stream, ε, crash point)
   cases, single-engine and cold sharded recovery at 1/2/4 shards with
   forced rebalances, always matching a never-crashed twin in enumeration
   order and passing ``check_invariants``;
3. a **mutation catch**: a WAL-record-dropping bug injected into
   ``DurabilityManager._commit`` must be detected by the harness (as
   silent durable loss, which a naive kill-and-resume loop would mask)
   and shrunk to a ≤5-update repro.
"""

from unittest import mock

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance import (
    ConformanceCase,
    count_crash_sites,
    crash_recovery_failure,
    run_crash_recovery_case,
)
from repro.conformance.shrink import shrink_case
from repro.data.update import Update
from repro.durability.manager import DurabilityManager
from repro.sharding import ShardedEngine

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def make_case(r_rows, s_rows, updates, epsilons=(0.0, 0.5, 1.0), checkpoints=3):
    """A ConformanceCase over the two-atom path query from raw rows."""
    return ConformanceCase(
        query=PATH_QUERY,
        relations={
            "R": (("A", "B"), [(tuple(row), 1) for row in r_rows]),
            "S": (("B", "C"), [(tuple(row), 1) for row in s_rows]),
        },
        updates=[(rel, tuple(tup), mult) for rel, tup, mult in updates],
        epsilons=tuple(epsilons),
        checkpoints=checkpoints,
    )


SEEDED_CASE = make_case(
    r_rows=[(1, 1), (1, 2), (2, 3), (3, 1)],
    s_rows=[(1, 5), (2, 5), (3, 6)],
    updates=[
        ("R", (4, 1), 1),
        ("S", (1, 7), 1),
        ("R", (1, 2), 1),
        ("S", (2, 8), 1),
        ("R", (4, 1), -1),
        ("S", (5, 5), 1),
        ("R", (2, 3), -1),
        ("S", (6, 9), 1),
    ],
)


class TestExhaustiveSweep:
    def test_every_crash_point_recovers(self):
        """Arm every hit 1..N of the seeded case; each must round-trip."""
        total = count_crash_sites(SEEDED_CASE)
        # the workload must be big enough to reach WAL appends, fsyncs,
        # and at least one full checkpoint cycle
        assert total >= 10
        failures = []
        for hit in range(1, total + 1):
            report = run_crash_recovery_case(SEEDED_CASE, crash_hit=hit)
            assert report.supported
            if report.mismatches:
                failures.append((hit, report.mismatches[0]))
        assert failures == []

    def test_site_coverage_of_the_sweep(self, tmp_path):
        """The seeded workload exercises both WAL sites and checkpoint sites."""
        from repro.core.api import HierarchicalEngine
        from repro.durability import CrashPointInjector, DurabilityConfig, injected

        config = DurabilityConfig(str(tmp_path / "wal"), checkpoint_interval=2)
        recorder = CrashPointInjector(None)
        with injected(recorder):
            engine = HierarchicalEngine(
                PATH_QUERY, epsilon=0.5, durability=config
            )
            engine.load(SEEDED_CASE.database())
            for update in SEEDED_CASE.update_objects():
                engine.apply(update)
            engine.close()
        hit_sites = {site for site, count in recorder.counts.items() if count}
        assert {
            "wal-append",
            "wal-torn",
            "wal-fsync",
            "checkpoint-write",
            "checkpoint-fsync",
            "checkpoint-rename",
            "checkpoint-cleanup",
        } <= hit_sites

    def test_case_deterministic_default_hit(self):
        report = run_crash_recovery_case(SEEDED_CASE)
        assert report.supported
        assert report.mismatches == []

    def test_non_hierarchical_case_is_skipped(self):
        case = ConformanceCase(
            query="Q(A, B, C) = R(A, B), S(B, C), T(C, A)",
            relations={
                "R": (("A", "B"), []),
                "S": (("B", "C"), []),
                "T": (("C", "A"), []),
            },
            updates=[],
        )
        report = run_crash_recovery_case(case)
        assert not report.supported
        assert report.mismatches == []


value = st.integers(min_value=0, max_value=5)
pair = st.tuples(value, value)
update_entry = st.tuples(
    st.sampled_from(("R", "S")), pair, st.sampled_from((1, -1))
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    r_rows=st.lists(pair, min_size=0, max_size=5),
    s_rows=st.lists(pair, min_size=0, max_size=5),
    updates=st.lists(update_entry, min_size=1, max_size=10),
    epsilons=st.sampled_from(
        ((0.0, 0.5, 1.0), (0.25, 0.75), (0.0, 1.0), (0.5,))
    ),
    checkpoints=st.integers(min_value=1, max_value=4),
    crash_seed=st.integers(min_value=0, max_value=1 << 20),
)
def test_crash_anywhere_property(
    r_rows, s_rows, updates, epsilons, checkpoints, crash_seed
):
    """Random case, random crash point: recovery always matches the twin.

    The harness itself asserts the full contract — recovered version,
    result, enumeration order vs a never-crashed durable twin (which
    re-hits the same index-normalization barriers), invariants, and
    durable-acknowledgement on a clean close; crashes between WAL append
    and fsync, mid-checkpoint, and mid-rename are all reachable because
    the crash hit ranges over every instrumented site the workload hits.
    """
    case = make_case(r_rows, s_rows, updates, epsilons, checkpoints)
    total = count_crash_sites(case)
    hit = 1 + crash_seed % max(1, total)
    mismatch = crash_recovery_failure(case, crash_hit=hit)
    assert mismatch is None, str(mismatch)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    updates=st.lists(update_entry, min_size=1, max_size=12),
    shards=st.sampled_from((1, 2, 4)),
    retune_at=st.integers(min_value=0, max_value=11),
    target=st.sampled_from((0.0, 0.25, 0.75, 1.0)),
)
def test_sharded_cold_recovery_property(tmp_path_factory, updates, shards, retune_at, target):
    """Cold ShardedEngine.recover() matches a never-crashed sharded twin.

    A mid-stream retune forces minor/major rebalances on every shard (the
    threshold moves, so views migrate between heavy and light layouts);
    the recovered deployment must still agree tuple-for-tuple, in merge
    order, at the same version.
    """
    from repro.exceptions import RejectedUpdateError

    tmp_path = tmp_path_factory.mktemp("sharded-recovery")
    case = make_case([(1, 1), (2, 2)], [(1, 3), (2, 4)], updates)

    def run(engine):
        engine.load(case.database())
        for index, update in enumerate(case.update_objects()):
            if index == retune_at:
                engine.retune(target)
            try:
                engine.apply(update)
            except RejectedUpdateError:
                pass
        return (
            engine.shard_versions(),
            dict(engine.result()),
            list(engine.enumerate()),
        )

    durable = ShardedEngine(
        PATH_QUERY,
        shards=shards,
        epsilon=0.5,
        executor="serial",
        durability=str(tmp_path / "wal"),
    )
    expected = run(durable)
    durable.close()

    twin = ShardedEngine(PATH_QUERY, shards=shards, epsilon=0.5, executor="serial")
    assert run(twin) == expected
    twin.close()

    recovered = ShardedEngine(
        PATH_QUERY,
        shards=shards,
        epsilon=0.5,
        executor="serial",
        durability=str(tmp_path / "wal"),
    )
    recovered.recover()
    # per-shard versions are the durable truth; the facade ingestion
    # counter resumes at their maximum (see ShardedEngine.recover)
    assert recovered.shard_versions() == expected[0]
    assert recovered.version == max(expected[0])
    assert dict(recovered.result()) == expected[1]
    assert list(recovered.enumerate()) == expected[2]
    recovered.check_invariants()
    recovered.close()


class TestMutationCatch:
    """The injected WAL-record-dropping bug is caught and shrunk small."""

    @staticmethod
    def _dropping_commit():
        real_commit = DurabilityManager._commit

        def dropping(self, payload, version):
            if version % 3 == 0:
                return  # the bug: silently drop every third commit
            real_commit(self, payload, version)

        return mock.patch.object(DurabilityManager, "_commit", dropping)

    def test_unmutated_case_is_clean(self):
        assert crash_recovery_failure(SEEDED_CASE) is None

    def test_dropping_wal_records_is_detected(self):
        with self._dropping_commit():
            mismatch = crash_recovery_failure(SEEDED_CASE)
        assert mismatch is not None
        assert mismatch.kind == "recovery-durable-loss"
        assert "durable" in mismatch.detail

    def test_mutation_shrinks_to_tiny_repro(self):
        def predicate(case):
            found = crash_recovery_failure(case)
            if found is not None and found.kind == "recovery-durable-loss":
                return found
            return None

        with self._dropping_commit():
            shrunk = shrink_case(SEEDED_CASE, predicate, max_evaluations=150)
            assert predicate(shrunk) is not None
        assert len(shrunk.updates) <= 5
        # sanity: the shrunk case is clean once the bug is removed
        assert crash_recovery_failure(shrunk) is None
