"""Adaptive ε retuning: telemetry, controller policy, retune equivalence."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdaptiveController,
    Database,
    HierarchicalEngine,
    StaticEngine,
    Update,
    WorkloadTelemetry,
)
from repro.adaptive import CostModel
from repro.baselines import NaiveRecomputeEngine
from repro.conformance import check_retune_equivalence
from repro.core.serving import EngineServer
from repro.exceptions import UnsupportedQueryError
from repro.sharding import ShardedEngine
from repro.workloads import (
    PHASE_SHIFT_QUERY,
    heavy_flipflop_stream,
    phase_shift_database,
    phase_shift_ops,
    phase_shift_write_stream,
    read_burst_ops,
)

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
STAR2_QUERY = "Q(A, C, D) = R(A, B), S(B, C), T(B, D)"


def path_db(seed: int = 5, size: int = 60, domain: int = 12) -> Database:
    rng = random.Random(seed)
    return Database.from_dict(
        {
            "R": (
                ("A", "B"),
                [(rng.randrange(domain * 3), rng.randrange(domain)) for _ in range(size)],
            ),
            "S": (
                ("B", "C"),
                [(rng.randrange(domain), rng.randrange(domain * 3)) for _ in range(size)],
            ),
        }
    )


def churn_updates(seed: int, count: int, domain: int = 12):
    rng = random.Random(seed)
    updates, inserted = [], []
    for index in range(count):
        if inserted and index % 3 == 2:
            relation, tup = inserted.pop(rng.randrange(len(inserted)))
            updates.append(Update(relation, tup, -1))
        elif index % 2 == 0:
            tup = (rng.randrange(domain * 3), rng.randrange(domain))
            inserted.append(("R", tup))
            updates.append(Update("R", tup, 1))
        else:
            tup = (rng.randrange(domain), rng.randrange(domain * 3))
            inserted.append(("S", tup))
            updates.append(Update("S", tup, 1))
    return updates


class TestWorkloadTelemetry:
    def test_counts_and_totals(self):
        telemetry = WorkloadTelemetry(alpha=0.5)
        telemetry.record_update(3, 0.25)
        telemetry.record_update(1, 0.75)
        telemetry.record_read(10, 0.5)
        assert telemetry.update_events == 2
        assert telemetry.update_tuples == 4
        assert telemetry.update_seconds == pytest.approx(1.0)
        assert telemetry.read_events == 1
        assert telemetry.read_tuples == 10
        assert telemetry.events == 3

    def test_read_fraction_tracks_the_mix(self):
        telemetry = WorkloadTelemetry(alpha=0.5)
        assert telemetry.read_fraction() == 0.5  # neutral prior
        telemetry.record_update(1, 0.001)
        assert telemetry.read_fraction() == 0.0  # first event seeds the EWMA
        telemetry.record_read(1, 0.001)
        assert telemetry.read_fraction() == pytest.approx(0.5)
        for _ in range(10):
            telemetry.record_read(1, 0.001)
        assert telemetry.read_fraction() > 0.95
        for _ in range(10):
            telemetry.record_update(1, 0.001)
        assert telemetry.read_fraction() < 0.05

    def test_ewma_smoothing_and_reset(self):
        telemetry = WorkloadTelemetry(alpha=0.5)
        telemetry.record_update(1, 1.0)
        telemetry.record_update(1, 0.0)
        assert telemetry.ewma_update_seconds == pytest.approx(0.5)
        telemetry.reset()
        assert telemetry.events == 0
        assert telemetry.ewma_update_seconds is None
        assert telemetry.read_fraction() == 0.5

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            WorkloadTelemetry(alpha=0.0)
        with pytest.raises(ValueError):
            WorkloadTelemetry(alpha=1.5)

    def test_engine_records_updates_and_reads(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        engine.update("R", (1, 2), 1)
        engine.apply_batch(churn_updates(1, 6))
        list(engine.enumerate())
        assert engine.telemetry.update_events == 2
        assert engine.telemetry.update_tuples == 7
        assert engine.telemetry.read_events == 1
        assert engine.telemetry.read_tuples == engine.count_distinct()
        assert engine.telemetry.update_seconds > 0.0
        assert engine.telemetry.read_seconds > 0.0

    def test_partial_reads_are_recorded(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        produced = 0
        for _pair in engine.enumerate():
            produced += 1
            if produced >= 3:
                break
        assert engine.telemetry.read_events == 1
        assert engine.telemetry.read_tuples == 3

    def test_sharded_facade_records_both_kinds(self):
        engine = ShardedEngine(PATH_QUERY, shards=2, executor="serial")
        engine.load(path_db())
        engine.update("R", (1, 2), 1)
        engine.apply_batch(churn_updates(2, 5))
        list(engine.enumerate())
        assert engine.telemetry.update_events == 2
        assert engine.telemetry.read_events == 1
        engine.close()

    def test_telemetry_false_opts_out(self):
        engine = HierarchicalEngine(PATH_QUERY, telemetry=False).load(path_db())
        engine.update("R", (1, 2), 1)
        list(engine.enumerate())
        assert engine.telemetry is None
        with pytest.raises(ValueError):
            AdaptiveController(engine)
        sharded = ShardedEngine(
            PATH_QUERY, shards=2, executor="serial", telemetry=False
        )
        sharded.load(path_db())
        sharded.update("R", (1, 2), 1)
        list(sharded.enumerate())
        assert sharded.telemetry is None
        sharded.close()

    def test_concurrent_reader_recording_loses_no_events(self):
        import threading

        telemetry = WorkloadTelemetry()
        per_thread = 500

        def feed_reads():
            for _ in range(per_thread):
                telemetry.record_read(1, 0.0)

        def feed_writes():
            for _ in range(per_thread):
                telemetry.record_update(1, 0.0)

        threads = [threading.Thread(target=feed_reads) for _ in range(3)]
        threads.append(threading.Thread(target=feed_writes))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.read_events == 3 * per_thread
        assert telemetry.update_events == per_thread


class TestRetune:
    def test_retune_rebases_threshold_and_counts(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.25).load(path_db())
        for update in churn_updates(3, 30):
            engine.apply(update)
        version_before = engine.version
        engine.retune(0.75)
        assert engine.epsilon == 0.75
        assert engine._driver.epsilon == 0.75
        assert engine.threshold_base == 2 * engine.database.size + 1
        assert engine.threshold == engine.threshold_base**0.75
        assert engine.version == version_before + 1
        assert engine.rebalance_stats.retunes == 1
        engine.check_invariants()

    def test_retune_preserves_the_result(self):
        database = path_db(seed=9)
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.0).load(database)
        oracle = NaiveRecomputeEngine(PATH_QUERY).load(database)
        updates = churn_updates(4, 40)
        for update in updates[:20]:
            engine.apply(update)
            oracle.apply(update)
        engine.retune(1.0)
        assert dict(engine.result()) == dict(oracle.result())
        for update in updates[20:]:
            engine.apply(update)
            oracle.apply(update)
        assert dict(engine.result()) == dict(oracle.result())

    def test_retune_equals_rebuild_order_included(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db(seed=11))
        for update in churn_updates(5, 50):
            engine.apply(update)
        engine.retune(0.0)
        rebuilt = HierarchicalEngine(PATH_QUERY, epsilon=0.0).load(engine.database)
        assert list(engine.enumerate()) == list(rebuilt.enumerate())

    def test_snapshot_survives_retune(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db(seed=7))
        before = dict(engine.result())
        snapshot = engine.snapshot()
        engine.retune(0.0)
        for update in churn_updates(6, 25):
            engine.apply(update)
        assert dict(snapshot.result()) == before
        snapshot.close()

    def test_retune_validation_and_static_rejection(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db())
        with pytest.raises(ValueError):
            engine.retune(1.5)
        static = StaticEngine(PATH_QUERY).load(path_db())
        with pytest.raises(UnsupportedQueryError):
            static.retune(0.5)

    def test_retune_same_epsilon_is_a_full_rebase(self):
        """retune(current ε) still re-anchors M — uniform semantics."""
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        for update in churn_updates(8, 60):
            engine.apply(update)
        engine.retune(0.5)
        assert engine.threshold_base == 2 * engine.database.size + 1
        assert engine.rebalance_stats.retunes == 1

    def test_sharded_retune_matches_fresh_deployment(self):
        database = path_db(seed=13)
        updates = churn_updates(7, 40)
        sharded = ShardedEngine(PATH_QUERY, shards=4, epsilon=0.0, executor="serial")
        sharded.load(database)
        for update in updates[:20]:
            sharded.apply(update)
        version_before = sharded.version
        sharded.retune(1.0)
        assert sharded.epsilon == 1.0
        assert sharded.version == version_before + 1
        fresh = ShardedEngine(PATH_QUERY, shards=4, epsilon=1.0, executor="serial")
        fresh.load(database)
        for update in updates[:20]:
            fresh.apply(update)
        for update in updates[20:]:
            sharded.apply(update)
            fresh.apply(update)
        assert list(sharded.enumerate()) == list(fresh.enumerate())
        sharded.check_invariants()
        # per-shard retune counters fold up through the facade
        stats = sharded.rebalance_stats
        assert stats.retunes == 4
        per_shard = sharded.rebalance_stats_per_shard()
        assert all(entry.retunes == 1 for entry in per_shard)
        sharded.close()
        fresh.close()

    def test_sharded_retune_works_across_process_pipes(self):
        sharded = ShardedEngine(PATH_QUERY, shards=2, epsilon=0.5, executor="process")
        sharded.load(path_db(seed=17))
        expected = dict(sharded.result())
        sharded.retune(0.0)
        assert dict(sharded.result()) == expected
        assert sharded.rebalance_stats.retunes == 2
        sharded.close()


class TestRetuneEquivalenceProperty:
    """Satellite: Hypothesis property — retune(ε₂) ≡ fresh engine at ε₂."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        eps_before=st.sampled_from((0.0, 0.25, 0.5, 1.0)),
        eps_after=st.sampled_from((0.0, 0.5, 0.75, 1.0)),
    )
    def test_retune_equivalence_random_churn(self, seed, eps_before, eps_after):
        database = path_db(seed=seed, size=40)
        updates = churn_updates(seed + 1, 36)
        check_retune_equivalence(
            PATH_QUERY,
            eps_before,
            eps_after,
            database,
            updates,
            shard_counts=(1, 2, 4),
        )

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_retune_equivalence_under_forced_major_rebalances(self, seed):
        """The growth stream doubles the database: majors fire on both sides."""
        database = path_db(seed=seed, size=15, domain=6)
        rng = random.Random(seed)
        updates = [
            Update("R", (rng.randrange(50), rng.randrange(6)), 1)
            for _ in range(3 * database.size)
        ]
        check_retune_equivalence(
            PATH_QUERY, 0.5, 1.0, database, updates, shard_counts=(1, 2)
        )

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_retune_equivalence_under_forced_minor_rebalances(self, seed):
        """The flip-flop stream drags one key across the threshold repeatedly."""
        database = path_db(seed=seed, size=50, domain=10)
        updates = list(heavy_flipflop_stream(cycles=2, burst=20, hot_key=3, seed=seed))
        check_retune_equivalence(
            PATH_QUERY, 0.5, 0.25, database, updates, shard_counts=(1, 2)
        )

    def test_star_query_retune_equivalence(self):
        rng = random.Random(0)
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(rng.randrange(20), rng.randrange(6)) for _ in range(30)]),
                "S": (("B", "C"), [(rng.randrange(6), rng.randrange(20)) for _ in range(30)]),
                "T": (("B", "D"), [(rng.randrange(6), rng.randrange(20)) for _ in range(30)]),
            }
        )
        updates = [
            Update("T", (rng.randrange(6), rng.randrange(20)), 1) for _ in range(24)
        ]
        check_retune_equivalence(
            STAR2_QUERY, 0.0, 1.0, database, updates, shard_counts=(1, 2)
        )


class TestCostModel:
    def test_write_heavy_mix_prefers_small_epsilon(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        telemetry = WorkloadTelemetry(alpha=0.5)
        for _ in range(20):
            telemetry.record_update(1, 0.001)
        model = CostModel(engine.plan)
        size = engine.database.size
        costs = {
            eps: model.predict(eps, 0.5, size, telemetry) for eps in (0.0, 0.5, 1.0)
        }
        assert costs[0.0] < costs[0.5] < costs[1.0]

    def test_read_heavy_mix_prefers_large_epsilon(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        telemetry = WorkloadTelemetry(alpha=0.5)
        for _ in range(20):
            telemetry.record_read(10, 0.001)
        model = CostModel(engine.plan)
        size = engine.database.size
        costs = {
            eps: model.predict(eps, 0.5, size, telemetry) for eps in (0.0, 0.5, 1.0)
        }
        assert costs[1.0] < costs[0.5] < costs[0.0]


class TestAdaptiveController:
    def _controller(self, **kwargs):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        kwargs.setdefault("epsilons", (0.0, 0.5, 1.0))
        kwargs.setdefault("hysteresis", 1.1)
        kwargs.setdefault("cooldown", 4)
        return engine, AdaptiveController(engine, **kwargs)

    def test_cooldown_blocks_early_proposals(self):
        engine, controller = self._controller(cooldown=8)
        for _ in range(7):
            engine.telemetry.record_update(1, 0.001)
        assert controller.propose() is None

    def test_write_burst_drives_epsilon_down(self):
        engine, controller = self._controller()
        for _ in range(10):
            engine.telemetry.record_update(1, 0.001)
        assert controller.propose() == 0.0
        assert controller.maybe_retune() == 0.0
        assert engine.epsilon == 0.0
        assert controller.retunes_applied == 1

    def test_read_burst_drives_epsilon_up(self):
        engine, controller = self._controller()
        for _ in range(10):
            engine.telemetry.record_read(5, 0.001)
        proposal = controller.propose()
        assert proposal is not None and proposal > 0.5

    def test_hysteresis_blocks_marginal_wins(self):
        engine, controller = self._controller(hysteresis=1e9)
        for _ in range(10):
            engine.telemetry.record_update(1, 0.001)
        assert controller.propose() is None

    def test_cooldown_applies_between_retunes(self):
        engine, controller = self._controller(cooldown=4)
        for _ in range(6):
            engine.telemetry.record_update(1, 0.001)
        assert controller.maybe_retune() == 0.0
        engine.telemetry.record_update(1, 0.001)
        assert controller.maybe_retune() is None  # within cooldown again

    def test_validation(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        with pytest.raises(ValueError):
            AdaptiveController(engine, epsilons=())
        with pytest.raises(ValueError):
            AdaptiveController(engine, epsilons=(0.5, 1.2))
        with pytest.raises(ValueError):
            AdaptiveController(engine, hysteresis=0.5)
        with pytest.raises(ValueError):
            AdaptiveController(engine, cooldown=0)

    def test_controller_drives_sharded_engine(self):
        engine = ShardedEngine(PATH_QUERY, shards=2, epsilon=0.5, executor="serial")
        engine.load(path_db())
        controller = AdaptiveController(
            engine, epsilons=(0.0, 0.5, 1.0), hysteresis=1.1, cooldown=4
        )
        for _ in range(10):
            engine.telemetry.record_update(1, 0.001)
        assert controller.maybe_retune() == 0.0
        assert engine.epsilon == 0.0
        assert engine.rebalance_stats.retunes == 2
        engine.close()


class TestAdaptiveWorkloads:
    def test_phase_shift_ops_shape(self):
        database = phase_shift_database(size=120, seed=1)
        ops = phase_shift_ops(
            database, phases=4, writes_per_phase=50, reads_per_phase=10, seed=2
        )
        kinds = [kind for kind, _payload in ops]
        assert kinds.count("read") == 20  # two read phases
        assert kinds[:50] == ["write"] * 50  # phase 0 is a pure write burst

    def test_phase_shift_ops_replay_cleanly(self):
        """Interleaving must never reorder a delete before its insert."""
        database = phase_shift_database(size=120, seed=3)
        engine = HierarchicalEngine(PHASE_SHIFT_QUERY, epsilon=0.5).load(database)
        ops = phase_shift_ops(
            database, phases=4, writes_per_phase=60, reads_per_phase=8, seed=4
        )
        for kind, payload in ops:
            if kind == "write":
                engine.apply(payload)
        engine.check_invariants()

    def test_read_burst_ops_shape(self):
        database = phase_shift_database(size=120, seed=5)
        ops = read_burst_ops(database, writes=40, reads=15, seed=6)
        assert [kind for kind, _payload in ops] == ["write"] * 40 + ["read"] * 15

    def test_write_stream_is_valid_against_database(self):
        database = phase_shift_database(size=150, seed=7)
        engine = HierarchicalEngine(PHASE_SHIFT_QUERY, epsilon=0.5).load(database)
        engine.apply_batch(list(phase_shift_write_stream(80, seed=8)))
        engine.check_invariants()

    def test_adaptive_loop_converges_per_phase(self):
        """On a miniature phase shift the controller lands on sane endpoints."""
        database = phase_shift_database(size=200, seed=9)
        engine = HierarchicalEngine(PHASE_SHIFT_QUERY, epsilon=0.5).load(database)
        controller = AdaptiveController(
            engine, epsilons=(0.0, 0.5, 1.0), hysteresis=1.5, cooldown=8
        )
        oracle = NaiveRecomputeEngine(PHASE_SHIFT_QUERY).load(database)
        ops = phase_shift_ops(
            database, phases=2, writes_per_phase=120, reads_per_phase=20, seed=10
        )
        epsilon_after_writes = None
        for index, (kind, payload) in enumerate(ops):
            if kind == "write":
                engine.apply(payload)
                oracle.apply(payload)
            else:
                for _pair in engine.enumerate():
                    pass
            controller.maybe_retune()
            if index == 119:
                epsilon_after_writes = engine.epsilon
        assert epsilon_after_writes == 0.0  # the write burst pulled ε down
        assert engine.epsilon >= 0.5  # the read phase pushed it back up
        assert controller.retunes_applied >= 2
        assert dict(engine.result()) == dict(oracle.result())


class TestServerAutoRetune:
    def test_server_retunes_between_commits(self):
        database = phase_shift_database(size=200, seed=21)
        engine = HierarchicalEngine(PHASE_SHIFT_QUERY, epsilon=1.0).load(database)
        controller = AdaptiveController(
            engine, epsilons=(0.0, 1.0), hysteresis=1.1, cooldown=2
        )
        server = EngineServer(engine, controller=controller)
        oracle = NaiveRecomputeEngine(PHASE_SHIFT_QUERY).load(database)
        stream = list(phase_shift_write_stream(60, seed=22))
        for start in range(0, len(stream), 10):
            chunk = stream[start : start + 10]
            server.apply_batch(chunk)
            oracle.apply_batch(chunk)
        assert server.stats.retunes_applied >= 1
        assert engine.epsilon == 0.0  # pure write traffic
        ticket = server.read()
        assert ticket.result() == dict(oracle.result())

    def test_server_reads_feed_telemetry(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        server = EngineServer(engine)
        server.apply_batch(churn_updates(23, 10))
        server.read()
        server.read(limit=2)
        assert engine.telemetry.read_events == 2

    def test_server_without_controller_never_retunes(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db())
        server = EngineServer(engine)
        server.apply_batch(churn_updates(24, 10))
        assert server.stats.retunes_applied == 0
        assert engine.rebalance_stats.retunes == 0
