"""Tests for the textual query syntax."""

import pytest

from repro.exceptions import UnsupportedQueryError
from repro.query.atom import atom
from repro.query.parser import format_query, parse_query


class TestParser:
    def test_basic_query(self):
        q = parse_query("Q(A, C) = R(A, B), S(B, C)")
        assert q.name == "Q"
        assert q.head == ("A", "C")
        assert q.atoms == (atom("R", "A", "B"), atom("S", "B", "C"))

    def test_boolean_query(self):
        q = parse_query("Q() = R(A, B)")
        assert q.head == ()
        assert q.is_boolean

    def test_whitespace_insensitive(self):
        q = parse_query("  Q( A ,C )=R( A, B ) ,  S(B,C)  ")
        assert q.head == ("A", "C")
        assert len(q.atoms) == 2

    def test_multiline_body(self):
        q = parse_query("Q(A) = R(A, B),\n      S(B)")
        assert len(q.atoms) == 2

    def test_digits_and_underscores_in_names(self):
        q = parse_query("Feed_1(Y0) = R0(X, Y0), R_aux(X)")
        assert q.name == "Feed_1"
        assert q.relation_names == ("R0", "R_aux")

    def test_unary_atoms(self):
        q = parse_query("Q(A) = R(A, B), S(B)")
        assert q.atoms[1].arity == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "not a query",
            "Q(A) <- R(A)",
            "Q(A) = ",
            "Q(A) = R(A,",
            "= R(A)",
        ],
    )
    def test_malformed_queries_rejected(self, bad):
        with pytest.raises(UnsupportedQueryError):
            parse_query(bad)

    def test_format_roundtrip(self):
        text = "Q(A, C) = R(A, B), S(B, C)"
        assert parse_query(format_query(parse_query(text))) == parse_query(text)

    def test_paper_example_19(self):
        q = parse_query(
            "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)"
        )
        assert len(q.atoms) == 4
        assert q.variables == {"A", "B", "C", "D", "E", "F", "G"}
