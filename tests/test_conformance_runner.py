"""The differential runner: clean engines agree, injected bugs are caught."""

from __future__ import annotations

import random

import pytest

from repro.conformance import (
    ConformanceCase,
    DataProfile,
    case_failure,
    load_case,
    random_database,
    random_labeled_query,
    random_nonhierarchical_query,
    random_update_stream,
    run_case,
    shrink_case,
    write_repro,
)
from repro.exceptions import InvariantViolationError
from repro.core.api import HierarchicalEngine
from repro.query.parser import parse_query
from repro.workloads import get_scenario, scenario_names

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def _random_case(seed: int, hierarchical: bool = True) -> ConformanceCase:
    rng = random.Random(seed)
    labeled = (
        random_labeled_query(rng) if hierarchical else random_nonhierarchical_query(rng)
    )
    profile = DataProfile(
        tuples_per_relation=rng.randint(5, 18),
        domain=rng.randint(3, 7),
        skew=rng.choice((0.0, 1.5)),
        heavy_fraction=rng.choice((0.0, 0.3)),
    )
    database = random_database(labeled.query, profile, seed=seed)
    stream = random_update_stream(
        database, rng.randint(10, 30), profile, delete_fraction=0.4, seed=seed + 1
    )
    return ConformanceCase.build(str(labeled.query), database, stream, checkpoints=3)


@pytest.mark.parametrize("seed", range(6))
def test_differential_runs_clean_on_hierarchical_queries(seed):
    report = run_case(_random_case(seed, hierarchical=True))
    assert report.supported
    assert any(name.startswith("ivm(") for name in report.engines)
    assert report.ok, [str(m) for m in report.mismatches]


@pytest.mark.parametrize("seed", range(3))
def test_differential_runs_clean_on_nonhierarchical_queries(seed):
    report = run_case(_random_case(seed, hierarchical=False))
    assert not report.supported
    # the planner gate held and the baselines were still diffed among themselves
    assert all(not name.startswith("ivm(") for name in report.engines)
    assert "first-order" in report.engines
    assert report.ok, [str(m) for m in report.mismatches]


@pytest.mark.parametrize("name", scenario_names())
def test_differential_runs_clean_on_every_scenario(name):
    scenario = get_scenario(name)
    database = scenario.make_database(3, 0.05)
    stream = scenario.make_stream(database, 30, 4)
    case = ConformanceCase.build(
        scenario.query, database, stream, epsilons=(0.5,), checkpoints=2
    )
    report = run_case(case)
    assert report.ok, [str(m) for m in report.mismatches]


def test_case_json_round_trip():
    case = _random_case(11)
    clone = ConformanceCase.from_json(case.to_json())
    assert clone == case


def test_check_invariants_detects_corrupted_light_part():
    profile = DataProfile(tuples_per_relation=25, domain=6, skew=1.0)
    database = random_database(parse_query(PATH_QUERY), profile, seed=5)
    engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5)
    engine.load(database)
    engine.check_invariants()
    partitions = engine._skew_plan.partitions.partitions()
    assert partitions
    # corrupt one light part behind the engine's back
    target = None
    for partition in partitions:
        if len(partition.light) > 0:
            target = partition
            break
    assert target is not None
    tup = next(iter(target.light.tuples()))
    light = target.light
    if hasattr(light, "_rids"):  # columnar backend: bump the multiplicity row
        light._mults[light._rids[tup]] += 7
    else:
        light._data[tup] += 7
    with pytest.raises(InvariantViolationError):
        engine.check_invariants()


def _delete_dropping_propagation(monkeypatch):
    """Inject the classic IVM bug: deletes silently dropped in propagation."""
    import repro.ivm.maintenance as maintenance
    from repro.ivm.delta import propagate_delta as real_propagate

    def buggy(tree, source_name, schema, delta):
        positive = {tup: mult for tup, mult in delta.items() if mult > 0}
        return real_propagate(tree, source_name, schema, positive)

    monkeypatch.setattr(maintenance, "propagate_delta", buggy)


def test_injected_delta_bug_is_caught_shrunk_and_reproducible(monkeypatch, tmp_path):
    """The acceptance-criteria mutation check, kept as a permanent test."""
    _delete_dropping_propagation(monkeypatch)

    query = parse_query(PATH_QUERY)
    profile = DataProfile(tuples_per_relation=15, domain=5)
    database = random_database(query, profile, seed=1)
    stream = random_update_stream(database, 25, profile, delete_fraction=0.5, seed=2)
    case = ConformanceCase.build(
        PATH_QUERY, database, stream, epsilons=(0.5,), checkpoints=2
    )

    mismatch = case_failure(case)
    assert mismatch is not None, "the differential runner missed an injected bug"
    assert mismatch.kind in ("result", "delta")

    def fails(candidate):
        found = case_failure(candidate)
        return found if found is not None and found.kind == mismatch.kind else None

    shrunk = shrink_case(case, fails, max_evaluations=150)
    assert len(shrunk.updates) <= 5
    total_rows = sum(len(rows) for _schema, rows in shrunk.relations.values())
    assert total_rows <= 8

    path = write_repro(shrunk, fails(shrunk), tmp_path / "repro.json")
    assert path.exists()
    replayed = load_case(path)
    assert case_failure(replayed) is not None, "the shrunk repro no longer fails"


def test_injected_bug_repro_is_clean_without_the_bug(tmp_path):
    """A repro shrunk under a bug must pass once the bug is gone."""
    query = parse_query(PATH_QUERY)
    profile = DataProfile(tuples_per_relation=10, domain=4)
    database = random_database(query, profile, seed=3)
    stream = random_update_stream(database, 12, profile, delete_fraction=0.5, seed=4)
    case = ConformanceCase.build(PATH_QUERY, database, stream)
    assert case_failure(case) is None
