"""Tests for heavy/light partitions (Definition 11)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import Partition, PartitionRegistry, light_part_name
from repro.data.relation import Relation
from repro.exceptions import InvariantViolationError


def make_relation(rows):
    relation = Relation("R", ("A", "B"))
    for row in rows:
        relation.insert(row)
    return relation


class TestStrictPartition:
    def test_light_part_holds_low_degree_keys(self):
        relation = make_relation([(1, 0), (2, 0), (3, 0), (4, 1)])
        partition = Partition(relation, ("B",))
        partition.strict_repartition(threshold=2)
        # key 0 has degree 3 >= 2 -> heavy; key 1 has degree 1 < 2 -> light
        assert partition.is_heavy_key((0,))
        assert partition.is_light_key((1,))
        assert partition.light.as_dict() == {(4, 1): 1}

    def test_degree_counts(self):
        relation = make_relation([(1, 0), (2, 0), (3, 1)])
        partition = Partition(relation, ("B",))
        partition.strict_repartition(threshold=10)
        assert partition.base_degree((0,)) == 2
        assert partition.light_degree((0,)) == 2
        assert partition.base_degree((9,)) == 0

    def test_heavy_key_bound(self):
        """|π_S H| ≤ N / θ: with threshold N^ε at most N^{1−ε} heavy keys."""
        rows = [(i, i % 5) for i in range(50)]
        relation = make_relation(rows)
        partition = Partition(relation, ("B",))
        threshold = len(relation) ** 0.5
        partition.strict_repartition(threshold)
        heavy = list(partition.heavy_keys())
        assert len(heavy) <= len(relation) / threshold

    def test_check_strict_passes_after_repartition(self):
        relation = make_relation([(i, i % 3) for i in range(30)])
        partition = Partition(relation, ("B",))
        partition.strict_repartition(threshold=4)
        partition.check_strict(threshold=4)

    def test_check_strict_detects_violation(self):
        relation = make_relation([(i, 0) for i in range(10)])
        partition = Partition(relation, ("B",))
        partition.strict_repartition(threshold=100)  # everything light
        with pytest.raises(InvariantViolationError):
            partition.check_strict(threshold=1)  # now the light key is too heavy

    def test_keys_follow_base_schema_order(self):
        relation = Relation("R", ("A", "B", "C"))
        partition = Partition(relation, ("C", "A"))
        assert partition.keys == ("A", "C")

    def test_empty_key_schema_rejected(self):
        with pytest.raises(ValueError):
            Partition(make_relation([]), ())


class TestKeyMoves:
    def test_move_to_light_and_back(self):
        relation = make_relation([(1, 0), (2, 0), (3, 1)])
        partition = Partition(relation, ("B",))
        partition.strict_repartition(threshold=1)  # nothing is light
        assert partition.light_degree((0,)) == 0
        deltas = partition.move_key_to_light((0,))
        assert deltas == {(1, 0): 1, (2, 0): 1}
        assert partition.is_light_key((0,))
        deltas_back = partition.move_key_to_heavy((0,))
        assert deltas_back == {(1, 0): -1, (2, 0): -1}
        assert not partition.is_light_key((0,))

    def test_consistency_check(self):
        relation = make_relation([(1, 0)])
        partition = Partition(relation, ("B",))
        partition.strict_repartition(threshold=5)
        partition.check_consistency()
        # manually desynchronise: light part keeps a tuple the base lost
        relation.delete((1, 0))
        with pytest.raises(InvariantViolationError):
            partition.check_consistency()


class TestPartitionRegistry:
    def test_get_or_create_is_idempotent(self):
        relation = make_relation([(1, 0)])
        registry = PartitionRegistry()
        first = registry.get_or_create(relation, ("B",))
        second = registry.get_or_create(relation, ("B",))
        assert first is second
        assert len(registry) == 1

    def test_partitions_of(self):
        r = make_relation([(1, 0)])
        s = Relation("S", ("B", "C"), {(0, 1): 1})
        registry = PartitionRegistry()
        registry.get_or_create(r, ("B",))
        registry.get_or_create(s, ("B",))
        registry.get_or_create(r, ("A", "B"))
        assert len(registry.partitions_of("R")) == 2
        assert len(registry.partitions_of("S")) == 1

    def test_light_part_name_is_canonical(self):
        assert light_part_name("R", ("B", "A")) == "R^{A,B}"


class TestPartitionProperties:
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 5)), min_size=1, max_size=80
        ),
        epsilon=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    )
    @settings(max_examples=50, deadline=None)
    def test_strict_partition_invariants(self, rows, epsilon):
        """Definition 11: after a strict repartition with θ = N^ε the strict
        heavy/light conditions and the union condition hold."""
        relation = make_relation(rows)
        partition = Partition(relation, ("B",))
        threshold = max(1.0, float(len(relation))) ** epsilon
        partition.strict_repartition(threshold)
        partition.check_strict(threshold)
        # union condition: every base tuple is either in the light part (same
        # multiplicity) or its key is heavy
        for tup, mult in relation.items():
            key = partition.key_of(tup)
            if partition.is_light_key(key):
                assert partition.light.multiplicity(tup) == mult
            else:
                assert partition.light.multiplicity(tup) == 0
