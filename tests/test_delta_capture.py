"""Result-delta capture: the per-commit net deltas that feed subscriptions.

``engine.set_delta_capture(True)`` makes the maintenance layer accumulate,
per commit, the net *result-level* delta of the ingested updates (the
first-order delta of each net relation group against its group-sequential
siblings); ``drain_result_delta()`` hands it over and resets.  The
networked serving layer replays these deltas on subscribers' mirrors, so
their one correctness contract is checked here directly: starting from
the result at capture time and applying every drained delta reproduces a
recompute oracle's result after every commit — through batches, single
updates, deletes, minor/major rebalances, and explicit retunes (which are
result-preserving and must drain empty), on both the single-process
engine and the sharded facade.
"""

from __future__ import annotations

import random

import pytest

from repro import Database, HierarchicalEngine, Update
from repro.baselines.naive import NaiveRecomputeEngine
from repro.exceptions import RejectedUpdateError, UnsupportedQueryError
from repro.sharding import ShardedEngine

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
DOMAIN = 8


def make_database(seed: int = 5, rows: int = 50) -> Database:
    rng = random.Random(seed)
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    for _ in range(rows):
        database.relation("R").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
        database.relation("S").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
    return database


def mixed_batches(count: int, size: int, seed: int = 21):
    rng = random.Random(seed)
    inserted = []
    for _ in range(count):
        batch = []
        for _ in range(size):
            if inserted and rng.random() < 0.4:
                relation, tup = inserted.pop(rng.randrange(len(inserted)))
                batch.append(Update(relation, tup, -1))
            else:
                relation = rng.choice(("R", "S"))
                tup = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
                inserted.append((relation, tup))
                batch.append(Update(relation, tup, 1))
        yield batch


def apply_delta(result, delta) -> None:
    for tup, mult in delta.items():
        updated = result.get(tup, 0) + mult
        if updated:
            result[tup] = updated
        else:
            result.pop(tup, None)


@pytest.mark.parametrize("make_engine", ["hierarchical", "sharded"])
def test_drained_deltas_reproduce_oracle(make_engine):
    """Replayed drained deltas track the oracle through every commit."""
    if make_engine == "hierarchical":
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.4)
    else:
        engine = ShardedEngine(PATH_QUERY, shards=3, executor="serial")
    engine.set_delta_capture(True)
    engine.load(make_database())
    oracle = NaiveRecomputeEngine(PATH_QUERY)
    oracle.load(make_database())
    mirror = engine.result()

    for index, batch in enumerate(mixed_batches(24, 6)):
        engine.apply_batch(batch)
        for update in batch:
            oracle.update(update.relation, update.tuple, update.multiplicity)
        apply_delta(mirror, engine.drain_result_delta())
        assert mirror == oracle.result(), f"diverged after batch {index}"
        if index == 11:
            # a retune (major rebalance) is result-preserving: the next
            # drain must contain nothing from it
            engine.retune(0.9)
            assert engine.drain_result_delta() == {}
            assert mirror == engine.result()

    engine.close()


def test_single_update_path_captures():
    """engine.apply / engine.update feed the same capture as batches."""
    engine = HierarchicalEngine(PATH_QUERY)
    engine.set_delta_capture(True)
    engine.load(make_database())
    oracle = NaiveRecomputeEngine(PATH_QUERY)
    oracle.load(make_database())
    mirror = engine.result()
    rng = random.Random(3)
    for _ in range(30):
        tup = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
        relation = rng.choice(("R", "S"))
        engine.update(relation, tup, 1)
        oracle.update(relation, tup, 1)
        apply_delta(mirror, engine.drain_result_delta())
        assert mirror == oracle.result()


def test_rejected_batch_leaves_capture_clean():
    """A rejected commit must contribute nothing to the next drain."""
    engine = HierarchicalEngine(PATH_QUERY)
    engine.set_delta_capture(True)
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    database.relation("R").apply_delta((1, 1), 1)
    database.relation("S").apply_delta((1, 1), 1)
    engine.load(database)
    engine.drain_result_delta()  # discard anything from the load

    with pytest.raises(RejectedUpdateError):
        engine.apply_batch([Update("R", (9, 9), -1)])  # nothing to delete
    assert engine.drain_result_delta() == {}

    engine.apply_batch([Update("R", (1, 2), 1), Update("S", (2, 3), 1)])
    assert engine.drain_result_delta() == {(1, 3): 1}


def test_capture_disabled_by_default_and_toggleable():
    engine = HierarchicalEngine(PATH_QUERY).load(make_database())
    engine.apply_batch([Update("R", (0, 0), 1)])
    assert engine.drain_result_delta() == {}  # capture off: nothing kept
    engine.set_delta_capture(True)
    engine.apply_batch([Update("S", (0, 0), 1)])
    first = engine.drain_result_delta()
    assert engine.drain_result_delta() == {}  # drain resets
    engine.set_delta_capture(False)
    engine.apply_batch([Update("S", (0, 1), 1)])
    assert engine.drain_result_delta() == {}
    assert isinstance(first, dict)


def test_capture_requires_dynamic_mode():
    from repro.core.api import StaticEngine

    static = StaticEngine(PATH_QUERY)
    with pytest.raises(UnsupportedQueryError):
        static.set_delta_capture(True)
    sharded = ShardedEngine(PATH_QUERY, mode="static", shards=2)
    with pytest.raises(UnsupportedQueryError):
        sharded.set_delta_capture(True)


def test_capture_enabled_before_load_survives_reload():
    """set_delta_capture(True) before load() applies to every later load."""
    engine = HierarchicalEngine(PATH_QUERY)
    engine.set_delta_capture(True)
    engine.load(make_database(seed=1))
    engine.apply_batch([Update("R", (0, 0), 1), Update("S", (0, 0), 1)])
    assert engine.drain_result_delta().get((0, 0), 0) >= 1
    engine.load(make_database(seed=2))  # wholesale replace
    engine.apply_batch([Update("R", (1, 1), 1), Update("S", (1, 1), 1)])
    drained = engine.drain_result_delta()
    assert drained.get((1, 1), 0) >= 1
