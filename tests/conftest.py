"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, Sequence, Tuple

import pytest

from repro import Database, HierarchicalEngine
from repro.engine import evaluate_query_naive
from repro.query import parse_query

# ----------------------------------------------------------------------
# queries from the paper, reused throughout the tests
# ----------------------------------------------------------------------
PAPER_QUERIES: Dict[str, str] = {
    # Example 28 (δ1, not free-connex, w = 2)
    "path": "Q(A, C) = R(A, B), S(B, C)",
    # Example 29 (δ1, free-connex, w = 1)
    "semijoin": "Q(A) = R(A, B), S(B)",
    # Example 18 (free-connex, δ1)
    "example18": "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)",
    # Example 19 (w = 3, δ = 3)
    "example19": "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)",
    # Example 12 (free-connex, hierarchical, not q-hierarchical)
    "example12": "Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)",
    # q-hierarchical examples
    "single": "Q(A, B) = R(A, B)",
    "qhier": "Q(A, B) = R(A, B), S(A)",
    # Boolean query
    "boolean": "Q() = R(A, B), S(B)",
    # Cartesian product of two components
    "product": "Q(A, C) = R(A, B), S(C, D)",
    # star query with dynamic width 2 (Definition 5 example with i = 2)
    "star2": "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",
}


@pytest.fixture(scope="session")
def paper_queries() -> Dict[str, str]:
    return dict(PAPER_QUERIES)


def random_database(
    schemas: Dict[str, Sequence[str]],
    tuples_per_relation: int = 25,
    domain: int = 6,
    seed: int = 0,
) -> Database:
    """A small random database for the given relation schemas."""
    rng = random.Random(seed)
    contents = {}
    for name, columns in schemas.items():
        rows = [
            tuple(rng.randrange(domain) for _ in columns)
            for _ in range(tuples_per_relation)
        ]
        contents[name] = (tuple(columns), rows)
    return Database.from_dict(contents)


def schemas_for(query_text: str) -> Dict[str, Tuple[str, ...]]:
    """Relation schemas (named by the query variables) for a query string."""
    query = parse_query(query_text)
    return {atom.relation: atom.variables for atom in query.atoms}


def assert_engine_matches_naive(query_text: str, database: Database, **engine_kwargs):
    """Build an engine, load the database, and compare with naive evaluation."""
    query = parse_query(query_text)
    truth = evaluate_query_naive(query, database).as_dict()
    engine = HierarchicalEngine(query, **engine_kwargs)
    engine.load(database)
    assert engine.result() == truth
    return engine, truth


@pytest.fixture
def path_database() -> Database:
    """A small skewed database for the path query (Example 28)."""
    rows_r = [(a, b) for a in range(8) for b in range(4) if (a + b) % 2 == 0]
    rows_r += [(a, 0) for a in range(8, 20)]  # value 0 is heavy in R
    rows_s = [(b, c) for b in range(4) for c in range(5) if (b * c) % 3 != 1]
    rows_s += [(0, c) for c in range(5, 12)]  # value 0 is heavy in S as well
    return Database.from_dict({"R": (("A", "B"), rows_r), "S": (("B", "C"), rows_s)})
