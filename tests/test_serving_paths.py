"""Serving-path regressions: the bugfix sweep riding with the net layer.

Three bugs fixed in :mod:`repro.core.serving` get pinned here, plus the
pin/retire race coverage the snapshot-publish accounting always deserved:

1. ``apply_update`` used to bypass the commit path ``apply_batch`` took —
   no controller consult, no retune counting, no ``stats.count_batch()``
   (and in snapshot mode its version was published only as a side effect
   of the *next* batch).  Both now flow through one ``_commit``.
2. A writer-loop exception was swallowed until ``stop_writer``; readers
   kept serving a frozen version indefinitely.  ``check_writer()`` now
   raises from every ``read()``.
3. ``run_readers`` joined every session to the full wall-clock deadline
   even after one raised; a shared abort event now stops peers promptly.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import Database, HierarchicalEngine, Update
from repro.core.serving import EngineServer, _PublishedVersion
from repro.exceptions import WriterFailedError

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def make_database(rows: int = 40, seed: int = 9) -> Database:
    rng = random.Random(seed)
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    for _ in range(rows):
        database.relation("R").apply_delta((rng.randrange(6), rng.randrange(6)), 1)
        database.relation("S").apply_delta((rng.randrange(6), rng.randrange(6)), 1)
    return database


class CountingController:
    """Stub controller: counts consults, retunes on demand."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.consults = 0
        self.retune_next = False

    def maybe_retune(self):
        self.consults += 1
        if self.retune_next:
            self.retune_next = False
            epsilon = 0.9 if self.engine.epsilon < 0.9 else 0.1
            self.engine.retune(epsilon)
            return epsilon
        return None


# ----------------------------------------------------------------------
# 1. apply_update goes through the same commit path as apply_batch
# ----------------------------------------------------------------------
def test_apply_update_uses_unified_commit_path():
    engine = HierarchicalEngine(PATH_QUERY).load(make_database())
    controller = CountingController(engine)
    server = EngineServer(engine, mode="snapshot", controller=controller)

    before = server.read()
    server.apply_update(Update("R", (0, 0), 1))

    # counted like a commit
    assert server.stats.batches_applied == 1
    # controller consulted exactly once
    assert controller.consults == 1
    # the new version is published immediately: a read serves it without
    # waiting for a later batch to publish it as a side effect
    after = server.read()
    assert after.version == before.version + 1
    assert after.version == engine.version

    # a consult that retunes is counted in retunes_applied
    controller.retune_next = True
    server.apply_update(Update("S", (0, 0), 1))
    assert server.stats.retunes_applied == 1
    assert server.stats.batches_applied == 2
    # and the published snapshot already serves the post-retune state
    assert server.read().result() == engine.result()
    engine.close()


def test_apply_update_notifies_commit_listeners():
    engine = HierarchicalEngine(PATH_QUERY).load(make_database())
    server = EngineServer(engine)
    seen = []
    server.on_commit(lambda version, delta: seen.append((version, dict(delta))))
    server.apply_update(Update("R", (1, 1), 1))
    server.apply_batch([Update("S", (1, 1), 1)])
    assert [version for version, _ in seen] == [engine.version - 1, engine.version]
    # listener deltas replay to the engine's own result
    engine.close()


# ----------------------------------------------------------------------
# 2. a dead writer surfaces at the next read, not at stop_writer
# ----------------------------------------------------------------------
def test_dead_writer_fails_reads_promptly():
    engine = HierarchicalEngine(PATH_QUERY).load(make_database())
    server = EngineServer(engine)

    class WriterBoom(RuntimeError):
        pass

    died = threading.Event()

    def batches():
        yield [Update("R", (2, 2), 1)]
        yield [Update("S", (2, 2), 1)]
        try:
            raise WriterBoom("mid-stream failure")
        finally:
            died.set()

    thread = server.start_writer(batches())
    thread.join(10.0)
    assert died.wait(10.0)

    # the probe raises, every read raises, and the cause is attached
    with pytest.raises(WriterFailedError) as info:
        server.check_writer()
    assert isinstance(info.value.__cause__, WriterBoom)
    with pytest.raises(WriterFailedError):
        server.read()
    # the probe does not consume the error: repeated reads keep failing
    with pytest.raises(WriterFailedError):
        server.read()
    # stop_writer still re-raises the original exception
    with pytest.raises(WriterBoom):
        server.stop_writer()
    # after stop_writer drained it, serving resumes
    assert server.read().version == engine.version
    engine.close()


# ----------------------------------------------------------------------
# 3. one failed reader session aborts its peers promptly
# ----------------------------------------------------------------------
def test_run_readers_aborts_peers_on_first_error():
    engine = HierarchicalEngine(PATH_QUERY).load(make_database())
    server = EngineServer(engine)

    class ReadBoom(RuntimeError):
        pass

    calls = {"count": 0}
    original_read = server.read

    def failing_read(limit=None):
        calls["count"] += 1
        if calls["count"] == 5:
            raise ReadBoom("reader session died")
        return original_read(limit)

    server.read = failing_read  # type: ignore[method-assign]
    duration = 10.0
    started = time.perf_counter()
    with pytest.raises(ReadBoom):
        server.run_readers(4, duration)
    elapsed = time.perf_counter() - started
    # before the fix this only returned after the full wall-clock window
    assert elapsed < duration / 2, (
        f"peers kept reading for {elapsed:.1f}s after the first failure"
    )
    engine.close()


# ----------------------------------------------------------------------
# 4. pin/retire accounting: close exactly once, never while pinned
# ----------------------------------------------------------------------
class TrackedSnapshot:
    """A snapshot double that records pins around enumeration and close."""

    def __init__(self, version: int, log) -> None:
        self.version = version
        self._log = log
        self._lock = threading.Lock()
        self.active_readers = 0
        self.close_calls = 0

    def enumerate(self):
        with self._lock:
            self.active_readers += 1
            assert self.close_calls == 0, (
                f"version {self.version}: enumerate on a closed snapshot"
            )
        try:
            yield ((self.version,), 1)
            time.sleep(0)  # widen the race window
            yield ((self.version, self.version), 1)
        finally:
            with self._lock:
                self.active_readers -= 1

    def close(self):
        with self._lock:
            assert self.active_readers == 0, (
                f"version {self.version}: close() while a reader is pinned"
            )
            self.close_calls += 1
        self._log.append(self)


class SnapshotFactory:
    """Engine double: only what EngineServer's snapshot path touches."""

    telemetry = None

    def __init__(self) -> None:
        self.version = 0
        self.closed_log = []
        self.all_snapshots = []
        self._lock = threading.Lock()

    def snapshot(self) -> TrackedSnapshot:
        with self._lock:
            snapshot = TrackedSnapshot(self.version, self.closed_log)
            self.all_snapshots.append(snapshot)
            return snapshot

    def apply_batch(self, updates) -> None:
        with self._lock:
            self.version += 1


def test_publish_retire_race_closes_each_snapshot_exactly_once():
    engine = SnapshotFactory()
    server = EngineServer(engine, mode="snapshot")
    stop = threading.Event()
    errors = []

    def reader() -> None:
        try:
            while not stop.is_set():
                server.read()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
            stop.set()

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(300):
            server.apply_batch([])  # publish + retire the previous version
    finally:
        stop.set()
        for thread in threads:
            thread.join(10.0)
    if errors:
        raise errors[0]

    # every superseded snapshot was closed exactly once...
    for snapshot in engine.all_snapshots[:-1]:
        assert snapshot.close_calls == 1, (
            f"version {snapshot.version} closed {snapshot.close_calls} times"
        )
    # ...and the currently published one not at all
    assert engine.all_snapshots[-1].close_calls == 0
    # (the "never while pinned" half is asserted inside TrackedSnapshot)


def test_published_version_close_once_under_direct_race():
    """Hammer unpin/retire directly: the close body runs exactly once."""
    for _ in range(200):
        lock = threading.Lock()
        log = []
        snapshot = TrackedSnapshot(0, log)
        entry = _PublishedVersion(snapshot, lock)
        with lock:
            entry._pins += 1
        barrier = threading.Barrier(2)

        def unpin() -> None:
            barrier.wait()
            entry.unpin()

        def retire() -> None:
            barrier.wait()
            entry.retire()

        threads = [threading.Thread(target=unpin), threading.Thread(target=retire)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        assert snapshot.close_calls == 1
