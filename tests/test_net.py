"""The networked serving layer: protocol, server, client, subscriptions.

The end-to-end contract under test: everything a client observes over the
wire — paged snapshots, point lookups, reads, and above all subscription
pushes — must match a recompute oracle at the version stamps the server
reports.  The subscription conformance test drives mixed batches through
the wire with a mid-stream auto-retune and checks the mirrored state at
*every* version; the backpressure test wedges a non-reading subscriber
and asserts the coalesce-to-resync path re-converges it.
"""

from __future__ import annotations

import contextlib
import random
import socket
import threading
import time
import urllib.request

import pytest

from repro import Database, HierarchicalEngine, Update
from repro.baselines.naive import NaiveRecomputeEngine
from repro.core.api import StaticEngine
from repro.core.serving import EngineServer
from repro.net import (
    AsyncEngineClient,
    EngineClient,
    RemoteError,
    ServerConfig,
    ServerThread,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_frame,
    parse_header,
    read_frame,
    unwire_pairs,
    unwire_updates,
    wire_pairs,
    wire_updates,
    write_frame,
)

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
DOMAIN = 8


def make_database(seed: int = 13, rows: int = 60, hot: int = 0) -> Database:
    rng = random.Random(seed)
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    for c in range(hot):
        database.relation("S").apply_delta((0, c), 1)
    for _ in range(rows):
        database.relation("R").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
        database.relation("S").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
    return database


def mixed_batch(rng: random.Random, inserted) -> list:
    batch = []
    for _ in range(6):
        if inserted and rng.random() < 0.4:
            relation, tup = inserted.pop(rng.randrange(len(inserted)))
            batch.append(Update(relation, tup, -1))
        else:
            relation = rng.choice(("R", "S"))
            tup = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
            inserted.append((relation, tup))
            batch.append(Update(relation, tup, 1))
    return batch


@contextlib.contextmanager
def serve(engine=None, config=None, mode="snapshot", controller=None):
    owns_engine = engine is None
    if engine is None:
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(make_database())
    serving = EngineServer(engine, mode=mode, controller=controller)
    handle = ServerThread(serving, config or ServerConfig()).start()
    try:
        yield serving, handle
    finally:
        handle.close()
        if owns_engine:
            engine.close()


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    message = {"op": "ping", "id": 7, "values": [[1, 2], 3], "text": "héllo"}
    frame = encode_frame(message)
    assert parse_header(frame[:4]) == len(frame) - 4
    assert decode_payload(frame[4:]) == message


def test_frame_header_guards():
    with pytest.raises(ProtocolError):
        parse_header(b"\x00\x00")  # truncated
    oversized = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(ProtocolError):
        parse_header(oversized)
    with pytest.raises(ProtocolError):
        decode_payload(b"not json")
    with pytest.raises(ProtocolError):
        decode_payload(b"[1, 2, 3]")  # not an object


def test_pairs_and_updates_roundtrip():
    pairs = [((1, "x"), 2), ((3, 4), -1)]
    assert unwire_pairs(wire_pairs(pairs)) == pairs
    updates = [Update("R", (1, 2), 1), Update("S", ("a", 0), -2)]
    assert unwire_updates(wire_updates(updates)) == updates
    with pytest.raises(ProtocolError):
        unwire_pairs([["missing-mult"]])
    with pytest.raises(ProtocolError):
        unwire_updates([["R", [1, 2]]])  # missing multiplicity


# ----------------------------------------------------------------------
# request/response ops
# ----------------------------------------------------------------------
def test_ping_read_and_lookup_roundtrip():
    with serve() as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            hello = client.ping()
            assert hello["query"] == str(serving.engine.query)
            assert hello["mode"] == "dynamic"
            version, pairs = client.read()
            expected = serving.engine.result()
            assert version == serving.engine.version
            assert {tup: mult for tup, mult in pairs} == expected
            if expected:
                probe = next(iter(expected))
                assert client.lookup(probe) == expected[probe]
            assert client.lookup((99, 99)) == 0


def test_paged_snapshot_enumeration():
    with serve() as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            with client.open_snapshot() as snap:
                pairs, done = snap.page(7)
                assert len(pairs) == 7 and not done
                rest = list(snap.pairs(page_size=11))
                full = {tup: mult for tup, mult in pairs + rest}
                assert full == serving.engine.result()
                # the cursor is exhausted: further pages are empty
                tail, done = snap.page(5)
                assert tail == [] and done
            # closed handle is gone server-side
            with pytest.raises(RemoteError):
                client._request("snapshot_page", snap=snap.snap, limit=5)


def test_snapshot_is_isolated_from_later_commits():
    with serve() as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            before = serving.engine.result()
            snap = client.open_snapshot()
            client.apply_batch([Update("R", (0, 0), 1), Update("S", (0, 7), 1)])
            assert snap.result(page_size=20) == before
            snap.close()
            assert client.result() == serving.engine.result()


def test_snapshot_limit_per_session():
    config = ServerConfig(max_snapshots_per_session=2)
    with serve(config=config) as (_, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            first = client.open_snapshot()
            client.open_snapshot()
            with pytest.raises(RemoteError, match="snapshot limit"):
                client.open_snapshot()
            first.close()  # freeing one slot re-admits
            client.open_snapshot()


def test_wire_apply_update_and_rejection_kinds():
    with serve() as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            version = client.apply_update(Update("R", (5, 5), 1))
            assert version == serving.engine.version
            assert serving.stats.batches_applied == 1
            with pytest.raises(RemoteError) as info:
                client.apply_batch([Update("R", (7, 7), -3)])
            assert info.value.kind == "RejectedUpdateError"
            # the rejected commit neither bumped the version nor broke serving
            assert client.read()[0] == version


def test_unknown_op_and_bad_snapshot_handle():
    with serve() as (_, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            with pytest.raises(RemoteError, match="unknown op"):
                client._request("frobnicate")
            with pytest.raises(RemoteError, match="unknown snapshot"):
                client._request("snapshot_page", snap=999, limit=5)


def test_connection_limit_refuses_with_error_frame():
    config = ServerConfig(max_connections=1)
    with serve(config=config) as (_, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            client.ping()
            refused = socket.create_connection(("127.0.0.1", handle.port), 5)
            try:
                reply = read_frame(refused)
                assert reply["ok"] is False and reply["kind"] == "ServerBusy"
            finally:
                refused.close()
            # the admitted session keeps working
            assert client.ping()["protocol"] == 1
            stats = client.server_stats()
            assert stats["net"]["connections_refused"] == 1


def test_locked_mode_serves_over_the_wire():
    engine = HierarchicalEngine(PATH_QUERY).load(make_database())
    with serve(engine=engine, mode="locked") as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            version, pairs = client.read()
            assert {t: m for t, m in pairs} == engine.result()
            client.apply_batch([Update("R", (1, 1), 1)])
            assert client.read()[0] == version + 1
            probe = next(iter(engine.result()))
            assert client.lookup(probe) == engine.result()[probe]
    engine.close()


# ----------------------------------------------------------------------
# subscriptions
# ----------------------------------------------------------------------
class RetuneOnceController:
    """Retunes exactly once, at the Nth consult."""

    def __init__(self, engine, at_commit: int) -> None:
        self.engine = engine
        self.at_commit = at_commit
        self.consults = 0

    def maybe_retune(self):
        self.consults += 1
        if self.consults == self.at_commit:
            self.engine.retune(0.9)
            return 0.9
        return None


def test_subscription_conformance_across_retune():
    """Pushed deltas reproduce the oracle at every version, spanning an
    auto-retune that bumps the version mid-stream."""
    engine = HierarchicalEngine(PATH_QUERY, epsilon=0.3).load(make_database())
    controller = RetuneOnceController(engine, at_commit=10)
    oracle = NaiveRecomputeEngine(PATH_QUERY)
    oracle.load(make_database())
    with serve(engine=engine, controller=controller) as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            subscription = client.subscribe(query=PATH_QUERY)
            initial = dict(subscription.result())
            assert initial == oracle.result()

            rng = random.Random(55)
            inserted = []
            trajectory = {}
            final_version = subscription.version
            for _ in range(20):
                batch = mixed_batch(rng, inserted)
                final_version = client.apply_batch(batch)
                for update in batch:
                    oracle.update(update.relation, update.tuple, update.multiplicity)
                trajectory[final_version] = oracle.result()

            assert controller.consults >= 20  # the retune really happened
            assert subscription.wait_for_version(final_version, 30.0)
            assert subscription.result() == oracle.result()

            # replay every pushed delta from the initial result: the mirror
            # must equal the oracle at each version stamp it passes through
            replay = dict(initial)
            matched = 0
            for kind, version, pairs in subscription.state.events:
                assert kind == "delta"
                for tup, mult in pairs:
                    updated = replay.get(tuple(tup), 0) + mult
                    if updated:
                        replay[tuple(tup)] = updated
                    else:
                        replay.pop(tuple(tup), None)
                if version in trajectory:
                    assert replay == trajectory[version], (
                        f"pushed deltas diverged at version {version}"
                    )
                    matched += 1
            assert matched == len(trajectory)
    engine.close()


def test_subscribe_rejects_wrong_query_and_static_engine():
    with serve() as (_, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            with pytest.raises(RemoteError) as info:
                client.subscribe(query="Q(A) = R(A, B), S(B)")
            assert info.value.kind == "UnsupportedQueryError"
    static = StaticEngine(PATH_QUERY)
    static.load(make_database())
    with serve(engine=static) as (_, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            with pytest.raises(RemoteError) as info:
                client.subscribe()
            assert info.value.kind == "UnsupportedQueryError"


def test_unsubscribe_stops_pushes():
    with serve() as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            subscription = client.subscribe()
            client.apply_batch([Update("R", (0, 1), 1), Update("S", (1, 0), 1)])
            assert subscription.wait_for_version(serving.engine.version, 10.0)
            subscription.close()
            client.apply_batch([Update("R", (0, 2), 1), Update("S", (2, 0), 1)])
            time.sleep(0.3)
            assert subscription.version < serving.engine.version
            stats = client.server_stats()
            assert stats["net"]["subscribers_current"] == 0


def test_slow_subscriber_coalesces_to_resync():
    """A wedged subscriber overflows its bounded queue, gets coalesced,
    and re-converges through one full-state resync."""
    engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(
        make_database(rows=0, hot=400)
    )
    oracle = NaiveRecomputeEngine(PATH_QUERY)
    oracle.load(make_database(rows=0, hot=400))
    config = ServerConfig(subscriber_queue_size=2, send_buffer_bytes=4096)
    with serve(engine=engine, config=config) as (serving, handle):
        wedged = socket.socket()
        wedged.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        wedged.connect(("127.0.0.1", handle.port))
        write_frame(wedged, {"op": "subscribe", "id": 1, "queue": 2})
        reply = read_frame(wedged)
        assert reply["ok"], reply
        version = reply["version"]
        state = {tup: mult for tup, mult in unwire_pairs(reply["result"])}

        # every commit fans 400 result tuples at the wedged subscriber
        for a in range(30):
            serving.apply_batch([Update("R", (a, 0), 1)])
            oracle.update("R", (a, 0), 1)
        final = engine.version
        time.sleep(0.3)

        resyncs = 0
        wedged.settimeout(15)
        while version < final:
            message = read_frame(wedged)
            if "sub" not in message:
                continue
            if message["kind"] == "delta":
                if message["version"] <= version:
                    continue
                for tup, mult in unwire_pairs(message["delta"]):
                    updated = state.get(tup, 0) + mult
                    if updated:
                        state[tup] = updated
                    else:
                        state.pop(tup, None)
                version = message["version"]
            else:
                state = {t: m for t, m in unwire_pairs(message["result"])}
                version = message["version"]
                resyncs += 1
        wedged.close()

        assert state == oracle.result(), "diverged after resync"
        assert resyncs >= 1, "bounded queue never overflowed into a resync"
        net = handle.server.stats.as_dict()
        assert net["resyncs"] >= 1
        assert net["max_queue_depth"] <= config.subscriber_queue_size
    engine.close()


def test_async_client_subscription():
    import asyncio

    with serve() as (serving, handle):
        oracle = NaiveRecomputeEngine(PATH_QUERY)
        oracle.load(make_database())

        async def scenario():
            clients = [
                await AsyncEngineClient.connect("127.0.0.1", handle.port)
                for _ in range(5)
            ]
            subs = [await client.subscribe() for client in clients]
            rng = random.Random(1)
            inserted = []
            final = 0
            for _ in range(8):
                batch = mixed_batch(rng, inserted)
                final = await clients[0].apply_batch(batch)
                for update in batch:
                    oracle.update(update.relation, update.tuple, update.multiplicity)
            waits = await asyncio.gather(
                *(sub.wait_for_version(final, 20.0) for sub in subs)
            )
            assert all(waits)
            for sub in subs:
                assert sub.result == oracle.result()
            for client in clients:
                await client.close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# metrics and introspection
# ----------------------------------------------------------------------
def test_metrics_over_http_and_op():
    with serve() as (serving, handle):
        with EngineClient("127.0.0.1", handle.port) as client:
            client.apply_batch([Update("R", (0, 0), 1)])
            client.read()
            text = client.metrics()
            for needle in (
                "# TYPE repro_engine_version gauge",
                "repro_serving_batches_applied 1",
                "repro_serving_reads_served",
                "repro_rebalance_batches",
                "repro_workload_update_events",
                "repro_net_connections_current 1",
            ):
                assert needle in text, f"{needle!r} missing:\n{text}"
            http = urllib.request.urlopen(
                f"http://127.0.0.1:{handle.port}/metrics", timeout=10
            )
            assert http.status == 200
            assert "version=0.0.4" in http.headers["Content-Type"]
            assert "repro_engine_version" in http.read().decode()
            with pytest.raises(urllib.request.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{handle.port}/nope", timeout=10
                )
            stats = client.server_stats()
            assert stats["net"]["http_requests"] >= 1
            assert stats["serving"]["batches_applied"] == 1
            assert stats["version"] == serving.engine.version


def test_server_survives_garbage_bytes():
    with serve() as (_, handle):
        sock = socket.create_connection(("127.0.0.1", handle.port), 5)
        sock.sendall(b"\x00\x00\x00\x05notjs")
        sock.close()
        # and a clean client still works afterwards
        with EngineClient("127.0.0.1", handle.port) as client:
            assert client.ping()["protocol"] == 1
