"""Unit tests for schema and tuple helpers."""

import pytest

from repro.data.schema import (
    Projector,
    difference_schema,
    dict_to_tuple,
    intersect_schema,
    is_subschema,
    make_schema,
    merge_assignments,
    ordered,
    positions,
    project,
    tuple_to_dict,
    union_schema,
)
from repro.exceptions import SchemaError


class TestMakeSchema:
    def test_preserves_order(self):
        assert make_schema(["B", "A", "C"]) == ("B", "A", "C")

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            make_schema(["A", "B", "A"])

    def test_empty_schema_is_allowed(self):
        assert make_schema([]) == ()


class TestProjection:
    def test_positions(self):
        assert positions(("A", "B", "C"), ("C", "A")) == (2, 0)

    def test_positions_missing_variable(self):
        with pytest.raises(SchemaError):
            positions(("A", "B"), ("C",))

    def test_project_reorders_values(self):
        assert project((1, 2, 3), ("A", "B", "C"), ("C", "A")) == (3, 1)

    def test_project_to_empty(self):
        assert project((1, 2), ("A", "B"), ()) == ()

    def test_projector_is_reusable(self):
        projector = Projector(("A", "B", "C"), ("B",))
        assert projector((1, 2, 3)) == (2,)
        assert projector((4, 5, 6)) == (5,)

    def test_paper_example(self):
        # (a, b, c)[(C, A)] = (c, a) — Section 3 of the paper
        assert project(("a", "b", "c"), ("A", "B", "C"), ("C", "A")) == ("c", "a")


class TestAssignments:
    def test_tuple_to_dict_roundtrip(self):
        schema = ("A", "B")
        assignment = tuple_to_dict((1, 2), schema)
        assert assignment == {"A": 1, "B": 2}
        assert dict_to_tuple(assignment, schema) == (1, 2)

    def test_tuple_to_dict_arity_mismatch(self):
        with pytest.raises(SchemaError):
            tuple_to_dict((1, 2, 3), ("A", "B"))

    def test_dict_to_tuple_missing_variable(self):
        with pytest.raises(SchemaError):
            dict_to_tuple({"A": 1}, ("A", "B"))

    def test_merge_assignments_disjoint(self):
        assert merge_assignments({"A": 1}, {"B": 2}) == {"A": 1, "B": 2}

    def test_merge_assignments_agreeing_overlap(self):
        assert merge_assignments({"A": 1}, {"A": 1, "B": 2}) == {"A": 1, "B": 2}

    def test_merge_assignments_conflict(self):
        with pytest.raises(SchemaError):
            merge_assignments({"A": 1}, {"A": 2})


class TestSetOperations:
    def test_union_keeps_first_order(self):
        assert union_schema(("A", "B"), ("C", "B")) == ("A", "B", "C")

    def test_intersect(self):
        assert intersect_schema(("A", "B", "C"), ("C", "A")) == ("A", "C")

    def test_difference(self):
        assert difference_schema(("A", "B", "C"), ("B",)) == ("A", "C")

    def test_is_subschema(self):
        assert is_subschema(("A",), ("A", "B"))
        assert not is_subschema(("C",), ("A", "B"))
        assert is_subschema((), ("A",))

    def test_ordered_sorts_and_dedupes(self):
        assert ordered(["B", "A", "B"]) == ("A", "B")
