"""Columnar storage backend: dispatch, contract pins, and internals.

Covers the storage-contract bugfix sweep (atomic ``merge``, ``ValueError``
from negative ``set_multiplicity``) on *both* backends, plus the pieces of
the columnar layout that the observational-equivalence property cannot see
directly: value interning (including the int self-id fast path), free-list
reuse, explicit and automatic compaction, and the index-group machinery.
"""

from __future__ import annotations

import pytest

from repro.data import Relation, storage_backend
from repro.data.relation import (
    DictRelation,
    backend_class,
    get_default_backend,
    set_default_backend,
)
from repro.data.storage import (
    _COMPACT_MIN_FREE,
    _ID_MAX,
    _POOL_BASE,
    ColumnarRelation,
)
from repro.exceptions import RejectedUpdateError, SchemaError


@pytest.fixture(params=["dict", "columnar"])
def backend(request):
    with storage_backend(request.param):
        yield request.param


def make_relation(rows=None, schema=("A", "B")):
    return Relation("R", schema, rows or {})


# ----------------------------------------------------------------------
# backend dispatch
# ----------------------------------------------------------------------

def test_relation_factory_dispatches_on_default_backend(backend):
    relation = make_relation()
    assert relation.backend == backend
    assert type(relation) is backend_class(backend)


def test_direct_instantiation_pins_backend(backend):
    # Constructing a concrete class ignores the ambient default.
    assert DictRelation("R", ("A",)).backend == "dict"
    assert ColumnarRelation("R", ("A",)).backend == "columnar"


def test_set_default_backend_mirrors_environ(monkeypatch):
    import os

    previous = get_default_backend()
    try:
        set_default_backend("dict")
        assert os.environ["REPRO_STORAGE"] == "dict"
        set_default_backend("columnar")
        assert os.environ["REPRO_STORAGE"] == "columnar"
    finally:
        set_default_backend(previous)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        set_default_backend("sqlite")


def test_copy_preserves_backend_across_default_switch(backend):
    relation = make_relation({(1, 2): 3})
    other = "dict" if backend == "columnar" else "columnar"
    with storage_backend(other):
        clone = relation.copy()
    assert clone.backend == backend
    assert clone.as_dict() == {(1, 2): 3}


# ----------------------------------------------------------------------
# satellite 1: merge is validate-then-apply atomic
# ----------------------------------------------------------------------

def test_merge_rejection_leaves_target_untouched(backend):
    """Regression: a rejected negative merge must not half-apply.

    The old implementation applied entries as it iterated and only raised
    when it reached the over-deleting entry, so with the violating tuple
    *last* in ``other``'s insertion order the earlier entries were already
    deleted from the target by the time the error surfaced.
    """
    target = make_relation({(1, 1): 5, (2, 2): 5, (3, 3): 1})
    other = make_relation({(1, 1): 2, (2, 2): 2, (3, 3): 4})
    before = target.as_dict()
    with pytest.raises(RejectedUpdateError):
        target.merge(other, sign=-1)
    assert target.as_dict() == before
    assert list(target.items()) == list(before.items())


def test_merge_positive_and_valid_negative(backend):
    target = make_relation({(1, 1): 2})
    other = make_relation({(1, 1): 1, (2, 2): 3})
    target.merge(other)
    assert target.as_dict() == {(1, 1): 3, (2, 2): 3}
    target.merge(other, sign=-1)
    assert target.as_dict() == {(1, 1): 2}


def test_merge_schema_mismatch(backend):
    with pytest.raises(SchemaError):
        make_relation().merge(Relation("S", ("A", "C")))


# ----------------------------------------------------------------------
# satellite 2: negative set_multiplicity is a ValueError
# ----------------------------------------------------------------------

def test_set_multiplicity_negative_is_value_error(backend):
    """Regression: a negative target multiplicity is a caller error.

    It used to surface as :class:`RejectedUpdateError` out of the
    underlying ``apply_delta``; the contract reserves that error for
    over-deletes of well-formed updates and reports sign errors as
    :class:`ValueError` like ``insert``/``delete`` do.
    """
    relation = make_relation({(1, 2): 4})
    with pytest.raises(ValueError) as excinfo:
        relation.set_multiplicity((1, 2), -1)
    assert not isinstance(excinfo.value, RejectedUpdateError)
    assert relation.as_dict() == {(1, 2): 4}


def test_set_multiplicity_zero_removes_and_set_updates(backend):
    relation = make_relation({(1, 2): 4})
    relation.set_multiplicity((1, 2), 9)
    assert relation.multiplicity((1, 2)) == 9
    relation.set_multiplicity((3, 4), 2)
    relation.set_multiplicity((1, 2), 0)
    assert relation.as_dict() == {(3, 4): 2}


# ----------------------------------------------------------------------
# value interning
# ----------------------------------------------------------------------

def test_equal_values_collapse_like_dict_keys():
    """1, 1.0, True and Decimal('1') are one dict key — and one column id."""
    from decimal import Decimal

    with storage_backend("columnar"):
        relation = make_relation(schema=("A", "B"))
        relation.apply_delta((1, "x"), 1)
        relation.apply_delta((1.0, "x"), 1)
        relation.apply_delta((True, "x"), 1)
        relation.apply_delta((Decimal("1"), "x"), 1)
        assert relation.as_dict() == {(1, "x"): 4}
        keys = ("A",)
        assert relation.contains_key(keys, (1.0,))
        assert relation.degree_of(keys, (True, "x")) == 1


def test_interning_ranges_do_not_collide():
    with storage_backend("columnar"):
        relation = make_relation(schema=("A",))
        small = 7
        big = 1 << 50  # outside the self-id range, goes through the pool
        relation.apply_delta((small,), 1)
        relation.apply_delta((big,), 1)
        relation.apply_delta((_POOL_BASE,), 1)  # collides with pool id space
        relation.apply_delta((-small,), 1)
        assert sorted(t[0] for t in relation) == sorted(
            [small, big, _POOL_BASE, -small]
        )
        assert relation._intern(small) == small
        assert relation._intern(big) >= _POOL_BASE
        assert abs(relation._intern(-small)) < _ID_MAX


def test_absent_probes_with_unseen_and_unhashable_friendly_values():
    with storage_backend("columnar"):
        relation = make_relation({(1, 2): 1})
        keys = ("A",)
        assert not relation.contains_key(keys, ("never-seen",))
        assert not relation.contains_key_of(keys, (99, 2))
        assert relation.degree_of(keys, (2.5, 0)) == 0
        assert relation.slice_size(keys, (1 << 60,)) == 0


# ----------------------------------------------------------------------
# free list and compaction
# ----------------------------------------------------------------------

def test_free_list_reuse_preserves_enumeration_order():
    with storage_backend("columnar"):
        relation = make_relation()
        for i in range(6):
            relation.apply_delta((i, i), 1)
        relation.apply_delta((2, 2), -1)
        relation.apply_delta((4, 4), -1)
        relation.apply_delta((10, 10), 1)  # reuses a freed row id
        relation.apply_delta((2, 2), 1)  # re-insert goes to the *end*
        expected = [(0, 0), (1, 1), (3, 3), (5, 5), (10, 10), (2, 2)]
        assert list(relation) == expected
        assert len(relation._free) == 0


def test_explicit_compact_is_observationally_invisible():
    with storage_backend("columnar"):
        relation = make_relation()
        keys = ("B",)
        for i in range(50):
            relation.apply_delta((i, i % 5), 1 + i % 3)
        relation.ensure_index(keys)
        for i in range(0, 50, 2):
            relation.apply_delta((i, i % 5), -relation.multiplicity((i, i % 5)))
        items = list(relation.items())
        groups = {k: list(relation.slice(keys, k)) for k in relation.distinct_keys(keys)}
        key_order = list(relation.distinct_keys(keys))
        relation.compact()
        assert len(relation._free) == 0
        assert len(relation._mults) == len(relation)
        assert list(relation.items()) == items
        assert list(relation.distinct_keys(keys)) == key_order
        for key, members in groups.items():
            assert list(relation.slice(keys, key)) == members
            assert relation.slice_size(keys, key) == len(members)


def test_auto_compaction_triggers_and_keeps_answers():
    with storage_backend("columnar"):
        relation = make_relation()
        relation.apply_delta((-1, -1), 1)  # one survivor
        churn = 2 * _COMPACT_MIN_FREE
        for i in range(churn):
            relation.apply_delta((i, i), 1)
            relation.apply_delta((i, i), -1)
        # The free list can never exceed the auto-compaction bound by more
        # than the ratio allows: churn rows were freed, so a rebuild ran.
        assert len(relation._free) < churn
        assert len(relation._mults) < churn
        assert relation.as_dict() == {(-1, -1): 1}


# ----------------------------------------------------------------------
# indexes
# ----------------------------------------------------------------------

def test_group_view_is_reiterable_and_sized():
    with storage_backend("columnar"):
        relation = make_relation({(1, 0): 1, (2, 0): 1, (3, 1): 1})
        view = relation.slice(("B",), (0,))
        assert list(view) == [(1, 0), (2, 0)]
        assert list(view) == [(1, 0), (2, 0)]  # second pass identical
        assert len(view) == 2
        relation.apply_delta((4, 0), 1)
        assert list(view) == [(1, 0), (2, 0), (4, 0)]  # live view


def test_index_memo_and_invalidate(backend):
    relation = make_relation({(1, 2): 1})
    index = relation.ensure_index(("B",))
    assert relation.ensure_index(("B",)) is index
    assert relation.ensure_index(["B"]) is index  # normalised to one index
    relation.invalidate_indexes()
    rebuilt = relation.ensure_index(("B",))
    assert rebuilt is not index
    assert relation.slice_size(("B",), (2,)) == 1
    if backend == "columnar":
        assert relation._index_list == tuple(relation._indexes.values())


def test_index_key_schema_must_be_subset(backend):
    with pytest.raises(SchemaError):
        make_relation().ensure_index(("A", "Z"))


def test_multi_column_index_groups(backend):
    relation = Relation("T", ("A", "B", "C"))
    for row in [(1, 2, 3), (1, 2, 4), (2, 2, 3), (1, 3, 3)]:
        relation.apply_delta(row, 1)
    keys = ("A", "B")
    assert relation.slice_size(keys, (1, 2)) == 2
    assert list(relation.slice(keys, (1, 2))) == [(1, 2, 3), (1, 2, 4)]
    assert relation.contains_key_of(keys, (1, 2, 999))
    assert not relation.contains_key_of(keys, (9, 2, 3))
    assert relation.degree_of(keys, (2, 2, 0)) == 1
    relation.apply_delta((1, 2, 3), -1)
    relation.apply_delta((1, 2, 4), -1)
    assert not relation.contains_key(keys, (1, 2))
    assert (1, 2) not in list(relation.distinct_keys(keys))


def test_clear_resets_storage(backend):
    relation = make_relation({(1, 2): 2, (3, 4): 1})
    relation.ensure_index(("A",))
    relation.clear()
    assert len(relation) == 0
    assert list(relation.items()) == []
    relation.apply_delta((5, 6), 1)
    assert relation.slice_size(("A",), (5,)) == 1


# ----------------------------------------------------------------------
# contract edges shared by both backends
# ----------------------------------------------------------------------

def test_apply_delta_contract(backend):
    relation = make_relation()
    assert relation.apply_delta((1, 2), 0) == 0
    assert (1, 2) not in relation
    with pytest.raises(RejectedUpdateError):
        relation.apply_delta((1, 2), -1)
    assert relation.apply_delta((1, 2), 2) == 2
    with pytest.raises(RejectedUpdateError):
        relation.apply_delta((1, 2), -3)
    assert relation.multiplicity((1, 2)) == 2
    assert relation.apply_delta((1, 2), -2) == 0
    assert len(relation) == 0


def test_arity_is_checked_on_the_insert_path(backend):
    relation = make_relation()
    with pytest.raises(SchemaError):
        relation.apply_delta((1, 2, 3), 1)
    with pytest.raises(SchemaError):
        relation.apply_delta((1,), 1)


def test_total_multiplicity(backend):
    relation = make_relation({(1, 2): 3, (4, 5): 7})
    assert relation.total_multiplicity() == 10
