"""Tests for edge covers and the static/dynamic width measures."""

import pytest

from repro.query.parser import parse_query
from repro.widths.edge_cover import (
    fractional_edge_cover,
    integral_edge_cover,
    rho,
    rho_star,
)
from repro.widths.dynamic_width import dynamic_width, dynamic_width_profile
from repro.widths.static_width import static_width, static_width_profile


class TestEdgeCovers:
    def test_single_atom_cover(self):
        q = parse_query("Q(A, B) = R(A, B)")
        assert rho_star(q, {"A", "B"}) == pytest.approx(1.0)
        assert rho(q, {"A", "B"}) == 1

    def test_empty_target_set(self):
        q = parse_query("Q(A) = R(A, B), S(B)")
        assert rho_star(q, set()) == 0.0
        assert rho(q, set()) == 0

    def test_two_disjoint_atoms_needed(self):
        q = parse_query("Q(A, C) = R(A, B), S(B, C)")
        assert rho_star(q, {"A", "C"}) == pytest.approx(2.0)
        assert rho(q, {"A", "C"}) == 2

    def test_uncoverable_variable_raises(self):
        q = parse_query("Q(A) = R(A, B)")
        with pytest.raises(ValueError):
            rho_star(q, {"Z"})
        with pytest.raises(ValueError):
            rho(q, {"Z"})

    def test_fractional_weights_are_a_cover(self):
        q = parse_query("Q(A, C) = R(A, B), S(B, C)")
        value, weights = fractional_edge_cover(q.atoms, {"A", "B", "C"})
        assert value == pytest.approx(2.0)
        for variable in ("A", "B", "C"):
            covered = sum(w for a, w in weights.items() if variable in a.variables)
            assert covered >= 1.0 - 1e-6

    def test_integral_cover_returns_chosen_atoms(self):
        q = parse_query("Q(A, C) = R(A, B), S(B, C)")
        size, chosen = integral_edge_cover(q.atoms, {"A", "C"})
        assert size == 2
        assert {a.relation for a in chosen} == {"R", "S"}

    def test_lemma_30_on_paper_queries(self):
        """ρ* = ρ for hierarchical queries (Lemma 30), on several variable sets."""
        catalogue = [
            "Q(A, C) = R(A, B), S(B, C)",
            "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)",
            "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)",
            "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",
        ]
        for text in catalogue:
            q = parse_query(text)
            variable_sets = [q.free_variables, q.variables, q.bound_variables]
            for variables in variable_sets:
                if not variables:
                    continue
                assert rho_star(q, variables) == pytest.approx(rho(q, variables))

    def test_fractional_can_beat_integral_on_non_hierarchical(self):
        """The triangle query has ρ* = 3/2 < ρ = 2 — showing the LP is real."""
        q = parse_query("Q(A, B, C) = R(A, B), S(B, C), T(C, A)")
        assert rho_star(q, {"A", "B", "C"}) == pytest.approx(1.5)
        assert rho(q, {"A", "B", "C"}) == 2


class TestStaticWidth:
    @pytest.mark.parametrize(
        "text,expected",
        [
            # Example 28: w = 2 (preprocessing O(N^{1+ε}))
            ("Q(A, C) = R(A, B), S(B, C)", 2.0),
            # Example 29 / free-connex queries: w = 1 (Proposition 3)
            ("Q(A) = R(A, B), S(B)", 1.0),
            ("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)", 1.0),
            ("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)", 1.0),
            # Example 19: preprocessing O(N^{1+2ε}) -> w = 3
            ("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)", 3.0),
            # star query with 3 branches all free below the bound centre
            ("Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)", 3.0),
            # q-hierarchical queries
            ("Q(A, B) = R(A, B), S(A)", 1.0),
            ("Q() = R(A, B), S(B)", 1.0),
        ],
    )
    def test_static_width(self, text, expected):
        assert static_width(parse_query(text)) == pytest.approx(expected)

    def test_profile_identifies_expensive_variable(self):
        profile = static_width_profile(parse_query("Q(A, C) = R(A, B), S(B, C)"))
        assert profile["B"] == pytest.approx(2.0)
        assert max(profile.values()) == pytest.approx(2.0)


class TestDynamicWidth:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("Q(A, C) = R(A, B), S(B, C)", 1.0),
            ("Q(A) = R(A, B), S(B)", 1.0),
            ("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)", 1.0),
            ("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)", 3.0),
            ("Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)", 2.0),
            ("Q(A, B) = R(A, B), S(A)", 0.0),
            ("Q() = R(A, B), S(B)", 0.0),
        ],
    )
    def test_dynamic_width(self, text, expected):
        assert dynamic_width(parse_query(text)) == pytest.approx(expected)

    def test_profile_contains_variable_atom_pairs(self):
        profile = dynamic_width_profile(parse_query("Q(A, C) = R(A, B), S(B, C)"))
        assert ("B", "R") in profile and ("B", "S") in profile
        assert max(profile.values()) == pytest.approx(1.0)
