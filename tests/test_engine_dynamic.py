"""Integration tests: dynamic maintenance equivalence with naive evaluation.

Theorem 4's algorithmic content is that the view trees stay equivalent to the
query result under arbitrary sequences of single-tuple updates; these tests
replay insert/delete streams against the engine and a shadow database and
compare after every few updates, across queries, ε values, and skew patterns,
including the rebalancing corner cases.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DynamicEngine, HierarchicalEngine, Update, UpdateStream
from repro.engine import evaluate_query_naive
from repro.exceptions import RejectedUpdateError, ReproError
from repro.query import parse_query
from repro.workloads import (
    growth_stream,
    insert_stream_from_database,
    mixed_stream,
    skew_shift_stream,
)
from tests.conftest import PAPER_QUERIES, random_database, schemas_for

EPSILONS = [0.0, 0.5, 1.0]


def replay_and_check(text, database, stream, epsilon, check_every=7, **engine_kwargs):
    """Replay a stream on the engine and a shadow copy, comparing periodically."""
    query = parse_query(text)
    engine = HierarchicalEngine(text, epsilon=epsilon, mode="dynamic", **engine_kwargs)
    engine.load(database)
    shadow = database.copy()
    for index, update in enumerate(stream):
        engine.apply(update)
        shadow.relation(update.relation).apply_delta(update.tuple, update.multiplicity)
        if index % check_every == 0:
            assert engine.result() == evaluate_query_naive(query, shadow).as_dict(), (
                f"divergence at update {index} for ε={epsilon}"
            )
    assert engine.result() == evaluate_query_naive(query, shadow).as_dict()
    return engine


class TestDynamicEquivalence:
    @pytest.mark.parametrize(
        "name", ["path", "semijoin", "example18", "star2", "boolean", "qhier"]
    )
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_mixed_streams_match_naive(self, name, epsilon):
        text = PAPER_QUERIES[name]
        database = random_database(schemas_for(text), tuples_per_relation=20, seed=3)
        stream = mixed_stream(database, 60, delete_fraction=0.3, domain=6, seed=11)
        replay_and_check(text, database, stream, epsilon)

    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
    def test_example19_under_updates(self, epsilon):
        text = PAPER_QUERIES["example19"]
        database = random_database(schemas_for(text), tuples_per_relation=15, seed=5)
        stream = mixed_stream(database, 40, delete_fraction=0.25, domain=5, seed=13)
        replay_and_check(text, database, stream, epsilon, check_every=5)

    def test_preprocessing_from_empty_database_by_inserts(self):
        """The paper notes preprocessing ≡ N single-tuple inserts into ∅."""
        text = PAPER_QUERIES["path"]
        full = random_database(schemas_for(text), tuples_per_relation=40, seed=7)
        empty = Database.from_dict({name: (cols, []) for name, cols in schemas_for(text).items()})
        engine = DynamicEngine(text, epsilon=0.5).load(empty)
        engine.apply_stream(insert_stream_from_database(full, seed=1))
        truth = evaluate_query_naive(parse_query(text), full).as_dict()
        assert engine.result() == truth

    def test_insert_then_delete_everything(self):
        text = PAPER_QUERIES["path"]
        database = random_database(schemas_for(text), tuples_per_relation=25, seed=9)
        engine = DynamicEngine(text, epsilon=0.5).load(database)
        for relation in database:
            for tup, mult in list(relation.items()):
                engine.update(relation.name, tup, -mult)
        assert engine.result() == {}
        assert engine.database.size == 0

    def test_duplicate_tuple_multiplicities(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10)]), "S": (("B", "C"), [(10, 5)])}
        )
        engine = DynamicEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5).load(database)
        engine.update("R", (1, 10), 2)  # multiplicity becomes 3
        assert engine.result() == {(1, 5): 3}
        engine.update("S", (10, 5), 4)  # multiplicity becomes 5
        assert engine.result() == {(1, 5): 15}

    def test_rejected_delete_raises_and_preserves_state(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10)]), "S": (("B", "C"), [(10, 5)])}
        )
        engine = DynamicEngine("Q(A, C) = R(A, B), S(B, C)").load(database)
        with pytest.raises(RejectedUpdateError):
            engine.update("R", (1, 10), -2)
        assert engine.result() == {(1, 5): 1}

    def test_update_before_load_raises(self):
        engine = DynamicEngine("Q(A, C) = R(A, B), S(B, C)")
        with pytest.raises(ReproError):
            engine.update("R", (1, 2), 1)

    def test_update_to_unknown_relation_raises(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 10)]), "S": (("B", "C"), [(10, 5)])}
        )
        engine = DynamicEngine("Q(A, C) = R(A, B), S(B, C)").load(database)
        with pytest.raises(Exception):
            engine.update("Z", (1, 2), 1)

    def test_heavy_key_lifecycle(self):
        """Drive one join key light → heavy → light and stay correct throughout."""
        text = PAPER_QUERIES["path"]
        base = Database.from_dict(
            {
                "R": (("A", "B"), [(a, a % 3 + 10) for a in range(12)]),
                "S": (("B", "C"), [(b + 10, b) for b in range(3)]),
            }
        )
        stream = skew_shift_stream("R", 2, 40, hot_key=10, key_position=1, seed=3)
        engine = replay_and_check(text, base, stream, epsilon=0.5, check_every=4)
        stats = engine.rebalance_stats.as_dict()
        assert stats["updates"] == len(stream)

    def test_insert_and_delete_same_tuple_many_times(self):
        database = Database.from_dict(
            {"R": (("A", "B"), []), "S": (("B", "C"), [(0, 1)])}
        )
        engine = DynamicEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5).load(database)
        for _ in range(10):
            engine.update("R", (5, 0), 1)
            assert engine.result() == {(5, 1): 1}
            engine.update("R", (5, 0), -1)
            assert engine.result() == {}

    @pytest.mark.parametrize("enable_rebalancing", [True, False])
    def test_rebalancing_toggle_does_not_change_results(self, enable_rebalancing):
        text = PAPER_QUERIES["path"]
        database = random_database(schemas_for(text), tuples_per_relation=20, seed=21)
        stream = mixed_stream(database, 50, seed=22, domain=5)
        replay_and_check(
            text, database, stream, 0.5, enable_rebalancing=enable_rebalancing
        )

    def test_delta0_query_has_no_partitions(self):
        """q-hierarchical queries never partition (constant-time updates)."""
        text = PAPER_QUERIES["qhier"]
        database = random_database(schemas_for(text), tuples_per_relation=20, seed=2)
        engine = DynamicEngine(text).load(database)
        assert len(engine._skew_plan.partitions) == 0
        engine.update("R", (9, 9), 1)
        engine.update("S", (9,), 1)
        assert engine.result()[(9, 9)] == 1


class TestDynamicPropertyEquivalence:
    @given(
        initial=st.lists(
            st.tuples(st.sampled_from(["R", "S"]), st.integers(0, 3), st.integers(0, 3)),
            max_size=15,
        ),
        operations=st.lists(
            st.tuples(
                st.sampled_from(["R", "S"]),
                st.integers(0, 3),
                st.integers(0, 3),
                st.integers(-1, 2).filter(lambda m: m != 0),
            ),
            max_size=25,
        ),
        epsilon=st.sampled_from(EPSILONS),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_update_sequences_on_path_query(self, initial, operations, epsilon):
        """After any applicable update sequence, the engine equals naive evaluation."""
        text = "Q(A, C) = R(A, B), S(B, C)"
        database = Database.from_dict(
            {
                "R": (("A", "B"), [(a, b) for (n, a, b) in initial if n == "R"]),
                "S": (("B", "C"), [(a, b) for (n, a, b) in initial if n == "S"]),
            }
        )
        query = parse_query(text)
        engine = HierarchicalEngine(text, epsilon=epsilon, mode="dynamic").load(database)
        shadow = database.copy()
        for name, x, y, mult in operations:
            if shadow.relation(name).multiplicity((x, y)) + mult < 0:
                continue  # skip updates the engine would reject
            engine.update(name, (x, y), mult)
            shadow.relation(name).apply_delta((x, y), mult)
        assert engine.result() == evaluate_query_naive(query, shadow).as_dict()
