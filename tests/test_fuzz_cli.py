"""The tools/fuzz.py entry point: seeded run, stats line, repro replay."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_fuzz(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "fuzz.py"), *args],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )


def test_seeded_fuzz_budget_runs_clean():
    result = _run_fuzz("--seed", "0", "--budget", "3", "--max-cases", "25")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "cases clean" in result.stdout


def test_fuzz_case_sequence_is_deterministic_for_a_seed():
    first = _run_fuzz("--seed", "5", "--budget", "60", "--max-cases", "8")
    second = _run_fuzz("--seed", "5", "--budget", "60", "--max-cases", "8")
    assert first.returncode == second.returncode == 0
    # identical stats line modulo the elapsed-time field
    strip = lambda out: out.split(" in ")[0]  # noqa: E731
    assert strip(first.stdout) == strip(second.stdout)


def test_metamorphic_crash_kind_replays(tmp_path):
    """A repro whose kind is 'metamorphic:<prop>:crash' must replay cleanly.

    The crash suffix is appended by the failure normalizer; the replay path
    must parse the property name out of the middle segment instead of
    treating '<prop>:crash' as the property.
    """
    import json
    import sys as _sys

    _sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.conformance import ConformanceCase

    case = ConformanceCase(
        query="Q(A, C) = R(A, B), S(B, C)",
        relations={
            "R": (("A", "B"), [((1, 2), 1)]),
            "S": (("B", "C"), [((2, 3), 1)]),
        },
        updates=[("R", (4, 2), 1)],
        epsilons=(0.5,),
        checkpoints=1,
    )
    payload = json.loads(case.to_json())
    payload["failure"] = {
        "kind": "metamorphic:partition-union:crash",
        "engine": "ivm(eps=0.5)",
        "checkpoint": -1,
        "detail": "synthetic",
    }
    path = tmp_path / "case-crash.json"
    path.write_text(json.dumps(payload))
    result = _run_fuzz("--repro", str(path))
    # the healthy case no longer fails; the point is that the replay
    # neither crashes on the kind parsing nor rejects the property name
    assert result.returncode == 0, result.stdout + result.stderr
    assert "no longer fails" in result.stdout


def test_unknown_metamorphic_property_rejected_eagerly():
    import importlib.util
    import sys as _sys

    _sys.path.insert(0, str(REPO_ROOT / "src"))
    import pytest

    from repro.conformance import ConformanceCase

    spec = importlib.util.spec_from_file_location(
        "fuzz_cli_under_test", REPO_ROOT / "tools" / "fuzz.py"
    )
    fuzz_cli = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(fuzz_cli)

    case = ConformanceCase(
        query="Q(A, B) = R(A, B)",
        relations={"R": (("A", "B"), [])},
        updates=[],
        epsilons=(0.5,),
    )
    with pytest.raises(ValueError, match="unknown metamorphic property"):
        fuzz_cli.metamorphic_failure(case, "no-such-property")
