"""The tools/fuzz.py entry point: seeded run, stats line, repro replay."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_fuzz(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "fuzz.py"), *args],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )


def test_seeded_fuzz_budget_runs_clean():
    result = _run_fuzz("--seed", "0", "--budget", "3", "--max-cases", "25")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "cases clean" in result.stdout


def test_fuzz_case_sequence_is_deterministic_for_a_seed():
    first = _run_fuzz("--seed", "5", "--budget", "60", "--max-cases", "8")
    second = _run_fuzz("--seed", "5", "--budget", "60", "--max-cases", "8")
    assert first.returncode == second.returncode == 0
    # identical stats line modulo the elapsed-time field
    strip = lambda out: out.split(" in ")[0]  # noqa: E731
    assert strip(first.stdout) == strip(second.stdout)
