"""Integration tests: static evaluation equivalence with naive evaluation.

Theorem 2's algorithmic content is that for any ε the skew-aware view trees
encode exactly the query result; these tests check that equivalence across
the paper's example queries, all ε corners, skewed and uniform data, and
randomly generated databases (property-based).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, HierarchicalEngine, StaticEngine
from repro.engine import evaluate_query_naive
from repro.exceptions import UnsupportedQueryError
from repro.query import parse_query
from repro.workloads import matmul_database, expected_product_support, path_query_database
from tests.conftest import (
    PAPER_QUERIES,
    assert_engine_matches_naive,
    random_database,
    schemas_for,
)

EPSILONS = [0.0, 0.5, 1.0]


class TestStaticEquivalence:
    @pytest.mark.parametrize("name,text", sorted(PAPER_QUERIES.items()))
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_paper_queries_match_naive(self, name, text, epsilon):
        database = random_database(schemas_for(text), tuples_per_relation=25, seed=hash(name) % 1000)
        assert_engine_matches_naive(text, database, epsilon=epsilon, mode="static")

    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_skewed_path_database(self, epsilon, path_database):
        assert_engine_matches_naive(
            "Q(A, C) = R(A, B), S(B, C)", path_database, epsilon=epsilon, mode="static"
        )

    def test_empty_database(self):
        database = Database.from_dict({"R": (("A", "B"), []), "S": (("B", "C"), [])})
        engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)").load(database)
        assert engine.result() == {}

    def test_zipf_workload(self):
        database = path_query_database(300, skew=1.2, seed=5)
        assert_engine_matches_naive(
            "Q(A, C) = R(A, B), S(B, C)", database, epsilon=0.5, mode="static"
        )

    def test_matrix_multiplication_support(self):
        """Example 28: the result support equals the Boolean matrix product."""
        database, left, right = matmul_database(12, density=0.3, seed=2)
        engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5).load(database)
        assert set(engine.result()) == expected_product_support(left, right)

    def test_static_engine_rejects_updates(self):
        database = Database.from_dict({"R": (("A", "B"), [(1, 2)]), "S": (("B", "C"), [])})
        engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)").load(database)
        with pytest.raises(UnsupportedQueryError):
            engine.update("R", (3, 4), 1)

    def test_threshold_follows_epsilon(self):
        database = path_query_database(100, seed=1)
        low = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.0).load(database)
        high = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=1.0).load(database)
        assert low.threshold == pytest.approx(1.0)
        assert high.threshold == pytest.approx(float(database.size))

    def test_view_size_grows_with_epsilon_on_skewed_data(self):
        """Higher ε materializes more of the result (light cases cover more keys)."""
        database = path_query_database(400, skew=0.8, seed=3)
        sizes = []
        for epsilon in (0.0, 1.0):
            engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=epsilon).load(database)
            sizes.append(engine.view_size())
        assert sizes[0] <= sizes[1]

    def test_original_database_not_mutated_by_default(self):
        database = Database.from_dict(
            {"R": (("A", "B"), [(1, 2)]), "S": (("B", "C"), [(2, 3)])}
        )
        before = {name: database.relation(name).as_dict() for name in database.names()}
        StaticEngine("Q(A, C) = R(A, B), S(B, C)").load(database)
        after = {name: database.relation(name).as_dict() for name in database.names()}
        assert before == after


# ----------------------------------------------------------------------
# property-based equivalence on random databases
# ----------------------------------------------------------------------
def _rows(arity, max_size=25):
    return st.lists(
        st.tuples(*[st.integers(0, 4) for _ in range(arity)]), max_size=max_size
    )


class TestStaticPropertyEquivalence:
    @given(r_rows=_rows(2), s_rows=_rows(2), epsilon=st.sampled_from(EPSILONS))
    @settings(max_examples=40, deadline=None)
    def test_path_query(self, r_rows, s_rows, epsilon):
        database = Database.from_dict(
            {"R": (("A", "B"), r_rows), "S": (("B", "C"), s_rows)}
        )
        text = "Q(A, C) = R(A, B), S(B, C)"
        truth = evaluate_query_naive(parse_query(text), database).as_dict()
        engine = HierarchicalEngine(text, epsilon=epsilon, mode="static").load(database)
        assert engine.result() == truth

    @given(
        r_rows=_rows(3, 20),
        s_rows=_rows(3, 20),
        t_rows=_rows(2, 20),
        epsilon=st.sampled_from(EPSILONS),
    )
    @settings(max_examples=25, deadline=None)
    def test_example18_query(self, r_rows, s_rows, t_rows, epsilon):
        database = Database.from_dict(
            {
                "R": (("A", "B", "C"), r_rows),
                "S": (("A", "B", "D"), s_rows),
                "T": (("A", "E"), t_rows),
            }
        )
        text = "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"
        truth = evaluate_query_naive(parse_query(text), database).as_dict()
        engine = HierarchicalEngine(text, epsilon=epsilon, mode="static").load(database)
        assert engine.result() == truth

    @given(r_rows=_rows(2), s_rows=_rows(1), epsilon=st.sampled_from(EPSILONS))
    @settings(max_examples=40, deadline=None)
    def test_semijoin_query(self, r_rows, s_rows, epsilon):
        database = Database.from_dict({"R": (("A", "B"), r_rows), "S": (("B",), s_rows)})
        text = "Q(A) = R(A, B), S(B)"
        truth = evaluate_query_naive(parse_query(text), database).as_dict()
        engine = HierarchicalEngine(text, epsilon=epsilon, mode="static").load(database)
        assert engine.result() == truth
