"""The random query generator and its classification round-trips."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import (
    check_query_conformance,
    random_labeled_query,
    random_nonhierarchical_query,
)
from repro.conformance.queries import HEAD_MODES
from repro.query.classes import classify, is_hierarchical, is_q_hierarchical
from repro.query.parser import parse_query


def test_hierarchical_generator_round_trips_over_many_seeds():
    for seed in range(60):
        labeled = random_labeled_query(random.Random(seed))
        assert is_hierarchical(labeled.query)
        check_query_conformance(labeled)


def test_nonhierarchical_generator_round_trips_over_many_seeds():
    for seed in range(30):
        labeled = random_nonhierarchical_query(random.Random(seed))
        assert not is_hierarchical(labeled.query)
        check_query_conformance(labeled)


def test_closed_head_mode_guarantees_q_hierarchical():
    for seed in range(40):
        labeled = random_labeled_query(random.Random(seed), head_mode="closed")
        assert labeled.q_hierarchical is True
        assert is_q_hierarchical(labeled.query)


@pytest.mark.parametrize("mode", HEAD_MODES)
def test_every_head_mode_is_reachable_and_conformant(mode):
    for seed in range(10):
        labeled = random_labeled_query(random.Random(seed), head_mode=mode)
        assert labeled.head_mode == mode
        check_query_conformance(labeled)


def test_generator_emits_boolean_full_and_disconnected_shapes():
    seen_boolean = seen_full = seen_disconnected = False
    for seed in range(200):
        query = random_labeled_query(random.Random(seed)).query
        seen_boolean = seen_boolean or query.is_boolean
        seen_full = seen_full or (query.is_full and not query.is_boolean)
        seen_disconnected = seen_disconnected or len(query.connected_components()) > 1
        if seen_boolean and seen_full and seen_disconnected:
            break
    assert seen_boolean and seen_full and seen_disconnected


# ----------------------------------------------------------------------
# satellite: parse(str(query)) == query as a Hypothesis property
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1), planted=st.booleans())
def test_parser_round_trip_property(seed, planted):
    rng = random.Random(seed)
    labeled = (
        random_nonhierarchical_query(rng) if planted else random_labeled_query(rng)
    )
    query = labeled.query
    reparsed = parse_query(str(query))
    assert reparsed == query
    assert str(reparsed) == str(query)
    # classification is purely syntactic, so it must survive the round-trip
    assert classify(reparsed) == classify(query)
