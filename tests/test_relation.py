"""Unit and property tests for relations and secondary indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Index, Relation
from repro.exceptions import RejectedUpdateError, SchemaError


class TestRelationBasics:
    def test_empty_relation(self):
        relation = Relation("R", ("A", "B"))
        assert len(relation) == 0
        assert relation.multiplicity((1, 2)) == 0
        assert (1, 2) not in relation

    def test_insert_and_lookup(self):
        relation = Relation("R", ("A", "B"))
        relation.insert((1, 2))
        relation.insert((1, 2), 2)
        assert relation.multiplicity((1, 2)) == 3
        assert len(relation) == 1
        assert relation.total_multiplicity() == 3

    def test_delete_to_zero_removes_tuple(self):
        relation = Relation("R", ("A",))
        relation.insert((1,), 2)
        relation.delete((1,), 2)
        assert (1,) not in relation
        assert len(relation) == 0

    def test_over_delete_is_rejected(self):
        relation = Relation("R", ("A",))
        relation.insert((1,), 1)
        with pytest.raises(RejectedUpdateError):
            relation.delete((1,), 2)
        # the failed delete must not change the state
        assert relation.multiplicity((1,)) == 1

    def test_delete_absent_tuple_is_rejected(self):
        relation = Relation("R", ("A",))
        with pytest.raises(RejectedUpdateError):
            relation.delete((5,))

    def test_arity_mismatch_raises(self):
        relation = Relation("R", ("A", "B"))
        with pytest.raises(SchemaError):
            relation.insert((1,))

    def test_constructor_with_tuples(self):
        relation = Relation("R", ("A",), {(1,): 2, (2,): 1})
        assert relation.multiplicity((1,)) == 2
        assert len(relation) == 2

    def test_set_multiplicity(self):
        relation = Relation("R", ("A",))
        relation.set_multiplicity((1,), 5)
        assert relation.multiplicity((1,)) == 5
        relation.set_multiplicity((1,), 0)
        assert (1,) not in relation

    def test_copy_is_independent(self):
        relation = Relation("R", ("A",), {(1,): 1})
        clone = relation.copy()
        clone.insert((2,))
        assert (2,) not in relation
        assert clone.multiplicity((1,)) == 1

    def test_merge(self):
        left = Relation("R", ("A",), {(1,): 1, (2,): 2})
        right = Relation("R", ("A",), {(2,): 1, (3,): 4})
        left.merge(right)
        assert left.as_dict() == {(1,): 1, (2,): 3, (3,): 4}

    def test_merge_schema_mismatch(self):
        left = Relation("R", ("A",))
        right = Relation("S", ("A", "B"))
        with pytest.raises(SchemaError):
            left.merge(right)

    def test_project_sums_multiplicities(self):
        relation = Relation("R", ("A", "B"), {(1, 2): 1, (1, 3): 2})
        projected = relation.project(("A",))
        assert projected.as_dict() == {(1,): 3}

    def test_clear(self):
        relation = Relation("R", ("A",), {(1,): 1})
        relation.ensure_index(("A",))
        relation.clear()
        assert len(relation) == 0
        assert relation.slice_size(("A",), (1,)) == 0


class TestIndexes:
    def make_relation(self):
        relation = Relation("R", ("A", "B", "C"))
        for a in range(3):
            for b in range(2):
                relation.insert((a, b, a + b))
        return relation

    def test_slice_returns_matching_tuples(self):
        relation = self.make_relation()
        rows = set(relation.slice(("A",), (1,)))
        assert rows == {(1, 0, 1), (1, 1, 2)}

    def test_slice_size_constant_time_semantics(self):
        relation = self.make_relation()
        assert relation.slice_size(("A",), (0,)) == 2
        assert relation.slice_size(("A",), (9,)) == 0

    def test_distinct_keys(self):
        relation = self.make_relation()
        assert set(relation.distinct_keys(("B",))) == {(0,), (1,)}

    def test_contains_key(self):
        relation = self.make_relation()
        assert relation.contains_key(("A", "B"), (2, 1))
        assert not relation.contains_key(("A", "B"), (2, 5))

    def test_index_maintained_under_updates(self):
        relation = self.make_relation()
        relation.ensure_index(("A",))
        relation.insert((7, 7, 7))
        assert relation.slice_size(("A",), (7,)) == 1
        relation.delete((7, 7, 7))
        assert relation.slice_size(("A",), (7,)) == 0

    def test_index_created_after_data_is_consistent(self):
        relation = self.make_relation()
        assert relation.slice_size(("C",), (1,)) == 2

    def test_index_key_normalisation(self):
        relation = self.make_relation()
        # requesting (B, A) or (A, B) must address the same index
        relation.ensure_index(("B", "A"))
        assert relation.has_index(("A", "B"))

    def test_index_on_non_subset_raises(self):
        relation = self.make_relation()
        with pytest.raises(SchemaError):
            relation.ensure_index(("Z",))

    def test_index_class_directly(self):
        index = Index(("A", "B"), ("B",))
        index.add((1, 2))
        index.add((3, 2))
        assert set(index.group((2,))) == {(1, 2), (3, 2)}
        assert index.group_size((2,)) == 2
        index.remove((1, 2))
        assert index.group_size((2,)) == 1
        index.remove((3, 2))
        assert not index.contains_key((2,))
        assert index.num_keys() == 0


@st.composite
def _update_sequences(draw):
    """Sequences of (tuple, delta) pairs with bounded domains."""
    operations = draw(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 3), st.integers(0, 3)),
                st.integers(-2, 3).filter(lambda d: d != 0),
            ),
            max_size=40,
        )
    )
    return operations


class TestRelationProperties:
    @given(_update_sequences())
    @settings(max_examples=60, deadline=None)
    def test_relation_agrees_with_reference_counter(self, operations):
        """The relation behaves like a plain dict counter with rejection."""
        relation = Relation("R", ("A", "B"))
        relation.ensure_index(("A",))
        reference = {}
        for tup, delta in operations:
            expected = reference.get(tup, 0) + delta
            if expected < 0:
                with pytest.raises(RejectedUpdateError):
                    relation.apply_delta(tup, delta)
                continue
            relation.apply_delta(tup, delta)
            if expected == 0:
                reference.pop(tup, None)
            else:
                reference[tup] = expected
        assert relation.as_dict() == reference
        # the index must agree with a recomputed grouping
        for key in {t[:1] for t in reference}:
            expected_group = {t for t in reference if t[:1] == key}
            assert set(relation.slice(("A",), key)) == expected_group

    @given(_update_sequences())
    @settings(max_examples=30, deadline=None)
    def test_total_multiplicity_matches_reference(self, operations):
        relation = Relation("R", ("A", "B"))
        reference = {}
        for tup, delta in operations:
            if reference.get(tup, 0) + delta < 0:
                continue
            relation.apply_delta(tup, delta)
            reference[tup] = reference.get(tup, 0) + delta
        assert relation.total_multiplicity() == sum(v for v in reference.values())
