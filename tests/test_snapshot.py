"""Versioned snapshots: isolation vs a replayed oracle, staleness, lifecycle."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, HierarchicalEngine, StaticEngine, Update
from repro.baselines import NaiveRecomputeEngine
from repro.conformance import (
    DataProfile,
    check_snapshot_isolation,
    random_database,
    random_labeled_query,
    random_update_stream,
)
from repro.exceptions import ReproError, StaleStateError
from repro.sharding import ShardedEngine

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"


def path_db(seed: int = 5, size: int = 60, domain: int = 12) -> Database:
    rng = random.Random(seed)
    return Database.from_dict(
        {
            "R": (
                ("A", "B"),
                [(rng.randrange(domain * 3), rng.randrange(domain)) for _ in range(size)],
            ),
            "S": (
                ("B", "C"),
                [(rng.randrange(domain), rng.randrange(domain * 3)) for _ in range(size)],
            ),
        }
    )


def random_updates(seed: int, count: int, domain: int = 12):
    rng = random.Random(seed)
    updates = []
    inserted = []
    for index in range(count):
        if inserted and index % 3 == 2:
            relation, tup = inserted.pop(rng.randrange(len(inserted)))
            updates.append(Update(relation, tup, -1))
        elif index % 2 == 0:
            tup = (rng.randrange(domain * 3), rng.randrange(domain))
            inserted.append(("R", tup))
            updates.append(Update("R", tup, 1))
        else:
            tup = (rng.randrange(domain), rng.randrange(domain * 3))
            inserted.append(("S", tup))
            updates.append(Update("S", tup, 1))
    return updates


class TestSnapshotBasics:
    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
    def test_snapshot_is_frozen_at_capture(self, epsilon):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=epsilon)
        engine.load(path_db())
        oracle = NaiveRecomputeEngine(PATH_QUERY).load(path_db())
        captures = []
        for index, update in enumerate(random_updates(seed=6, count=40)):
            engine.apply(update)
            oracle.apply(update)
            if index % 10 == 0:
                captures.append(
                    (engine.snapshot(), dict(oracle.result()), list(engine.enumerate()))
                )
        for snapshot, truth, live_sequence in captures:
            assert dict(snapshot.result()) == truth
            assert list(snapshot.enumerate()) == live_sequence
            for tup, mult in list(truth.items())[:3]:
                assert snapshot.lookup(tup) == mult
            assert snapshot.lookup((object(), object())) == 0

    def test_version_counts_ingestion_events(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db())
        assert engine.version == 0
        assert engine.snapshot().version == 0
        engine.update("R", (1, 2))
        assert engine.version == 1
        engine.apply_batch(random_updates(seed=1, count=6))
        assert engine.version == 2
        assert engine.snapshot().version == 2

    def test_lookup_rejects_wrong_arity(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db())
        with pytest.raises(ValueError):
            engine.snapshot().lookup((1,))

    def test_snapshot_requires_load(self):
        engine = HierarchicalEngine(PATH_QUERY)
        with pytest.raises(ReproError):
            engine.snapshot()

    def test_static_engine_snapshot(self):
        engine = StaticEngine(PATH_QUERY).load(path_db())
        snapshot = engine.snapshot()
        assert snapshot.version == 0
        assert dict(snapshot.result()) == dict(engine.result())

    def test_closed_snapshot_stops_tracking(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db())
        truth = dict(engine.result())
        snapshot = engine.snapshot()
        held = engine.snapshot()
        snapshot.close()
        for update in random_updates(seed=9, count=20):
            engine.apply(update)
        # the still-open capture is unaffected by its sibling's close()
        assert dict(held.result()) == truth

    def test_count_distinct_and_iter(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db())
        snapshot = engine.snapshot()
        assert snapshot.count_distinct() == engine.count_distinct()
        assert dict(iter(snapshot)) == dict(engine.result())


class TestSnapshotAcrossRebalances:
    def test_major_rebalance_does_not_leak_into_snapshot(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5)
        engine.load(path_db(size=30))
        truth = dict(engine.result())
        sequence = list(engine.enumerate())
        snapshot = engine.snapshot()
        rng = random.Random(3)
        # quadruple the database size: the threshold base must double at
        # least once, recomputing every view under the snapshot
        for _ in range(150):
            engine.update("R", (rng.randrange(200), rng.randrange(12)), 1)
        assert engine.rebalance_stats.major_rebalances >= 1
        assert dict(snapshot.result()) == truth
        assert list(snapshot.enumerate()) == sequence

    def test_minor_rebalance_does_not_leak_into_snapshot(self):
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5, enable_rebalancing=True)
        engine.load(path_db(size=60))
        snapshot = engine.snapshot()
        truth = dict(snapshot.result())
        # hammer one join key across the heavy/light border repeatedly:
        # threshold is M^0.5 = (2*120+1)^0.5 ~ 15.5, so degree 30 crosses
        # the loose 1.5*theta bound upward and degree ~5 the theta/2 bound
        # back down
        hot = 3
        for round_ in range(4):
            for i in range(28):
                engine.update("R", (1000 + i, hot), 1)
            for i in range(28):
                engine.update("R", (1000 + i, hot), -1)
        assert engine.rebalance_stats.minor_rebalances >= 1
        assert dict(snapshot.result()) == truth

    def test_snapshot_taken_after_updates_sees_them(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db())
        engine.update("R", (999, 1), 1)
        engine.update("S", (1, 888), 1)
        snapshot = engine.snapshot()
        assert snapshot.lookup((999, 888)) >= 1


profiles = st.builds(
    DataProfile,
    tuples_per_relation=st.integers(min_value=4, max_value=16),
    domain=st.integers(min_value=3, max_value=8),
    skew=st.sampled_from((0.0, 0.8, 2.0)),
    heavy_fraction=st.sampled_from((0.0, 0.4)),
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestSnapshotPropertyBased:
    @settings(max_examples=12, deadline=None)
    @given(seed=seeds, profile=profiles, epsilon=st.sampled_from((0.0, 0.5, 1.0)))
    def test_snapshot_equals_oracle_replayed_to_version(self, seed, profile, epsilon):
        """For random workloads, ``snapshot()`` at version v enumerates what a
        fresh naive oracle replayed-to-v produces — even after further
        interleaved batches (rebalances included) hit the live engine."""
        rng = random.Random(seed)
        labeled = random_labeled_query(rng)
        database = random_database(labeled.query, profile, seed=rng.randrange(1 << 30))
        stream = random_update_stream(
            database, 24, profile, delete_fraction=0.4, seed=rng.randrange(1 << 30)
        )
        check_snapshot_isolation(
            str(labeled.query), epsilon, database, list(stream), shard_counts=(1, 2, 4)
        )

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_snapshot_survives_forced_growth(self, seed):
        """Interleaved insert-heavy batches that force doubling rebalances."""
        rng = random.Random(seed)
        engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5)
        engine.load(path_db(seed=seed % 100, size=20))
        oracle = NaiveRecomputeEngine(PATH_QUERY).load(path_db(seed=seed % 100, size=20))
        captures = []
        for round_ in range(4):
            batch = [
                Update("R", (rng.randrange(500), rng.randrange(10)), 1)
                for _ in range(30)
            ]
            engine.apply_batch(batch)
            oracle.apply_batch(batch)
            captures.append((engine.snapshot(), dict(oracle.result())))
        assert engine.rebalance_stats.major_rebalances >= 1
        for snapshot, truth in captures:
            assert dict(snapshot.result()) == truth


class TestStaleAfterLoad:
    """Regression: reads must raise instead of reflecting a replaced database."""

    def test_single_engine_snapshot_goes_stale(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db(seed=1))
        snapshot = engine.snapshot()
        engine.load(path_db(seed=2))
        with pytest.raises(StaleStateError):
            snapshot.result()
        with pytest.raises(StaleStateError):
            snapshot.lookup((1, 2))
        with pytest.raises(StaleStateError):
            list(snapshot.enumerate())

    def test_single_engine_enumerator_goes_stale(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db(seed=1))
        enumerator = engine.enumerate()
        engine.load(path_db(seed=2))
        with pytest.raises(StaleStateError):
            list(enumerator)

    def test_single_engine_enumerator_goes_stale_mid_iteration(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db(seed=1))
        iterator = iter(engine.enumerate())
        next(iterator)
        engine.load(path_db(seed=2))
        with pytest.raises(StaleStateError):
            for _ in iterator:
                pass

    def test_stale_error_is_a_repro_error(self):
        assert issubclass(StaleStateError, ReproError)

    def test_fresh_reads_after_reload_work(self):
        engine = HierarchicalEngine(PATH_QUERY).load(path_db(seed=1))
        engine.load(path_db(seed=2))
        assert dict(engine.snapshot().result()) == dict(engine.result())

    def test_sharded_snapshot_goes_stale(self):
        engine = ShardedEngine(PATH_QUERY, shards=3, executor="serial")
        engine.load(path_db(seed=1))
        snapshot = engine.snapshot()
        engine.load(path_db(seed=2))
        with pytest.raises(StaleStateError):
            snapshot.result()
        with pytest.raises(StaleStateError):
            snapshot.lookup((1, 2))
        snapshot.close()  # idempotent even though the old executor is gone
        engine.close()

    def test_sharded_enumerator_goes_stale(self):
        engine = ShardedEngine(PATH_QUERY, shards=3, executor="serial")
        engine.load(path_db(seed=1))
        enumerator = engine.enumerate()
        engine.load(path_db(seed=2))
        with pytest.raises(StaleStateError):
            list(enumerator)
        engine.close()

    def test_sharded_closed_snapshot_rejects_reads(self):
        engine = ShardedEngine(PATH_QUERY, shards=2, executor="serial")
        engine.load(path_db(seed=1))
        snapshot = engine.snapshot()
        snapshot.close()
        with pytest.raises(StaleStateError):
            snapshot.result()
        engine.close()


class TestShardedSnapshots:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sharded_snapshot_matches_prefix(self, executor):
        engine = ShardedEngine(PATH_QUERY, shards=3, epsilon=0.5, executor=executor)
        engine.load(path_db(seed=4))
        single = HierarchicalEngine(PATH_QUERY, epsilon=0.5).load(path_db(seed=4))
        batches = [random_updates(seed=40 + i, count=10) for i in range(3)]
        captures = []
        for batch in batches:
            engine.apply_batch(batch)
            single.apply_batch(batch)
            captures.append((engine.snapshot(), list(engine.enumerate())))
        engine.apply_batch(random_updates(seed=99, count=10))
        for index, (snapshot, live_sequence) in enumerate(captures):
            assert list(snapshot.enumerate()) == live_sequence
            assert snapshot.version == index + 1
            assert len(snapshot.shard_versions) == 3
            snapshot.close()
        engine.close()

    def test_sharded_snapshot_lookup_sums_across_shards(self):
        engine = ShardedEngine(PATH_QUERY, shards=4, executor="serial")
        engine.load(path_db(seed=4))
        truth = dict(engine.result())
        snapshot = engine.snapshot()
        engine.apply_batch(random_updates(seed=41, count=12))
        for tup, mult in list(truth.items())[:4]:
            assert snapshot.lookup(tup) == mult
        assert snapshot.lookup((object(), object())) == 0
        snapshot.close()
        engine.close()
