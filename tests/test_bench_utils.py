"""Tests for the benchmark harness utilities (timing, fitting, reporting)."""

import math

import pytest

from repro import HierarchicalEngine
from repro.bench import (
    Measurement,
    compare_engines,
    fit_exponent,
    format_series,
    format_table,
    measure_enumeration_delay,
    measure_preprocessing,
    measure_update_stream,
    print_table,
    scaling_experiment,
    sweep_epsilon,
    theoretical_exponents,
    time_call,
    tradeoff_point,
)
from repro.baselines import NaiveRecomputeEngine
from repro.workloads import mixed_stream, path_query_database

PATH = "Q(A, C) = R(A, B), S(B, C)"


class TestMeasurement:
    def test_from_samples_statistics(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        m = Measurement.from_samples("x", samples)
        assert m.count == 4
        assert m.total == pytest.approx(10.0)
        assert m.mean == pytest.approx(2.5)
        assert m.median == pytest.approx(2.5)
        assert m.maximum == pytest.approx(4.0)
        assert m.p95 in samples

    def test_empty_samples(self):
        m = Measurement.from_samples("x", [])
        assert m.count == 0 and m.total == 0.0

    def test_as_dict_keys(self):
        m = Measurement.from_samples("x", [1.0])
        assert set(m.as_dict()) == {"count", "total", "mean", "median", "p95", "max"}


class TestFitting:
    def test_fit_recovers_known_exponent(self):
        sizes = [100, 200, 400, 800, 1600]
        values = [2e-6 * n ** 1.5 for n in sizes]
        fit = fit_exponent(sizes, values)
        assert fit.exponent == pytest.approx(1.5, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.matches(1.5)
        assert not fit.matches(0.0)

    def test_fit_constant_values_gives_zero_exponent(self):
        fit = fit_exponent([10, 100, 1000], [5.0, 5.0, 5.0])
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)

    def test_fit_handles_zero_values(self):
        fit = fit_exponent([10, 100], [0.0, 0.0])
        assert math.isfinite(fit.exponent)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_exponent([10], [1.0])

    def test_theoretical_exponents(self):
        theory = theoretical_exponents(static_width=2, dynamic_width=1, epsilon=0.5)
        assert theory == {"preprocessing": 1.5, "delay": 0.5, "update": 0.5}
        corner = theoretical_exponents(2, 1, 1.0)
        assert corner == {"preprocessing": 2.0, "delay": 0.0, "update": 1.0}


class TestReporting:
    def test_format_table_alignment_and_columns(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 20, "c": "x"}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        for column in ("a", "b", "c"):
            assert column in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_print_table_returns_text(self, capsys):
        text = print_table([{"a": 1}], title="t")
        captured = capsys.readouterr()
        assert "a" in text and "a" in captured.out

    def test_format_series(self):
        text = format_series("curve", [1, 2], [0.1, 0.2], x_name="N", y_name="time")
        assert "curve" in text and "N" in text and "time" in text

    def test_format_value_styles(self):
        text = format_table([{"small": 1e-7, "big": 123456.0, "plain": 0.25}])
        assert "e-07" in text or "e-7" in text
        assert "0.2500" in text


class TestTimingHelpers:
    def test_time_call_is_nonnegative(self):
        assert time_call(lambda: sum(range(100))) >= 0.0

    def test_measure_preprocessing(self):
        db = path_query_database(100, seed=1)
        engine, seconds = measure_preprocessing(
            lambda: HierarchicalEngine(PATH, epsilon=0.5), db
        )
        assert seconds >= 0.0
        assert engine.result() is not None

    def test_measure_update_stream(self):
        db = path_query_database(100, seed=2)
        engine = HierarchicalEngine(PATH, epsilon=0.5).load(db)
        measurement = measure_update_stream(engine, mixed_stream(db, 20, seed=3))
        assert measurement.count == 20

    def test_measure_enumeration_delay_with_limit(self):
        db = path_query_database(150, seed=4)
        engine = HierarchicalEngine(PATH, epsilon=0.5).load(db)
        measurement, produced = measure_enumeration_delay(engine, limit=10)
        assert produced <= 10
        assert measurement.count >= produced


class TestExperimentDrivers:
    def test_tradeoff_point_row_shape(self):
        db = path_query_database(150, seed=5)
        _engine, point = tradeoff_point(
            PATH, db, 0.5, updates=mixed_stream(db, 15, seed=6), delay_limit=50
        )
        row = point.as_row()
        for key in ("epsilon", "N", "preprocess_s", "update_mean_s", "delay_max_s"):
            assert key in row

    def test_sweep_epsilon_lengths(self):
        db = path_query_database(120, seed=7)
        points = sweep_epsilon(PATH, db, [0.0, 1.0], delay_limit=50)
        assert [p.epsilon for p in points] == [0.0, 1.0]

    def test_scaling_experiment_outputs_fits_and_theory(self):
        result = scaling_experiment(
            PATH,
            lambda size: path_query_database(size, seed=8),
            sizes=[80, 160],
            epsilon=0.5,
            updates_factory=lambda db, size: mixed_stream(db, 10, seed=9),
            delay_limit=50,
        )
        assert set(result["fits"]) >= {"preprocessing", "delay", "update"}
        assert result["theory"]["preprocessing"] == pytest.approx(1.5)

    def test_compare_engines_rows(self):
        db = path_query_database(120, seed=10)
        rows = compare_engines(
            PATH,
            db,
            {
                "ivm": lambda: HierarchicalEngine(PATH, epsilon=0.5),
                "recompute": lambda: NaiveRecomputeEngine(PATH),
            },
            updates_factory=lambda: mixed_stream(db, 10, seed=11),
            delay_limit=50,
        )
        assert [row["engine"] for row in rows] == ["ivm", "recompute"]
        assert all("update_mean_s" in row for row in rows)
