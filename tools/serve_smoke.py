"""Networked-serving smoke test: one scripted client session, oracle-checked.

Boots an :class:`~repro.net.server.EngineTCPServer` on an ephemeral port
(fronting a dynamic engine on a small two-relation database), runs one
scripted :class:`~repro.net.client.EngineClient` session —

1. handshake (``ping``) and a paged snapshot enumeration,
2. one plain subscription plus two ring-aggregate subscriptions,
3. a burst of mixed insert/delete batches applied through the wire,
4. a one-shot aggregate read, a point lookup, and a ``/metrics`` scrape
   over plain HTTP —

and checks every served artifact against a
:class:`~repro.baselines.naive.NaiveRecomputeEngine` oracle: the paged
snapshot equals the oracle's state at capture, the subscription's pushed
deltas *replayed from the initial result* reproduce the oracle at every
version stamp, the final mirrored state equals the oracle's final state,
and every aggregate answer — the subscriptions' ring-folded mirrors and
the one-shot read — equals the one true fold
(:func:`repro.rings.spec.fold_result`) over the oracle's enumeration.
Exit status 0 on success; any divergence raises.

Wired into ``make serve-smoke`` (and thereby ``make test``/CI)::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import random
import sys
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.naive import NaiveRecomputeEngine  # noqa: E402
from repro.core.api import HierarchicalEngine  # noqa: E402
from repro.core.serving import EngineServer  # noqa: E402
from repro.data.database import Database  # noqa: E402
from repro.data.update import Update  # noqa: E402
from repro.net import EngineClient, ServerConfig, ServerThread  # noqa: E402
from repro.rings.spec import AggregateSpec, answer_map, fold_result  # noqa: E402

QUERY = "Q(A, C) = R(A, B), S(B, C)"
HEAD = ("A", "C")
DOMAIN = 10
BATCHES = 30
BATCH_SIZE = 8


def make_database(seed: int = 11, rows: int = 80) -> Database:
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    rng = random.Random(seed)
    for _ in range(rows):
        database.relation("R").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
        database.relation("S").apply_delta(
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)), 1
        )
    return database


def scripted_session() -> None:
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(make_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(make_database())
    serving = EngineServer(engine, mode="snapshot")
    with ServerThread(serving, ServerConfig()) as handle:
        with EngineClient("127.0.0.1", handle.port) as client:
            hello = client.ping()
            assert hello["query"] == str(engine.query), hello
            print(f"serve-smoke: connected to {hello['query']}")

            # 1. paged snapshot enumeration vs the oracle
            with client.open_snapshot() as snap:
                paged = snap.result(page_size=13)
                assert paged == oracle.result(), "paged snapshot diverged"
                if paged:
                    probe = next(iter(paged))
                    assert snap.lookup(probe) == paged[probe]
            print(f"serve-smoke: paged snapshot ok ({len(paged)} tuples)")

            # 2. subscribe, 3. drive mixed batches through the wire
            subscription = client.subscribe()
            initial_version = subscription.version
            initial_result = dict(subscription.result())
            assert initial_result == oracle.result(), "initial result diverged"

            # ring-aggregate subscriptions next to the plain one: the
            # server folds every commit per spec and pushes aggregate
            # deltas over the same push contract
            def agg_oracle(spec: AggregateSpec) -> dict:
                pairs = list(dict(oracle.result()).items())
                return answer_map(spec, fold_result(spec, HEAD, pairs))

            sum_spec = AggregateSpec("sum", "C", ("A",))
            count_spec = AggregateSpec("counting")
            sum_sub = client.subscribe_aggregate(sum_spec)
            count_sub = client.subscribe_aggregate(count_spec)
            assert sum_sub.answers() == agg_oracle(sum_spec), (
                "initial sum aggregate diverged"
            )
            assert count_sub.answers() == agg_oracle(count_spec), (
                "initial counting aggregate diverged"
            )

            rng = random.Random(77)
            inserted = []
            oracle_trajectory = {}
            final_version = initial_version
            for _ in range(BATCHES):
                batch = []
                for _ in range(BATCH_SIZE):
                    if inserted and rng.random() < 0.4:
                        relation, tup = inserted.pop(rng.randrange(len(inserted)))
                        batch.append(Update(relation, tup, -1))
                    else:
                        relation = rng.choice(("R", "S"))
                        tup = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
                        inserted.append((relation, tup))
                        batch.append(Update(relation, tup, 1))
                final_version = client.apply_batch(batch)
                for update in batch:
                    oracle.update(update.relation, update.tuple, update.multiplicity)
                oracle_trajectory[final_version] = oracle.result()

            assert subscription.wait_for_version(final_version, timeout=30.0), (
                f"subscription stuck at version {subscription.version} "
                f"< {final_version}"
            )
            assert subscription.result() == oracle.result(), (
                "subscription state diverged from the oracle"
            )

            # replay the pushed deltas from the initial result: the mirror
            # must pass through the oracle's state at every version stamp
            replay = dict(initial_result)
            checked = 0
            for kind, version, pairs in subscription.state.events:
                assert kind == "delta", f"unexpected {kind} push in smoke run"
                for tup, mult in pairs:
                    tup = tuple(tup)
                    updated = replay.get(tup, 0) + mult
                    if updated:
                        replay[tup] = updated
                    else:
                        replay.pop(tup, None)
                if version in oracle_trajectory:
                    assert replay == oracle_trajectory[version], (
                        f"pushed deltas diverged from oracle at version {version}"
                    )
                    checked += 1
            assert checked == BATCHES, f"only {checked}/{BATCHES} versions checked"
            print(
                f"serve-smoke: subscription ok — {BATCHES} pushed deltas "
                f"match the oracle at every version stamp"
            )

            # the aggregate mirrors, maintained purely from ring-folded
            # push frames, must land on the fold over the oracle's final
            # enumeration; a one-shot read checks a ring no subscription
            # maintains
            for agg_sub, spec, label in (
                (sum_sub, sum_spec, "sum"),
                (count_sub, count_spec, "counting"),
            ):
                assert agg_sub.wait_for_version(final_version, timeout=30.0), (
                    f"{label} aggregate subscription stuck at "
                    f"{agg_sub.version} < {final_version}"
                )
                assert agg_sub.answers() == agg_oracle(spec), (
                    f"{label} aggregate mirror diverged from the oracle fold"
                )
            max_spec = AggregateSpec("max", "C", ("A",))
            assert client.aggregate(max_spec) == agg_oracle(max_spec), (
                "one-shot max aggregate diverged from the oracle fold"
            )
            sum_sub.close()
            count_sub.close()
            print(
                "serve-smoke: aggregates ok — ring-folded mirrors and the "
                "one-shot read match the oracle fold"
            )

            # 4. point lookup + metrics over plain HTTP on the same port
            if oracle.result():
                probe = next(iter(oracle.result()))
                assert client.lookup(probe) == oracle.result()[probe]
            text = urllib.request.urlopen(
                f"http://127.0.0.1:{handle.port}/metrics", timeout=10
            ).read().decode("utf-8")
            for needle in (
                "repro_engine_version",
                "repro_serving_batches_applied",
                "repro_net_deltas_pushed",
                "repro_aggregate_reads_total",
                'repro_net_aggregate_deltas_pushed_total{ring="sum"}',
                'repro_net_aggregate_deltas_pushed_total{ring="counting"}',
            ):
                assert needle in text, f"{needle} missing from /metrics"
            stats = client.server_stats()
            assert stats["net"]["deltas_pushed"] >= BATCHES
            print(
                "serve-smoke: metrics ok "
                f"({len(text.splitlines())} exposition lines, "
                f"{stats['net']['deltas_pushed']} deltas pushed)"
            )
    engine.close()


def main() -> int:
    scripted_session()
    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
