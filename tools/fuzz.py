"""Seeded, time-boxed conformance fuzzer for the IVM^ε engine.

Drives the differential oracle and the metamorphic properties of
:mod:`repro.conformance` over randomly generated queries, databases, update
streams, and the registered scenario matrix::

    python tools/fuzz.py --seed 0 --budget 30          # the CI smoke budget
    python tools/fuzz.py --seed 7 --budget 600 -v      # a longer hunt
    python tools/fuzz.py --repro fuzz-failures/case-000042.json

Every case is derived deterministically from ``--seed`` and the case index,
so a failure reported for a seed reproduces with the same seed.  On the
first failure the case is shrunk to a minimal repro (delta-debugging over
updates, database tuples, and the ε grid, keeping the failure *kind*
stable) and written to ``--out`` as JSON; the process exits non-zero.

Case mix per index: ~45% differential runs on random hierarchical queries,
~15% on guaranteed non-hierarchical queries (baselines diffed against each
other, planner gate checked), ~18% metamorphic property checks, ~12%
differential runs on a scenario sampled from the workload matrix, and ~10%
kill-mid-batch crash-recovery runs: a durable engine is crashed at a
case-deterministic fault-injection point (WAL append, the torn half-write
window, the fsync gap, checkpoint write/fsync/rename, cleanup), recovered
from checkpoint + WAL, resumed from its durable version, and diffed —
result, version, and enumeration order — against the naive oracle and a
never-crashed durable twin.  ``recovery*`` repro files replay the same
crash point deterministically.

Differential runs put :class:`repro.sharding.ShardedEngine` under test at
shard counts {1, 2, 4, 7} next to the single engines and the baselines, and
the ``shard-merge`` metamorphic property asserts sharded == single directly
— so a shrunk repro JSON replays against both the sharded and unsharded
paths with one ``--repro`` invocation.  Every differential checkpoint also
captures an ``engine.snapshot()`` and diffs it against the oracle at that
version — re-checking the previous checkpoint's snapshot after further
segments mutate the engine — and the ``snapshot-isolation`` metamorphic
property asserts snapshot == fresh-replay-to-version for the single engine
and the sharded facade at shard counts {1, 2, 4}, so shrunk repros replay
snapshot reads too.  Live ε switching is fuzzed from two sides: every
differential run retunes its dynamic engines at one case-deterministic
checkpoint, and the ``retune-equivalence`` metamorphic property asserts
retune(ε₂) == fresh-engine-at-ε₂ (order included) at shard counts
{1, 2, 4}.  Elastic resharding is fuzzed the same two ways: every
differential run reshards its sharded runners at a second
case-deterministic checkpoint, and the ``reshard-equivalence`` metamorphic
property asserts reshard(k′) == fresh-fleet-at-k′ (order included, held
snapshots preserved) over the shard-count cycle {1, 2, 4, 7}.

Ring aggregates are fuzzed from both sides too: every differential
checkpoint diffs maintained, enumerate-and-fold, and snapshot aggregate
answers (a generic spec set plus each scenario's natural aggregates)
against the fold over the oracle's enumeration, and the
``aggregate-equivalence`` metamorphic property asserts aggregate ==
fold-over-oracle across the case's ε grid, shard counts {1, 2, 4}, a
mid-stream retune, and both relation-storage backends.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.conformance import (  # noqa: E402 - sys.path bootstrap above
    ConformanceCase,
    DataProfile,
    Mismatch,
    case_failure,
    crash_recovery_failure,
    check_aggregate_equivalence,
    check_batch_permutation_invariance,
    check_insert_delete_noop,
    check_partition_union,
    check_query_conformance,
    check_reshard_equivalence,
    check_retune_equivalence,
    check_shard_merge,
    check_snapshot_isolation,
    load_case,
    random_database,
    random_labeled_query,
    random_nonhierarchical_query,
    random_update_stream,
    shrink_case,
    write_repro,
)
from repro.core.api import HierarchicalEngine  # noqa: E402
from repro.workloads import get_scenario, scenario_names  # noqa: E402

EPSILON_GRIDS = ((0.0, 0.5, 1.0), (0.25, 0.75), (0.5,), (0.0, 1.0))
METAMORPHIC_PROPERTIES = (
    "insert-delete-noop",
    "batch-permutation",
    "partition-union",
    "shard-merge",
    "snapshot-isolation",
    "retune-equivalence",
    "reshard-equivalence",
    "aggregate-equivalence",
)

RETUNE_TARGETS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _random_profile(rng: random.Random) -> DataProfile:
    return DataProfile(
        tuples_per_relation=rng.randint(5, 30),
        domain=rng.randint(3, 10),
        skew=rng.choice((0.0, 0.8, 1.5, 2.5)),
        heavy_fraction=rng.choice((0.0, 0.0, 0.2, 0.5)),
    )


def _differential_case(rng: random.Random, hierarchical: bool) -> ConformanceCase:
    labeled = (
        random_labeled_query(rng) if hierarchical else random_nonhierarchical_query(rng)
    )
    check_query_conformance(labeled)  # query-layer round-trip is part of the fuzz
    profile = _random_profile(rng)
    database = random_database(labeled.query, profile, seed=rng.randrange(1 << 30))
    stream = random_update_stream(
        database,
        rng.randint(10, 60),
        profile,
        delete_fraction=rng.choice((0.0, 0.3, 0.5)),
        seed=rng.randrange(1 << 30),
    )
    return ConformanceCase.build(
        str(labeled.query),
        database,
        stream,
        epsilons=rng.choice(EPSILON_GRIDS),
        checkpoints=rng.randint(1, 5),
    )


def _scenario_case(rng: random.Random) -> ConformanceCase:
    scenario = get_scenario(rng.choice(scenario_names()))
    database = scenario.make_database(rng.randrange(1 << 16), 0.05)
    stream = scenario.make_stream(database, rng.randint(20, 60), rng.randrange(1 << 16))
    return ConformanceCase.build(
        scenario.query,
        database,
        stream,
        epsilons=(0.5,),
        checkpoints=2,
        aggregates=scenario.aggregates,
    )


def _metamorphic_case(rng: random.Random) -> ConformanceCase:
    labeled = random_labeled_query(rng)
    profile = _random_profile(rng)
    database = random_database(labeled.query, profile, seed=rng.randrange(1 << 30))
    stream = random_update_stream(
        database, rng.randint(10, 40), profile, seed=rng.randrange(1 << 30)
    )
    return ConformanceCase.build(
        str(labeled.query), database, stream, epsilons=(rng.choice((0.0, 0.5, 1.0)),)
    )


def metamorphic_failure(case: ConformanceCase, prop: str):
    """Run one metamorphic property on a case; normalize failures."""
    if prop not in METAMORPHIC_PROPERTIES:
        # reject bad property names eagerly, *outside* the try below — an
        # exception raised by the property itself (including a ValueError
        # such as merge_shards' out-of-order-source error) is a finding to
        # record and shrink, never something to re-raise
        raise ValueError(f"unknown metamorphic property {prop!r}")
    epsilon = case.epsilons[0] if case.epsilons else 0.5
    factory = lambda: HierarchicalEngine(case.query, epsilon=epsilon)  # noqa: E731
    database = case.database()
    updates = case.update_objects()
    try:
        if prop == "insert-delete-noop":
            check_insert_delete_noop(factory, database, updates)
        elif prop == "batch-permutation":
            check_batch_permutation_invariance(
                factory, database, updates, random.Random(0)
            )
        elif prop == "partition-union":
            check_partition_union(factory, database, updates, parts=3)
        elif prop == "shard-merge":
            check_shard_merge(case.query, epsilon, database, updates)
        elif prop == "snapshot-isolation":
            check_snapshot_isolation(case.query, epsilon, database, updates)
        elif prop == "retune-equivalence":
            # the retune target is case-derived so a repro file replays the
            # same epsilon pair without carrying extra state
            target = RETUNE_TARGETS[
                (len(case.updates) + int(4 * epsilon)) % len(RETUNE_TARGETS)
            ]
            check_retune_equivalence(case.query, epsilon, target, database, updates)
        elif prop == "reshard-equivalence":
            check_reshard_equivalence(case.query, epsilon, database, updates)
        elif prop == "aggregate-equivalence":
            check_aggregate_equivalence(
                case.query,
                case.epsilons or (0.5,),
                database,
                updates,
                extra_specs=case.aggregates,
            )
    except AssertionError as exc:
        return Mismatch(
            engine=f"ivm(eps={epsilon})",
            checkpoint=-1,
            kind=f"metamorphic:{prop}",
            detail=str(exc),
        )
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        # A crash (e.g. a rejected update) gets its own kind so the
        # kind-stable shrink predicate cannot wander from a genuine
        # property violation to a stream made invalid by shrinking.
        return Mismatch(
            engine=f"ivm(eps={epsilon})",
            checkpoint=-1,
            kind=f"metamorphic:{prop}:crash",
            detail=f"{type(exc).__name__}: {exc}",
        )
    return None


def _failure_predicate(kind: str, prop: str = ""):
    """A shrink predicate that only accepts the original failure *kind*.

    Without this, shrinking can wander to an unrelated failure (e.g. drop
    the insert that made a later delete valid and "find" a rejected-update
    crash instead of the real divergence).
    """

    def fails(candidate: ConformanceCase):
        if prop:
            found = metamorphic_failure(candidate, prop)
        elif kind.startswith("recovery"):
            found = crash_recovery_failure(candidate)
        else:
            found = case_failure(candidate)
        if found is None:
            return None
        if found.kind == kind:
            return found
        # Crash-recovery kinds form one family: shrinking changes the case
        # digest, hence the armed crash point, hence which recovery check
        # trips first — any recovery-* failure is still the same bug class.
        if kind.startswith("recovery") and found.kind.startswith("recovery"):
            return found
        return None

    return fails


def _report_failure(
    case: ConformanceCase,
    mismatch: Mismatch,
    index: int,
    out_dir: Path,
    prop: str = "",
) -> Path:
    print(f"\nFAILURE in case {index}: {mismatch}", flush=True)
    print("shrinking ...", flush=True)
    shrunk = shrink_case(case, _failure_predicate(mismatch.kind, prop))
    final = _failure_predicate(mismatch.kind, prop)(shrunk) or mismatch
    path = out_dir / f"case-{index:06d}.json"
    write_repro(shrunk, final, path)
    total_rows = sum(len(rows) for _schema, rows in shrunk.relations.values())
    print(
        f"minimal repro: {len(shrunk.updates)} updates, {total_rows} tuples, "
        f"epsilons {list(shrunk.epsilons)} -> {path}"
    )
    print(f"replay with: python tools/fuzz.py --repro {path}")
    return path


def run_repro(path: Path) -> int:
    """Replay a repro file; exit 0 when it no longer fails."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    failure = raw.get("failure") or {}
    kind = failure.get("kind", "")
    case = load_case(path)
    if kind.startswith("metamorphic:"):
        # kind is "metamorphic:<prop>" or "metamorphic:<prop>:crash" — the
        # middle segment is the property name either way
        mismatch = metamorphic_failure(case, kind.split(":")[1])
    elif kind.startswith("recovery"):
        mismatch = crash_recovery_failure(case)
    else:
        mismatch = case_failure(case)
    if mismatch is None:
        print(f"{path}: case no longer fails")
        return 0
    print(f"{path}: still failing: {mismatch}")
    return 1


def fuzz(args: argparse.Namespace) -> int:
    out_dir = Path(args.out)
    deadline = time.perf_counter() + args.budget
    stats = {
        "differential": 0,
        "non-hierarchical": 0,
        "metamorphic": 0,
        "scenario": 0,
        "crash-recovery": 0,
    }
    index = 0
    while time.perf_counter() < deadline and index < args.max_cases:
        rng = random.Random(args.seed * 1_000_003 + index)
        roll = rng.random()
        if args.mode == "crash-recovery":
            # dedicated kill-mid-batch budget: every case crashes a durable
            # engine at a case-deterministic fault-injection point
            roll = 1.0
        try:
            if roll < 0.45:
                stats["differential"] += 1
                case = _differential_case(rng, hierarchical=True)
                mismatch = case_failure(case)
                prop = ""
            elif roll < 0.60:
                stats["non-hierarchical"] += 1
                case = _differential_case(rng, hierarchical=False)
                mismatch = case_failure(case)
                prop = ""
            elif roll < 0.78:
                stats["metamorphic"] += 1
                case = _metamorphic_case(rng)
                prop = rng.choice(METAMORPHIC_PROPERTIES)
                mismatch = metamorphic_failure(case, prop)
            elif roll < 0.90:
                stats["scenario"] += 1
                case = _scenario_case(rng)
                mismatch = case_failure(case)
                prop = ""
            else:
                stats["crash-recovery"] += 1
                case = _differential_case(rng, hierarchical=True)
                mismatch = crash_recovery_failure(case)
                prop = ""
        except Exception as exc:  # noqa: BLE001 - generator crash is a finding too
            print(f"\ncase {index}: generator/setup crashed: {type(exc).__name__}: {exc}")
            raise
        if mismatch is not None:
            _report_failure(case, mismatch, index, out_dir, prop)
            return 1
        index += 1
        if args.verbose and index % 20 == 0:
            remaining = deadline - time.perf_counter()
            print(f"  {index} cases clean, {remaining:.0f}s of budget left", flush=True)
    elapsed = args.budget - max(0.0, deadline - time.perf_counter())
    mix = ", ".join(f"{name}={count}" for name, count in stats.items())
    print(f"fuzz: {index} cases clean in {elapsed:.1f}s (seed {args.seed}; {mix})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="differential conformance fuzzer (see docs/architecture.md)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--budget", type=float, default=30.0, help="wall-clock budget in seconds"
    )
    parser.add_argument(
        "--max-cases", type=int, default=1_000_000, help="stop after this many cases"
    )
    parser.add_argument(
        "--out",
        default="fuzz-failures",
        help="directory for minimal-repro JSON files (default: ./fuzz-failures)",
    )
    parser.add_argument(
        "--mode",
        choices=("mix", "crash-recovery"),
        default="mix",
        help="case mix: the default blend, or kill-mid-batch crash runs only",
    )
    parser.add_argument(
        "--repro", metavar="FILE", help="replay a repro file instead of fuzzing"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.repro:
        return run_repro(Path(args.repro))
    return fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
