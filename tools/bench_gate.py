"""Benchmark gate: re-run the asserted throughput claims so they cannot rot.

Four benchmark modules assert headline performance ratios and record their
tables under ``benchmarks/results/``:

* ``bench_batch_updates``      — batched ingestion ≥ 2× single-update path;
* ``bench_sharded_scaling``    — 4 shards ≥ 2× 1 shard on ``hot_shard``;
* ``bench_concurrent_serving`` — 4 snapshot readers ≥ 2× the serialized
  read-after-write loop;
* ``bench_adaptive``           — adaptive ε ≥ 2× the worst fixed ε and
  within 20% of the best fixed ε on ``phase_shift``.

Committed result files are claims about the code, and nothing in the unit
suite re-checks them.  This gate replays the benchmark assertions::

    python tools/bench_gate.py             # full-scale (minutes)
    python tools/bench_gate.py --smoke     # CI mode: scaled-down workloads

``--smoke`` sets ``REPRO_BENCH_SCALE=0.2`` (the serving benchmark pins its
own lower bounds, so its fixed-wall-clock windows stay meaningful) and is
wired into CI after ``make test``.  Exit status is non-zero as soon as any
benchmark assertion fails.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

GATED_BENCHMARKS = (
    "benchmarks/bench_batch_updates.py",
    "benchmarks/bench_sharded_scaling.py",
    "benchmarks/bench_concurrent_serving.py",
    "benchmarks/bench_adaptive.py",
)

SMOKE_SCALE = "0.2"


def run_gate(smoke: bool, benchmarks=GATED_BENCHMARKS) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if smoke:
        env["REPRO_BENCH_SCALE"] = SMOKE_SCALE
    failed = []
    for module in benchmarks:
        print(f"bench-gate: {module} ({'smoke' if smoke else 'full'} scale)", flush=True)
        result = subprocess.run(
            [sys.executable, "-m", "pytest", module, "-q", "--no-header"],
            cwd=REPO_ROOT,
            env=env,
        )
        if result.returncode != 0:
            failed.append(module)
    if failed:
        print(f"bench-gate: FAILED — {', '.join(failed)}")
        return 1
    print(f"bench-gate: all {len(benchmarks)} benchmark assertion sets hold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="re-run the asserted benchmark claims (see module docstring)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"scaled-down CI mode (REPRO_BENCH_SCALE={SMOKE_SCALE})",
    )
    parser.add_argument(
        "--only",
        metavar="SUBSTR",
        help="run only the gated benchmarks whose path contains SUBSTR",
    )
    args = parser.parse_args(argv)
    benchmarks = GATED_BENCHMARKS
    if args.only:
        benchmarks = tuple(b for b in GATED_BENCHMARKS if args.only in b)
        if not benchmarks:
            parser.error(f"no gated benchmark matches {args.only!r}")
    return run_gate(args.smoke, benchmarks)


if __name__ == "__main__":
    sys.exit(main())
