"""Benchmark gate: re-run the asserted throughput claims so they cannot rot.

Nine benchmark modules assert headline performance ratios and record their
tables under ``benchmarks/results/``:

* ``bench_batch_updates``      — batched ingestion ≥ 2× single-update path;
* ``bench_sharded_scaling``    — 4 shards ≥ 2× 1 shard on ``hot_shard``;
* ``bench_concurrent_serving`` — 4 snapshot readers ≥ 2× the serialized
  read-after-write loop;
* ``bench_adaptive``           — adaptive ε ≥ 2× the worst fixed ε and
  within 20% of the best fixed ε on ``phase_shift``;
* ``bench_durability``         — WAL-on batched ingestion ≤ 1.3× per tuple,
  checkpointed recovery ≤ 0.5× replaying the whole WAL;
* ``bench_subscriptions``      — every one of 200 concurrent push
  subscribers reproduces the oracle from per-commit deltas (ratio 1.0),
  with per-subscriber queue memory bounded under backpressure;
* ``bench_reshard``            — online 2→4 reshard under a live writer:
  longest writer stall ≤ 0.6× the reshard wall-clock, and post-reshard
  ingest throughput ≥ 0.8× a fleet loaded fresh at 4 shards;
* ``bench_storage``            — columnar backend ≥ 3× the dict backend
  (geomean over every registered scenario) on the per-tuple maintenance
  touch path, with both backends reaching identical final state;
* ``bench_aggregates``         — maintained ring-aggregate reads ≥ 5× the
  enumerate-and-fold path at 10k-group scale on the iot sliding-window
  workload, with maintenance cost staying inside ingestion and aggregate
  push frames never outweighing plain result-delta frames.

Committed result files are claims about the code, and nothing in the unit
suite re-checks them.  This gate replays the benchmark assertions::

    python tools/bench_gate.py             # full-scale (minutes)
    python tools/bench_gate.py --smoke     # CI mode: scaled-down workloads

``--smoke`` sets ``REPRO_BENCH_SCALE=0.2`` (the serving benchmark pins its
own lower bounds, so its fixed-wall-clock windows stay meaningful) and is
wired into CI after ``make test``.  Exit status is non-zero as soon as any
benchmark assertion fails.

The machine-readable perf history lives in ``BENCH_trajectory.json`` at
the repo root: one entry per asserted claim, with the PR that introduced
it, the asserted threshold, and the recorded value.  The gate first
cross-checks that file against its own benchmark list — every gated claim
must name a module the gate runs, and every gated module must carry at
least one claim — so the trajectory cannot silently drift from what is
actually asserted.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

GATED_BENCHMARKS = (
    "benchmarks/bench_batch_updates.py",
    "benchmarks/bench_sharded_scaling.py",
    "benchmarks/bench_concurrent_serving.py",
    "benchmarks/bench_adaptive.py",
    "benchmarks/bench_durability.py",
    "benchmarks/bench_subscriptions.py",
    "benchmarks/bench_reshard.py",
    "benchmarks/bench_storage.py",
    "benchmarks/bench_aggregates.py",
)

TRAJECTORY_FILE = REPO_ROOT / "BENCH_trajectory.json"

SMOKE_SCALE = "0.2"


def check_trajectory(path: Path = TRAJECTORY_FILE) -> int:
    """Validate BENCH_trajectory.json against the gated benchmark list."""
    try:
        trajectory = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"bench-gate: cannot read {path.name}: {exc}")
        return 1
    problems = []
    claimed_modules = set()
    for claim in trajectory.get("claims", ()):
        label = claim.get("id", "<missing id>")
        module = claim.get("module", "")
        for key in ("id", "pr", "module", "metric", "threshold", "recorded"):
            if key not in claim:
                problems.append(f"claim {label!r} lacks the {key!r} field")
        if module and not (REPO_ROOT / module).exists():
            problems.append(f"claim {label!r} names missing module {module!r}")
        if claim.get("gated"):
            claimed_modules.add(module)
            if module not in GATED_BENCHMARKS:
                problems.append(
                    f"claim {label!r} is marked gated but {module!r} is not "
                    "in the gate's benchmark list"
                )
        threshold = claim.get("threshold", {})
        if threshold.get("kind") not in ("min_ratio", "max_ratio"):
            problems.append(f"claim {label!r} has unknown threshold kind")
    for module in GATED_BENCHMARKS:
        if module not in claimed_modules:
            problems.append(f"gated module {module!r} carries no claim")
    if problems:
        for problem in problems:
            print(f"bench-gate: {path.name}: {problem}")
        return 1
    print(
        f"bench-gate: {path.name} consistent "
        f"({len(trajectory.get('claims', ()))} claims over "
        f"{len(GATED_BENCHMARKS)} gated modules)"
    )
    return 0


def run_gate(smoke: bool, benchmarks=GATED_BENCHMARKS) -> int:
    if check_trajectory() != 0:
        return 1
    return _run_benchmarks(smoke, benchmarks)


def _run_benchmarks(smoke: bool, benchmarks) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if smoke:
        env["REPRO_BENCH_SCALE"] = SMOKE_SCALE
    failed = []
    for module in benchmarks:
        print(f"bench-gate: {module} ({'smoke' if smoke else 'full'} scale)", flush=True)
        result = subprocess.run(
            [sys.executable, "-m", "pytest", module, "-q", "--no-header"],
            cwd=REPO_ROOT,
            env=env,
        )
        if result.returncode != 0:
            failed.append(module)
    if failed:
        print(f"bench-gate: FAILED — {', '.join(failed)}")
        return 1
    print(f"bench-gate: all {len(benchmarks)} benchmark assertion sets hold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="re-run the asserted benchmark claims (see module docstring)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"scaled-down CI mode (REPRO_BENCH_SCALE={SMOKE_SCALE})",
    )
    parser.add_argument(
        "--only",
        metavar="SUBSTR",
        help="run only the gated benchmarks whose path contains SUBSTR",
    )
    args = parser.parse_args(argv)
    benchmarks = GATED_BENCHMARKS
    if args.only:
        benchmarks = tuple(b for b in GATED_BENCHMARKS if args.only in b)
        if not benchmarks:
            parser.error(f"no gated benchmark matches {args.only!r}")
    return run_gate(args.smoke, benchmarks)


if __name__ == "__main__":
    sys.exit(main())
