"""Serve a scenario's engine over TCP: the networked-serving entry point.

Builds one scenario from the workload matrix, loads it into a
:class:`~repro.core.api.HierarchicalEngine` (or a
:class:`~repro.sharding.ShardedEngine` with ``--shards > 1``), fronts it
with an :class:`~repro.core.serving.EngineServer`, and serves the frame
protocol of :mod:`repro.net` until interrupted.  ``GET /metrics`` on the
same port answers in Prometheus text format.

Examples::

    # serve the retail scenario on an ephemeral port
    PYTHONPATH=src python tools/serve.py --scenario retail

    # serve on a fixed port, with a background writer ingesting the
    # scenario's update stream in 50-tuple batches, 4 batches/second
    PYTHONPATH=src python tools/serve.py --scenario social --port 7711 \
        --drive 10000 --batch-size 50 --rate 4

    # then, from any Python with src/ on the path:
    #   from repro.net import EngineClient
    #   client = EngineClient("127.0.0.1", 7711)
    #   sub = client.subscribe()          # full result + per-commit deltas

Adding ``--controller`` attaches the adaptive epsilon controller, so the
served engine retunes itself as the read/write mix shifts; subscribers
simply see the commits keep flowing (retunes never change the result).
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adaptive import AdaptiveController  # noqa: E402
from repro.core.api import HierarchicalEngine  # noqa: E402
from repro.core.serving import EngineServer  # noqa: E402
from repro.net import ServerConfig, ServerThread  # noqa: E402
from repro.sharding import ShardedEngine  # noqa: E402
from repro.workloads.scenarios import get_scenario, scenario_names  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        default="retail",
        choices=scenario_names(),
        help="workload scenario to build and serve (default: retail)",
    )
    parser.add_argument("--seed", type=int, default=0, help="database seed")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="database size multiplier"
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.5, help="epsilon trade-off parameter"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count; >1 serves a ShardedEngine",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--mode",
        default="snapshot",
        choices=("snapshot", "locked"),
        help="serving mode (default: snapshot)",
    )
    parser.add_argument(
        "--controller",
        action="store_true",
        help="attach the adaptive epsilon controller",
    )
    parser.add_argument(
        "--drive",
        type=int,
        default=0,
        metavar="N",
        help="ingest N scenario stream updates from a background writer",
    )
    parser.add_argument(
        "--batch-size", type=int, default=50, help="writer batch size"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=10.0,
        help="writer batches per second (0 = as fast as possible)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=256, help="connection limit"
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=32,
        help="per-subscriber send-queue bound (frames)",
    )
    return parser


def build_serving(args):
    """Build ``(serving_server, database)`` for the chosen scenario."""
    scenario = get_scenario(args.scenario)
    database = scenario.make_database(args.seed, args.scale)
    if args.shards > 1:
        engine = ShardedEngine(
            scenario.query, shards=args.shards, epsilon=args.epsilon
        )
    else:
        engine = HierarchicalEngine(scenario.query, epsilon=args.epsilon)
    engine.load(database)
    controller = AdaptiveController(engine) if args.controller else None
    return EngineServer(engine, mode=args.mode, controller=controller), database


def drive_writer(serving: EngineServer, database, args) -> threading.Thread:
    """Feed the scenario's update stream through the serving commit path."""
    scenario = get_scenario(args.scenario)
    stream = scenario.make_stream(database, args.drive, args.seed + 1)

    def paced_batches():
        interval = 1.0 / args.rate if args.rate > 0 else 0.0
        for batch in stream.batches(args.batch_size):
            yield batch
            if interval:
                time.sleep(interval)

    return serving.start_writer(paced_batches())


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    serving, database = build_serving(args)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        subscriber_queue_size=args.queue_size,
    )
    handle = ServerThread(serving, config).start()
    engine = serving.engine
    print(
        f"serving {args.scenario!r} — {engine.query} — "
        f"on {args.host}:{handle.port} "
        f"(mode={args.mode}, epsilon={args.epsilon}, shards={args.shards})",
        flush=True,
    )
    print(f"metrics: http://{args.host}:{handle.port}/metrics", flush=True)
    writer = drive_writer(serving, database, args) if args.drive > 0 else None
    try:
        while True:
            time.sleep(1.0)
            serving.check_writer()
            if writer is not None and not writer.is_alive():
                print("writer stream exhausted; still serving", flush=True)
                writer = None
    except KeyboardInterrupt:
        print("\nshutting down", flush=True)
    finally:
        handle.close()
        if writer is not None:
            try:
                serving.stop_writer(timeout=10.0)
            except Exception as exc:  # noqa: BLE001 - report and exit
                print(f"writer error: {exc}", file=sys.stderr)
                return 1
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
