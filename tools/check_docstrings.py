"""Docs gate: every public module under ``src/repro/`` needs a docstring.

Usage::

    python tools/check_docstrings.py          # exit 1 and list offenders
    make docs-check                           # the same, via the Makefile

A "public module" is any ``.py`` file in the package whose name does not
start with an underscore (package ``__init__.py`` files are public: they are
the import surface).  The check parses each file with :mod:`ast`, so it runs
without importing the package and without any third-party dependency.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def modules_missing_docstrings(root: Path) -> list:
    """Return the paths of public modules without a module docstring."""
    missing = []
    for path in sorted(root.rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            missing.append(path)
    return missing


def main() -> int:
    if not PACKAGE_ROOT.is_dir():
        print(f"docs-check: package root {PACKAGE_ROOT} not found", file=sys.stderr)
        return 2
    missing = modules_missing_docstrings(PACKAGE_ROOT)
    checked = sum(1 for _ in PACKAGE_ROOT.rglob("*.py"))
    if missing:
        print(f"docs-check: {len(missing)} module(s) lack a module docstring:")
        for path in missing:
            print(f"  {path.relative_to(PACKAGE_ROOT.parent.parent)}")
        return 1
    print(f"docs-check: OK ({checked} modules under src/repro/ documented)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
