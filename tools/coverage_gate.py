#!/usr/bin/env python
"""Line-coverage gate for the test suite, with a stdlib fallback.

``make coverage`` runs this tool.  When ``pytest-cov`` is installed it
simply delegates::

    pytest --cov=repro --cov-fail-under=<threshold>

When it is not (this repository must run in hermetic environments where
installing packages is off the table), the tool falls back to a
``sys.settrace``-based line collector over ``src/repro``:

* executable lines per file are derived statically by compiling each module
  and walking its code objects' ``co_lines`` tables — the same line table
  the live interpreter reports, so static and dynamic views agree;
* at runtime, only frames whose code lives under ``src/repro`` get a local
  trace function, and a code object whose lines have all been seen stops
  being traced entirely (returning ``None`` from the ``call`` event), which
  keeps the slowdown on hot, fully-covered loops bounded;
* worker *threads* are traced via ``threading.settrace``; worker
  *processes* (the sharded engine's process executor) are not — their
  uncovered lines are part of the pinned baseline.

The default threshold is pinned at the measured baseline of the fallback
collector (capped at 85): the gate exists to stop coverage regressions, not
to flatter the number.

Usage::

    python tools/coverage_gate.py                  # full suite, default gate
    python tools/coverage_gate.py --fail-under 80
    python tools/coverage_gate.py --report         # per-file table
    python tools/coverage_gate.py tests/test_sharding.py   # subset (no gate)
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from types import CodeType
from typing import Dict, Iterable, Optional, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"
sys.path.insert(0, str(REPO_ROOT / "src"))

# The stdlib collector measured 92.9% on the full suite when this gate was
# introduced; the threshold is pinned at 85 (the CI contract) so routine
# churn cannot trip it while a real coverage regression still fails loudly.
# Raise it as coverage grows; never lower it to make a failure go away.
DEFAULT_FAIL_UNDER = 85.0


def executable_lines(path: Path) -> Set[int]:
    """All line numbers the compiled module can report events for."""
    lines: Set[int] = set()
    try:
        code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    except SyntaxError as exc:  # pragma: no cover - broken source is a bug
        raise SystemExit(f"coverage gate: cannot compile {path}: {exc}")
    stack = [code]
    while stack:
        current = stack.pop()
        for _start, _end, line in current.co_lines():
            if line is not None:
                lines.add(line)
        for constant in current.co_consts:
            if isinstance(constant, CodeType):
                stack.append(constant)
    return lines


class LineCollector:
    """A ``sys.settrace`` hook that records executed lines under one root."""

    def __init__(self, root: Path) -> None:
        self.prefix = str(root) + "/"
        self.seen: Dict[str, Set[int]] = {}
        # per-code bookkeeping for the saturation short-circuit
        self._remaining: Dict[CodeType, Set[int]] = {}
        self._done: Set[CodeType] = set()

    # -- trace callbacks -------------------------------------------------
    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        code = frame.f_code
        if code in self._done:
            return None
        filename = code.co_filename
        if not filename.startswith(self.prefix):
            return None
        return self._local_trace

    def _local_trace(self, frame, event, arg):
        if event != "line":
            return self._local_trace
        code = frame.f_code
        line = frame.f_lineno
        file_seen = self.seen.setdefault(code.co_filename, set())
        file_seen.add(line)
        remaining = self._remaining.get(code)
        if remaining is None:
            remaining = {
                entry[2]
                for entry in code.co_lines()
                if entry[2] is not None
            }
            self._remaining[code] = remaining
        remaining.discard(line)
        if not remaining:
            # every line of this code object has been seen: stop paying
            # for it (its future frames get no local tracer at all)
            self._done.add(code)
            return None
        return self._local_trace

    # -- lifecycle -------------------------------------------------------
    def install(self) -> None:
        threading.settrace(self._global_trace)
        sys.settrace(self._global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def iter_source_files(root: Path) -> Iterable[Path]:
    return sorted(root.rglob("*.py"))


def run_with_pytest_cov(args: argparse.Namespace) -> int:
    import pytest

    pytest_args = [
        "--cov=repro",
        # mirror the stdlib path: subset runs measure but do not gate, and
        # the first failure stops the run
        *(
            []
            if args.tests
            else [f"--cov-fail-under={args.fail_under}"]
        ),
        "--cov-report=term-missing" if args.report else "--cov-report=term",
        "-x",
        "-q",
        *(args.tests or []),
    ]
    print(f"coverage gate: pytest-cov detected; running pytest {' '.join(pytest_args)}")
    return pytest.main(pytest_args)


def run_with_stdlib_tracer(args: argparse.Namespace) -> int:
    import pytest

    collector = LineCollector(SOURCE_ROOT)
    collector.install()
    try:
        # -x: coverage is never evaluated on a failing run, so there is
        # nothing to gain from finishing a traced suite after the first
        # failure — keep the fail-fast behaviour `make test` had before
        # the gate replaced its plain pytest invocation
        exit_code = pytest.main(["-x", "-q", *(args.tests or [])])
    finally:
        collector.uninstall()
    if exit_code != 0:
        print("coverage gate: test run failed; coverage not evaluated")
        return int(exit_code)

    total_executable = 0
    total_covered = 0
    rows = []
    for path in iter_source_files(SOURCE_ROOT):
        lines = executable_lines(path)
        seen = collector.seen.get(str(path), set()) & lines
        total_executable += len(lines)
        total_covered += len(seen)
        percent = 100.0 * len(seen) / len(lines) if lines else 100.0
        rows.append((path.relative_to(REPO_ROOT), len(lines), len(seen), percent))
    percent_total = (
        100.0 * total_covered / total_executable if total_executable else 100.0
    )

    if args.report:
        width = max(len(str(row[0])) for row in rows)
        print(f"\n{'module'.ljust(width)}  lines  covered      %")
        for name, n_lines, n_seen, percent in rows:
            print(f"{str(name).ljust(width)}  {n_lines:5d}  {n_seen:7d}  {percent:5.1f}")
    print(
        f"\ncoverage gate (stdlib tracer): {total_covered}/{total_executable} "
        f"lines = {percent_total:.2f}% (threshold {args.fail_under:.1f}%)"
    )
    if args.tests:
        print("coverage gate: subset run — threshold not enforced")
        return 0
    if percent_total < args.fail_under:
        print("coverage gate: FAILED — coverage dropped below the pinned baseline")
        return 1
    print("coverage gate: ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="line-coverage gate (pytest-cov when available, stdlib otherwise)"
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=DEFAULT_FAIL_UNDER,
        help=f"minimum total line coverage in percent (default {DEFAULT_FAIL_UNDER})",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the per-module coverage table"
    )
    parser.add_argument(
        "--force-stdlib",
        action="store_true",
        help="use the stdlib tracer even when pytest-cov is installed",
    )
    parser.add_argument(
        "tests",
        nargs="*",
        help="optional pytest targets (subset runs skip the threshold)",
    )
    args = parser.parse_args(argv)
    if not args.force_stdlib:
        try:
            import pytest_cov  # noqa: F401
        except ImportError:
            pass
        else:
            return run_with_pytest_cov(args)
    return run_with_stdlib_tracer(args)


if __name__ == "__main__":
    sys.exit(main())
