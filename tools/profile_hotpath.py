"""Profile the maintenance hot path across every registered scenario.

Runs each scenario in :data:`repro.workloads.scenarios.SCENARIOS` through a
freshly loaded :class:`~repro.core.api.HierarchicalEngine` under
:mod:`cProfile` — the same update streams the conformance fuzzer and the
benchmarks replay — and writes a top-N hot-function report.  The committed
copy (``benchmarks/results/profile_hotpath.txt``, refreshed by ``make
profile``) documents where maintenance time actually goes, so a storage or
propagation change can be judged against the real call profile instead of
intuition::

    python tools/profile_hotpath.py                  # full run, writes report
    python tools/profile_hotpath.py --smoke          # CI: tiny streams, stdout
    python tools/profile_hotpath.py --backend dict   # profile the dict backend

Per-scenario throughput numbers in the report are measured *under the
profiler* and are only comparable to each other, not to the un-profiled
benchmarks.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUTPUT = REPO_ROOT / "benchmarks" / "results" / "profile_hotpath.txt"
DEFAULT_COUNT = 4000
SMOKE_COUNT = 200
SEED = 7


def profile_scenarios(count: int, top: int, backend: str) -> str:
    from repro.core.api import HierarchicalEngine
    from repro.data import storage_backend
    from repro.workloads.scenarios import SCENARIOS, get_scenario

    profile = cProfile.Profile()
    lines = [
        f"Maintenance hot-path profile — backend={backend}, "
        f"{count} updates per scenario, top {top} functions by total time.",
        "",
        "Per-scenario ingestion under the profiler (relative only):",
        "",
        f"  {'scenario':<14} {'updates':>8} {'seconds':>9} {'updates/s':>10}",
    ]
    with storage_backend(backend):
        for name in sorted(SCENARIOS):
            scenario = get_scenario(name)
            database = scenario.make_database(seed=SEED, scale=1.0)
            updates = list(scenario.make_stream(database, count=count, seed=SEED))
            engine = HierarchicalEngine(scenario.query).load(database)
            started = time.perf_counter()
            profile.enable()
            for update in updates:
                engine.apply(update)
            profile.disable()
            elapsed = time.perf_counter() - started
            lines.append(
                f"  {name:<14} {len(updates):>8} {elapsed:>9.3f} "
                f"{len(updates) / elapsed:>10.0f}"
            )
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.strip_dirs().sort_stats("tottime").print_stats(top)
    lines += ["", buffer.getvalue().rstrip(), ""]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="profile scenario ingestion (see module docstring)"
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help=f"updates per scenario (default {DEFAULT_COUNT})",
    )
    parser.add_argument(
        "--top", type=int, default=30, help="functions to report (default 30)"
    )
    parser.add_argument(
        "--backend",
        default=os.environ.get("REPRO_STORAGE", "columnar"),
        choices=("dict", "columnar"),
        help="storage backend to profile (default: active backend)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"report path (default {DEFAULT_OUTPUT.relative_to(REPO_ROOT)}; "
        "'-' for stdout)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI mode: {SMOKE_COUNT} updates per scenario, print to stdout "
        "instead of touching the committed report",
    )
    args = parser.parse_args(argv)
    count = args.count if args.count is not None else (
        SMOKE_COUNT if args.smoke else DEFAULT_COUNT
    )
    report = profile_scenarios(count, args.top, args.backend)
    output = args.output
    if output is None:
        output = "-" if args.smoke else str(DEFAULT_OUTPUT)
    if output == "-":
        print(report)
    else:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"profile-hotpath: wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
