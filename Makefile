# Developer entry points.  Every target works from a fresh checkout without
# `pip install -e .` because PYTHONPATH is pointed at the src/ layout.

PY ?= python
export PYTHONPATH := src

.PHONY: test coverage fuzz-smoke serve-smoke bench-smoke bench-batch bench-sharded bench-serving bench-adaptive bench-subscriptions bench-reshard bench-storage bench-aggregates bench-gate profile profile-smoke docs-check install-dev

## Tier-1 verification: the coverage gate first — it runs the full test
## suite exactly once (fail-fast, under the line collector when pytest-cov
## is absent) and fails on any test failure or on coverage below the
## pinned baseline — then the seeded conformance fuzz smoke pass, so a
## plain unit-test regression surfaces as a unit-test failure rather than
## a shrunk fuzz artifact, and finally the networked-serving smoke (one
## scripted client session, subscription deltas checked against the
## recompute oracle).
test:
	$(MAKE) --no-print-directory coverage
	$(MAKE) --no-print-directory fuzz-smoke
	$(MAKE) --no-print-directory serve-smoke

## Line-coverage gate: `pytest --cov=repro --cov-fail-under=<baseline>`
## when pytest-cov is installed, a stdlib sys.settrace collector otherwise
## (tools/coverage_gate.py).  The threshold is pinned at the measured
## baseline of the stdlib collector; raise it as coverage grows.
coverage:
	$(PY) tools/coverage_gate.py

## Differential conformance fuzzing, seeded and time-boxed.  The case
## sequence is deterministic for a given seed; failures are shrunk and
## written to ./fuzz-failures/ as replayable JSON repros.  The second pass
## is a dedicated kill-mid-batch budget: every case crashes a durable
## engine at a fault-injection point, recovers, resumes, and diffs.
fuzz-smoke:
	$(PY) tools/fuzz.py --seed 0 --budget 30
	$(PY) tools/fuzz.py --seed 0 --budget 15 --mode crash-recovery

## Networked-serving smoke: boot the asyncio TCP server on an ephemeral
## port, run a scripted client session (paged snapshot, one subscription,
## a burst of batches over the wire, /metrics over HTTP) and assert the
## pushed per-commit deltas reproduce the oracle at every version stamp.
serve-smoke:
	$(PY) tools/serve_smoke.py

## Quick benchmark sanity pass: the batched-ingestion benchmark at 1/5 scale.
bench-smoke:
	REPRO_BENCH_SCALE=0.2 $(PY) -m pytest benchmarks/bench_batch_updates.py -q

## Full-scale batched-ingestion benchmark (writes benchmarks/results/).
bench-batch:
	$(PY) -m pytest benchmarks/bench_batch_updates.py -q

## Sharded scaling benchmark: per-tuple maintenance throughput vs shard
## count on the adversarial hot_shard scenario (asserts >=2x at 4 shards).
bench-sharded:
	$(PY) -m pytest benchmarks/bench_sharded_scaling.py -q

## Concurrent-serving benchmark: 4 snapshot readers vs the serialized
## read-after-write loop (asserts >=2x aggregate enumeration throughput).
bench-serving:
	$(PY) -m pytest benchmarks/bench_concurrent_serving.py -q

## Adaptive-epsilon benchmark: workload-adaptive retuning vs every fixed
## epsilon on the phase_shift scenario (asserts >=2x the worst fixed
## epsilon and within 20% of the best).
bench-adaptive:
	$(PY) -m pytest benchmarks/bench_adaptive.py -q

## Push-subscription fan-out benchmark: 200 concurrent subscribers on one
## event loop, every mirror reproduces the oracle from per-commit deltas,
## bounded queue memory under a deliberately slow subscriber.
bench-subscriptions:
	$(PY) -m pytest benchmarks/bench_subscriptions.py -q

## Elastic-resharding benchmark: online 2->4 split under a live writer
## (stall bounded, post-reshard throughput vs a fresh 4-shard fleet).
bench-reshard:
	$(PY) -m pytest benchmarks/bench_reshard.py -q

## Columnar-vs-dict storage benchmark: per-tuple maintenance touch
## throughput over every registered scenario (asserts >=3x geomean).
bench-storage:
	$(PY) -m pytest benchmarks/bench_storage.py -q

## Maintained ring aggregates vs enumerate-and-fold at 10k-group scale
## (asserts >=5x read latency) plus subscription payload-bytes comparison.
bench-aggregates:
	$(PY) -m pytest benchmarks/bench_aggregates.py -q

## Re-run every asserted benchmark claim at reduced scale (the CI gate).
bench-gate:
	$(PY) tools/bench_gate.py --smoke

## Profile scenario ingestion under cProfile and refresh the committed
## hot-function report (benchmarks/results/profile_hotpath.txt).
profile:
	$(PY) tools/profile_hotpath.py

## CI smoke for the profiling harness: tiny streams, report to stdout.
profile-smoke:
	$(PY) tools/profile_hotpath.py --smoke

## Fail if any public module under src/repro/ lacks a module docstring.
docs-check:
	$(PY) tools/check_docstrings.py

## Editable install (after which PYTHONPATH=src is no longer needed).
install-dev:
	$(PY) -m pip install -e .
