# Developer entry points.  Every target works from a fresh checkout without
# `pip install -e .` because PYTHONPATH is pointed at the src/ layout.

PY ?= python
export PYTHONPATH := src

.PHONY: test fuzz-smoke bench-smoke bench-batch docs-check install-dev

## Tier-1 verification: the full test suite (fail-fast), then the seeded
## conformance fuzz smoke pass.
test:
	$(PY) -m pytest -x -q
	$(MAKE) --no-print-directory fuzz-smoke

## Differential conformance fuzzing, seeded and time-boxed (~30s).  The case
## sequence is deterministic for a given seed; failures are shrunk and
## written to ./fuzz-failures/ as replayable JSON repros.
fuzz-smoke:
	$(PY) tools/fuzz.py --seed 0 --budget 30

## Quick benchmark sanity pass: the batched-ingestion benchmark at 1/5 scale.
bench-smoke:
	REPRO_BENCH_SCALE=0.2 $(PY) -m pytest benchmarks/bench_batch_updates.py -q

## Full-scale batched-ingestion benchmark (writes benchmarks/results/).
bench-batch:
	$(PY) -m pytest benchmarks/bench_batch_updates.py -q

## Fail if any public module under src/repro/ lacks a module docstring.
docs-check:
	$(PY) tools/check_docstrings.py

## Editable install (after which PYTHONPATH=src is no longer needed).
install-dev:
	$(PY) -m pip install -e .
