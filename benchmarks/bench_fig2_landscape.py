"""Figure 2: the landscape of static and dynamic evaluation across query classes.

One representative query per class of the figure, all run through the same
engine at the ε corner the paper associates with the class:

* q-hierarchical  (w = 1, δ = 0)  → linear preprocessing, constant update & delay;
* free-connex δ₁ (w = 1, δ = 1)  → linear preprocessing, constant delay,
  sublinear updates at ε < 1;
* general hierarchical (w = 2, δ = 1) → the ε trade-off;
* δ₂ star query  (w = 3, δ = 2)  → the expensive end of the landscape.
"""

import pytest

from repro import DynamicEngine
from repro.bench import measure_enumeration_delay, measure_update_stream
from repro.workloads import (
    mixed_stream,
    path_query_database,
    star_query_database,
)
from benchmarks.conftest import make_update_cycler, scaled

SIZE = scaled(900)

LANDSCAPE = [
    # (label, query, database factory, epsilon)
    (
        "q-hierarchical (w=1, d=0)",
        "Q(A, B) = R(A, B), S(B, C)",
        lambda: path_query_database(SIZE, skew=1.0, seed=71),
        1.0,
    ),
    (
        "free-connex d1 (w=1, d=1)",
        "Q(A) = R(A, B), S(B, C)",
        lambda: path_query_database(SIZE, skew=1.0, seed=72),
        0.5,
    ),
    (
        "hierarchical (w=2, d=1)",
        "Q(A, C) = R(A, B), S(B, C)",
        lambda: path_query_database(SIZE, skew=1.0, seed=73),
        0.5,
    ),
    (
        "star d2 (w=3, d=2)",
        "Q(Y0, Y1, Y2) = R0(X, Y0), R1(X, Y1), R2(X, Y2)",
        lambda: star_query_database(SIZE // 3, branches=3, skew=1.0, seed=74),
        0.5,
    ),
]


@pytest.fixture(scope="module")
def landscape_rows(figure_report):
    rows = []
    for label, query, database_factory, epsilon in LANDSCAPE:
        database = database_factory()
        engine = DynamicEngine(query, epsilon=epsilon)
        engine.load(database)
        updates = mixed_stream(database, 150, seed=75, domain=database.size)
        update_measurement = measure_update_stream(engine, updates)
        delay, _ = measure_enumeration_delay(engine, limit=1000)
        rows.append(
            {
                "class": label,
                "epsilon": epsilon,
                "w": engine.static_width,
                "delta": engine.dynamic_width,
                "N": database.size,
                "preprocess_s": engine.preprocessing_seconds,
                "update_mean_s": update_measurement.mean,
                "delay_max_s": delay.maximum,
                "view_tuples": engine.view_size(),
            }
        )
    figure_report.record("Figure 2: landscape of query classes", rows)
    return rows


@pytest.mark.parametrize("index", range(len(LANDSCAPE)))
def test_fig2_update_per_class(benchmark, index, landscape_rows):
    label, query, database_factory, epsilon = LANDSCAPE[index]
    database = database_factory()
    engine = DynamicEngine(query, epsilon=epsilon).load(database)
    relation = engine.query.atoms[0].relation
    arity = engine.query.atoms[0].arity
    benchmark(make_update_cycler(engine, relation, arity, database.size, seed=76))


def test_fig2_widths_match_landscape(landscape_rows, benchmark):
    benchmark(lambda: None)
    by_class = {row["class"]: row for row in landscape_rows}
    assert by_class["q-hierarchical (w=1, d=0)"]["delta"] == 0
    assert by_class["hierarchical (w=2, d=1)"]["w"] == 2
    assert by_class["star d2 (w=3, d=2)"]["delta"] == 2
