"""Figure 3: the update/delay trade-off for δ₁-hierarchical queries.

The paper shows that for δ₁-hierarchical queries (here Example 28's
``Q(A, C) = R(A, B), S(B, C)`` and Example 29's ``Q(A) = R(A, B), S(B)``)
no algorithm can achieve both O(N^{1/2−γ}) update time and delay (unless OMv
fails), and that ε = ½ attains the weakly Pareto-optimal O(N^{1/2}) /
O(N^{1/2}) point.  The module measures update time and delay along the ε
sweep and runs the OMv-style round workload of Proposition 10.
"""

import numpy as np
import pytest

from repro import DynamicEngine
from repro.bench import measure_enumeration_delay, measure_update_stream
from repro.workloads import (
    mixed_stream,
    omv_matrix_database,
    omv_vector_rounds,
    path_query_database,
)
from benchmarks.conftest import scaled

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
SEMIJOIN_QUERY = "Q(A) = R(A, B), S(B)"
EPSILONS = [0.0, 0.25, 0.5, 0.75, 1.0]
SIZE = scaled(1200)


@pytest.fixture(scope="module")
def pareto_rows(figure_report):
    database = path_query_database(SIZE, skew=1.2, seed=81)
    rows = []
    for epsilon in EPSILONS:
        engine = DynamicEngine(PATH_QUERY, epsilon=epsilon).load(database)
        update_measurement = measure_update_stream(
            engine, mixed_stream(database, 200, seed=82, domain=SIZE)
        )
        delay, _ = measure_enumeration_delay(engine, limit=1200)
        rows.append(
            {
                "query": PATH_QUERY,
                "epsilon": epsilon,
                "expected_update_exp": engine.expected_exponents()["update"],
                "expected_delay_exp": engine.expected_exponents()["delay"],
                "update_mean_s": update_measurement.mean,
                "delay_max_s": delay.maximum,
                "preprocess_s": engine.preprocessing_seconds,
            }
        )
    figure_report.record(
        "Figure 3: update/delay trade-off for delta_1-hierarchical queries", rows
    )
    return rows


def test_fig3_pareto_shape(pareto_rows, benchmark):
    benchmark(lambda: None)
    by_eps = {row["epsilon"]: row for row in pareto_rows}
    # the theoretical exponents cross at ε = ½ (the weakly Pareto point)
    assert by_eps[0.5]["expected_update_exp"] == pytest.approx(0.5)
    assert by_eps[0.5]["expected_delay_exp"] == pytest.approx(0.5)


@pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
def test_fig3_omv_round(benchmark, epsilon, figure_report):
    """One OMv round: load a vector via single-tuple inserts, enumerate M·v,
    then retract the vector (Proposition 10's reduction)."""
    n = scaled(48)
    database, matrix = omv_matrix_database(n, density=0.3, seed=83)
    engine = DynamicEngine(SEMIJOIN_QUERY, epsilon=epsilon).load(database)
    rounds = omv_vector_rounds(n, rounds=1, density=0.4, seed=84)
    inserts, deletes, vector = rounds[0]

    def omv_round():
        engine.apply_stream(inserts)
        support = {a for (a,), _ in engine.enumerate()}
        engine.apply_stream(deletes)
        return support

    support = benchmark(omv_round)
    expected = {int(i) for i in np.nonzero((matrix @ vector) > 0)[0]}
    assert support == expected
