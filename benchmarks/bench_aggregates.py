"""Maintained ring aggregates vs enumerate-and-fold on ``iot_rolling_sum``.

The PR-10 claim: once a spec is registered, ``engine.aggregate()`` answers
from maintained ring state — each commit folds only its own result delta
into the state (O(delta) maintenance), so a read touches the live groups
and nothing else.  The alternative recomputes the fold from scratch:
enumerate the full join result through the view stack and lift every tuple
into the ring (``maintained=False``).  On a sliding-window workload whose
result is several times larger than its group count, the maintained read
must win by a wide margin *while the stream keeps churning*.

Two headline series on the iot sliding-window workload:

* **read latency** (gated claim) — interleave consolidated batches with a
  per-site rolling-sum read at 10k-group scale (``sites=10000``, a 30k
  reading window).  Per-read wall-clock of the maintained path vs the
  enumerate-and-fold path over the identical stream; the ratio must be
  **>= 5x**.  Maintenance cost rides along in the table: the maintained
  engine's ingest time includes folding every delta into the state, so the
  speedup is not bought by shifting work into ingestion.
* **subscription payload bytes** (context) — per-commit wire frames for a
  plain subscription (every changed result tuple) vs an aggregate
  subscription (net per-group support/element rows, the
  :mod:`repro.net.server` shape) on the registered ``iot_rolling_sum``
  scenario, whose 24 hot sites make many result rows coalesce into few
  group rows.  Aggregate frames must never be the larger ones in total.

Correctness rides along: after the full stream, the maintained answers
must equal the fold over a fresh enumeration, group for group.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Tuple

import pytest

from benchmarks.conftest import scaled
from repro.core.api import HierarchicalEngine
from repro.net.protocol import wire_pairs
from repro.rings.spec import AggregateSpec, fold_delta
from repro.workloads.scenarios import (
    IOT_QUERY,
    get_scenario,
    iot_database,
    iot_window_stream,
)

# -- read-latency series: 10k-group scale ------------------------------
DEVICES = scaled(12000)
SITES = scaled(10000)
WINDOW = scaled(30000)
STREAM = scaled(4000)
BATCH_SIZE = 100
SEED_DB = 11
SEED_STREAM = 13
READ_SPEEDUP_MIN = 5.0

# -- payload series: the registered scenario's hot-site sizing ---------
PAYLOAD_STREAM = scaled(3000)
PAYLOAD_BATCH = 100

SPEC = AggregateSpec("sum", "V", ("S",))
HEAD = ("S", "V")


def _workload() -> Tuple[HierarchicalEngine, List[List]]:
    database = iot_database(
        devices=DEVICES, sites=SITES, window=WINDOW, seed=SEED_DB
    )
    stream = list(
        iot_window_stream(
            STREAM, database, window=WINDOW, devices=DEVICES, seed=SEED_STREAM
        )
    )
    engine = HierarchicalEngine(IOT_QUERY, epsilon=0.5).load(database)
    batches = [
        stream[i : i + BATCH_SIZE] for i in range(0, len(stream), BATCH_SIZE)
    ]
    return engine, batches


def _run(maintained: bool) -> Dict[str, float]:
    """Interleave batches with one aggregate read each; time both sides."""
    engine, batches = _workload()
    if maintained:
        engine.register_aggregate(SPEC)
    engine.aggregate(SPEC, maintained=maintained)  # warm both paths
    ingest = read = 0.0
    answers: Dict = {}
    for batch in batches:
        started = time.perf_counter()
        engine.apply_batch(batch)
        ingest += time.perf_counter() - started
        started = time.perf_counter()
        answers = engine.aggregate(SPEC, maintained=maintained)
        read += time.perf_counter() - started
    return {
        "ingest_s": ingest,
        "read_s": read,
        "reads": len(batches),
        "groups": len(answers),
        "answers": answers,
    }


@pytest.fixture(scope="module")
def latency_rows(figure_report):
    maintained = _run(True)
    folded = _run(False)
    assert maintained["answers"] == folded["answers"], (
        "maintained aggregate diverged from enumerate-and-fold"
    )
    read_ratio = folded["read_s"] / maintained["read_s"]
    rows = []
    for label, run in (("maintained", maintained), ("enumerate-and-fold", folded)):
        rows.append(
            {
                "path": label,
                "groups": run["groups"],
                "ingest s": round(run["ingest_s"], 2),
                "ms/read": round(run["read_s"] / run["reads"] * 1000, 2),
                "read ratio": round(read_ratio, 2) if label == "maintained" else 1.0,
            }
        )
    figure_report.record(
        "Maintained aggregate vs enumerate-and-fold: per-site rolling sum, "
        f"{SITES} sites, {WINDOW}-reading window, {len(_workload()[1])} "
        f"batches of {BATCH_SIZE}",
        rows,
    )
    return rows


def test_maintained_read_speedup(latency_rows):
    """Gated claim: maintained aggregate reads are >= 5x enumerate-and-fold."""
    maintained = next(r for r in latency_rows if r["path"] == "maintained")
    assert maintained["read ratio"] >= READ_SPEEDUP_MIN, latency_rows


def test_maintenance_not_shifted_into_ingest(latency_rows):
    """The read win is not bought by hiding the fold in ingestion.

    Maintained ingest includes folding every result delta into the ring
    state; it must stay within 2x of the fold-free ingest path (in
    practice it is nearly identical — the delta fold is O(delta)).
    """
    maintained = next(r for r in latency_rows if r["path"] == "maintained")
    folded = next(r for r in latency_rows if r["path"] == "enumerate-and-fold")
    assert maintained["ingest s"] <= 2.0 * folded["ingest s"] + 0.5, latency_rows


# ----------------------------------------------------------------------
# subscription payload bytes: plain result deltas vs ring-folded frames
# ----------------------------------------------------------------------
def _delta(previous: Dict, current: Dict) -> Dict:
    out = {}
    for tup, mult in current.items():
        change = mult - previous.get(tup, 0)
        if change:
            out[tup] = change
    for tup, mult in previous.items():
        if tup not in current:
            out[tup] = -mult
    return out


@pytest.fixture(scope="module")
def payload_rows(figure_report):
    scenario = get_scenario("iot_rolling_sum")
    database = scenario.make_database(SEED_DB, 1.0)
    stream = list(scenario.make_stream(database, PAYLOAD_STREAM, SEED_STREAM))
    engine = HierarchicalEngine(scenario.query, epsilon=0.5).load(database)
    head = tuple(engine.query.head)
    ring = SPEC.ring
    plain_bytes = agg_bytes = 0
    plain_rows = agg_rows = commits = 0
    previous = dict(engine.result())
    for start in range(0, len(stream), PAYLOAD_BATCH):
        engine.apply_batch(stream[start : start + PAYLOAD_BATCH])
        current = dict(engine.result())
        delta = _delta(previous, current)
        previous = current
        if not delta:
            continue
        commits += 1
        # the plain push frame: every changed result tuple
        plain_payload = wire_pairs(delta.items())
        plain_rows += len(plain_payload)
        plain_bytes += len(json.dumps(plain_payload).encode("utf-8"))
        # the aggregate push frame: net per-group support/element rows
        # (the repro.net.server wire shape)
        agg_payload = [
            [list(group), support, ring.to_wire(element)]
            for group, (support, element) in fold_delta(
                SPEC, head, delta.items()
            ).items()
        ]
        agg_rows += len(agg_payload)
        agg_bytes += len(json.dumps(agg_payload).encode("utf-8"))
    rows = [
        {
            "frame": "plain delta",
            "commits": commits,
            "rows": plain_rows,
            "bytes": plain_bytes,
            "bytes ratio": 1.0,
        },
        {
            "frame": "aggregate delta",
            "commits": commits,
            "rows": agg_rows,
            "bytes": agg_bytes,
            "bytes ratio": round(plain_bytes / max(1, agg_bytes), 2),
        },
    ]
    figure_report.record(
        "Subscription payload bytes per commit: plain result deltas vs "
        f"ring-folded aggregate frames (iot_rolling_sum, {commits} commits "
        f"of {PAYLOAD_BATCH} updates)",
        rows,
    )
    return rows


def test_aggregate_frames_coalesce(payload_rows):
    """Hot-group churn coalesces: aggregate frames never outweigh plain ones."""
    plain = next(r for r in payload_rows if r["frame"] == "plain delta")
    agg = next(r for r in payload_rows if r["frame"] == "aggregate delta")
    assert agg["rows"] <= plain["rows"], payload_rows
    assert agg["bytes"] <= plain["bytes"], payload_rows
