"""Ablation A: the space/enumeration trade-off behind the ε knob.

The paper's trade-off buys lower delay with more materialized state (the
"extra space" column of Figures 4 and 5).  This ablation measures, for a
skewed and a uniform workload, how the total number of materialized view
tuples and the enumeration delay move as ε sweeps from 0 to 1 — isolating
the role of the heavy/light split: on uniform data everything is light and
the curves flatten; on skewed data the heavy keys keep the ε = 1 state from
exploding relative to eager full materialization.
"""

import pytest

from repro import StaticEngine
from repro.baselines import FullMaterializationEngine
from repro.bench import measure_enumeration_delay
from repro.workloads import path_query_database
from benchmarks.conftest import scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"
SIZE = scaled(1200)
EPSILONS = [0.0, 0.25, 0.5, 0.75, 1.0]


@pytest.fixture(scope="module")
def space_rows(figure_report):
    rows = []
    for label, skew in (("skewed (zipf 1.3)", 1.3), ("uniform", 0.0)):
        database = path_query_database(SIZE, skew=skew, seed=141)
        full = FullMaterializationEngine(QUERY).load(database)
        for epsilon in EPSILONS:
            engine = StaticEngine(QUERY, epsilon=epsilon).load(database)
            delay, _ = measure_enumeration_delay(engine, limit=1200)
            rows.append(
                {
                    "workload": label,
                    "epsilon": epsilon,
                    "N": database.size,
                    "view_tuples": engine.view_size(),
                    "full_result_tuples": full.materialized_size(),
                    "delay_max_s": delay.maximum,
                    "preprocess_s": engine.preprocessing_seconds,
                }
            )
    figure_report.record(
        "Ablation A: materialized state vs enumeration delay across epsilon", rows
    )
    return rows


def test_ablation_space_monotone_in_epsilon(space_rows, benchmark):
    benchmark(lambda: None)
    for label in {row["workload"] for row in space_rows}:
        series = [row for row in space_rows if row["workload"] == label]
        assert series[0]["view_tuples"] <= series[-1]["view_tuples"]


@pytest.mark.parametrize("epsilon", [0.0, 1.0])
def test_ablation_space_preprocessing(benchmark, epsilon):
    database = path_query_database(scaled(700), skew=1.3, seed=142)
    benchmark(lambda: StaticEngine(QUERY, epsilon=epsilon).load(database))
