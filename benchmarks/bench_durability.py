"""Durability cost and recovery speed: the price of surviving a crash.

Two claims, both recorded in ``BENCH_trajectory.json`` and re-checked by
``tools/bench_gate.py``:

* **WAL-on overhead ≤ 30% per tuple** for batched ingestion with
  per-commit fsync (batch size 100).  One WAL record per accepted batch
  amortizes the frame/encode cost and the fsync over the whole batch, so
  durability rides along with the PR 1 batching win instead of fighting
  it.  The table also records ``fsync=False`` (OS-buffered flushes — an
  order of magnitude cheaper per commit, but a crash may lose the
  buffered tail) and the single-update fsync row, which is *deliberately
  not asserted*: one fsync per tuple is exactly the regime where fsync
  batching loses, see ``docs/architecture.md`` §12.
* **Checkpointed recovery ≤ 0.5× replay-everything recovery** for a
  WAL of ``scaled(100_000)`` update tuples.  A checkpoint is a paid-up
  prefix of the log: recovery loads the newest one and replays only the
  tail, while a checkpoint-free log replays every record through the
  normal batch path.

Timings are best-of-``ATTEMPTS`` fresh runs, like the other benchmark
modules: scheduling noise on a busy host only ever inflates a run.
"""

import time

import pytest

from repro.core.api import HierarchicalEngine
from repro.data.database import Database
from repro.data.update import Update, UpdateBatch
from repro.durability import DurabilityConfig, recover_engine
from benchmarks.conftest import scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"
DOMAIN_B = 50
EPSILON = 0.5
OVERHEAD_TUPLES = scaled(20_000)
RECOVERY_TUPLES = scaled(100_000)
BATCH = 100
ATTEMPTS = 5  # fsync latency is the noisiest timer on a busy host
# the asserted claims (mirrored in BENCH_trajectory.json)
MAX_WAL_OVERHEAD = 1.30
MAX_CHECKPOINTED_RECOVERY_RATIO = 0.50


def make_database():
    database = Database()
    r = database.create_relation("R", ("A", "B"))
    s = database.create_relation("S", ("B", "C"))
    for b in range(DOMAIN_B):
        s.apply_delta((b, b), 1)
        r.apply_delta((-b - 1, b), 1)
    return database


def make_batches(tuples, batch_size):
    """Insert-only batches of fresh tuples: every result row is new, so
    the workload exercises view maintenance on every single update."""
    batches, current = [], UpdateBatch()
    for index in range(tuples):
        current.add(Update("R", (index, index % DOMAIN_B), 1))
        if current.source_count >= batch_size:
            batches.append(current)
            current = UpdateBatch()
    if current.source_count:
        batches.append(current)
    return batches


def ingest(batches, durability=None):
    engine = HierarchicalEngine(QUERY, epsilon=EPSILON, durability=durability)
    engine.load(make_database())
    started = time.perf_counter()
    for batch in batches:
        engine.apply_batch(batch)
    elapsed = time.perf_counter() - started
    engine.close()
    return elapsed


def best_ingest(batches, config_factory):
    """Fastest of ATTEMPTS fresh runs, each into a fresh directory."""
    return min(
        ingest(batches, config_factory(attempt)) for attempt in range(ATTEMPTS)
    )


@pytest.fixture(scope="module")
def overhead_rows(figure_report, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("bench-durability-overhead")
    rows = []

    def record(name, batch_size, elapsed, baseline):
        rows.append(
            {
                "mode": name,
                "batch_size": batch_size,
                "total_s": elapsed,
                "per_tuple_us": elapsed / OVERHEAD_TUPLES * 1e6,
                "tuples_per_s": OVERHEAD_TUPLES / elapsed,
                "overhead_vs_memory": elapsed / baseline,
            }
        )

    batches = make_batches(OVERHEAD_TUPLES, BATCH)
    memory = best_ingest(batches, lambda attempt: None)
    record("in-memory", BATCH, memory, memory)
    for fsync, name in ((True, "wal fsync=True"), (False, "wal fsync=False")):
        elapsed = best_ingest(
            batches,
            lambda attempt, fsync=fsync: DurabilityConfig(
                str(tmp_path / f"{fsync}-{attempt}"),
                fsync=fsync,
                checkpoint_interval=None,
            ),
        )
        record(name, BATCH, elapsed, memory)

    # the cautionary row: one fsync per *tuple* — recorded, not asserted
    singles = make_batches(scaled(2_000), 1)
    single_memory = best_ingest(singles, lambda attempt: None)
    single_durable = best_ingest(
        singles,
        lambda attempt: DurabilityConfig(
            str(tmp_path / f"single-{attempt}"),
            fsync=True,
            checkpoint_interval=None,
        ),
    )
    rows.append(
        {
            "mode": "wal fsync=True (per-tuple commits)",
            "batch_size": 1,
            "total_s": single_durable,
            "per_tuple_us": single_durable / scaled(2_000) * 1e6,
            "tuples_per_s": scaled(2_000) / single_durable,
            "overhead_vs_memory": single_durable / single_memory,
        }
    )

    figure_report.record(
        f"Durability overhead: per-tuple ingestion cost with the WAL on "
        f"({OVERHEAD_TUPLES} tuples, batch={BATCH}, eps={EPSILON})",
        rows,
    )
    return rows


@pytest.fixture(scope="module")
def recovery_rows(figure_report, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("bench-durability-recovery")
    batches = make_batches(RECOVERY_TUPLES, BATCH)
    rows = []

    def timed_recovery(name, interval):
        config = DurabilityConfig(
            str(tmp_path / name),
            fsync=False,  # the log's *size*, not its fsync policy, is under test
            checkpoint_interval=interval,
        )
        ingest_s = ingest(batches, config)
        started = time.perf_counter()
        recovered, report = recover_engine(config.directory, config)
        recovery_s = time.perf_counter() - started
        assert report.final_version == len(batches)
        recovered.close()
        rows.append(
            {
                "strategy": name,
                "checkpoint_interval": interval or 0,
                "wal_tuples": RECOVERY_TUPLES,
                "ingest_s": ingest_s,
                "recovery_s": recovery_s,
                "replayed_records": report.replayed_records,
                "checkpoint_version": report.checkpoint_version,
            }
        )
        return recovery_s

    replay_all = timed_recovery("replay-all", None)
    interval = max(1, len(batches) // 10)
    checkpointed = timed_recovery("checkpointed", interval)

    started = time.perf_counter()
    ingest(batches)
    rebuild = time.perf_counter() - started
    rows.append(
        {
            "strategy": "rebuild-from-source (no durability)",
            "checkpoint_interval": 0,
            "wal_tuples": RECOVERY_TUPLES,
            "ingest_s": rebuild,
            "recovery_s": rebuild,
            "replayed_records": 0,
            "checkpoint_version": 0,
        }
    )
    for row in rows:
        row["vs_replay_all"] = row["recovery_s"] / replay_all
    figure_report.record(
        f"Recovery time for a {RECOVERY_TUPLES}-update WAL "
        f"(batch={BATCH}, eps={EPSILON})",
        rows,
    )
    return rows


def test_batched_wal_overhead_within_30pct(overhead_rows, benchmark):
    benchmark(lambda: None)
    by_mode = {row["mode"]: row for row in overhead_rows}
    assert by_mode["wal fsync=True"]["overhead_vs_memory"] <= MAX_WAL_OVERHEAD
    assert by_mode["wal fsync=False"]["overhead_vs_memory"] <= MAX_WAL_OVERHEAD


def test_checkpointed_recovery_beats_full_replay(recovery_rows, benchmark):
    benchmark(lambda: None)
    by_strategy = {row["strategy"]: row for row in recovery_rows}
    checkpointed = by_strategy["checkpointed"]
    assert checkpointed["vs_replay_all"] <= MAX_CHECKPOINTED_RECOVERY_RATIO
    # the checkpoint genuinely shortened the replayed tail
    assert (
        checkpointed["replayed_records"]
        < by_strategy["replay-all"]["replayed_records"]
    )


def test_recovery_replays_the_whole_log_without_checkpoints(
    recovery_rows, benchmark
):
    benchmark(lambda: None)
    by_strategy = {row["strategy"]: row for row in recovery_rows}
    assert by_strategy["replay-all"]["replayed_records"] == (
        RECOVERY_TUPLES + BATCH - 1
    ) // BATCH
