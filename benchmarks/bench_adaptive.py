"""Adaptive ε retuning vs every fixed ε on phase-shifting traffic.

The paper's ε knob is a per-phase decision, not a per-deployment one: a
write burst wants small ε (updates ``O(N^{δε})``), a read-heavy serving
phase wants large ε (delay ``O(N^{1−ε})``).  The ``phase_shift`` scenario
alternates the two over hot join keys sized so that *every* fixed ε loses
some phase — small ε serves pages through the all-heavy regime's per-tuple
lookups, large ε pays ``O(degree)`` view propagation per hot-key update.

The adaptive engine runs the same op sequence with an
:class:`~repro.adaptive.AdaptiveController` consulted after every op: EWMA
telemetry detects the phase, the ``expected_exponents`` cost model prices
the candidate grid, and a hysteresis bar decides when a retune (one
major-rebalance pass) is worth it.

The recorded table asserts the headline claims on ``phase_shift``:

* adaptive total wall-clock is at least **2× better than the worst fixed
  ε**, and
* within **20% of the best fixed ε** (in the recorded runs it beats the
  best outright: the write phases run at the small-ε rate, the read phases
  at the large-ε rate, and a handful of retunes is cheaper than the gap).

A second table records the ``read_burst`` scenario — one regime change —
where a single retune must rescue an ingestion-tuned engine.
"""

import time

import pytest

from repro import AdaptiveController, HierarchicalEngine
from repro.workloads import (
    PHASE_SHIFT_QUERY,
    phase_shift_database,
    phase_shift_ops,
    read_burst_ops,
)
from benchmarks.conftest import scaled

SIZE = scaled(1200)
# the floor keeps the write-phase savings visible at smoke scale, where
# the per-phase adaptation overheads (one slow read + one retune) are fixed
WRITES_PER_PHASE = max(scaled(4000), 1500)
READS_PER_PHASE = 25
READ_LIMIT = 100
PHASES = 4
EPSILON_GRID = (0.0, 0.5, 1.0)
# The adaptive grid keeps the interior point: the cost model scales
# observed costs by asymptotic N^Δ ratios, which over-estimates far moves
# (deliberate damping), so ε = 0.5 is the stepping stone that lets the
# controller escape the all-heavy regime as soon as reads appear.
ADAPTIVE_GRID = EPSILON_GRID
ADAPTIVE_START = 0.5
ATTEMPTS = 2  # best-of-N: noise on a busy host only ever inflates a run


def _consume(engine, limit):
    produced = 0
    for _ in engine.enumerate():
        produced += 1
        if produced >= limit:
            break


def _run_ops(epsilon, database, ops, adaptive):
    engine = HierarchicalEngine(PHASE_SHIFT_QUERY, epsilon=epsilon)
    engine.load(database)
    controller = (
        # cooldown > the read-phase event count: at most one retune per
        # phase, so the controller cannot thrash inside a mixed phase
        AdaptiveController(
            engine, epsilons=ADAPTIVE_GRID, hysteresis=2.0, cooldown=48
        )
        if adaptive
        else None
    )
    started = time.perf_counter()
    for kind, payload in ops:
        if kind == "write":
            engine.apply(payload)
        else:
            _consume(engine, payload)
        if controller is not None:
            controller.maybe_retune()
    elapsed = time.perf_counter() - started
    return elapsed, engine, controller


def _best_of(epsilon, database, ops, adaptive):
    """Fastest of ATTEMPTS fresh runs (scheduling spikes only slow a run)."""
    best = None
    for _ in range(ATTEMPTS):
        attempt = _run_ops(epsilon, database, ops, adaptive)
        if best is None or attempt[0] < best[0]:
            best = attempt
    return best


def _ops_table(database, ops, figure_report, title):
    writes = sum(1 for kind, _payload in ops if kind == "write")
    reads = len(ops) - writes
    rows = []
    for epsilon in EPSILON_GRID:
        elapsed, engine, _controller = _best_of(epsilon, database, ops, False)
        rows.append(
            {
                "engine": f"fixed(eps={epsilon})",
                "total_s": elapsed,
                "final_eps": engine.epsilon,
                "retunes": engine.rebalance_stats.retunes,
                "major_rebalances": engine.rebalance_stats.major_rebalances,
                "read_s": engine.telemetry.read_seconds,
                "write_s": engine.telemetry.update_seconds,
            }
        )
    elapsed, engine, controller = _best_of(ADAPTIVE_START, database, ops, True)
    rows.append(
        {
            "engine": f"adaptive(start={ADAPTIVE_START})",
            "total_s": elapsed,
            "final_eps": engine.epsilon,
            "retunes": engine.rebalance_stats.retunes,
            "major_rebalances": engine.rebalance_stats.major_rebalances,
            "read_s": engine.telemetry.read_seconds,
            "write_s": engine.telemetry.update_seconds,
        }
    )
    fixed_totals = [row["total_s"] for row in rows[:-1]]
    for row in rows:
        row["vs_best_fixed"] = row["total_s"] / min(fixed_totals)
        row["vs_worst_fixed"] = row["total_s"] / max(fixed_totals)
    figure_report.record(
        f"{title} ({writes} writes, {reads} page reads of {READ_LIMIT}, "
        f"N={database.size}, grid={EPSILON_GRID})",
        rows,
    )
    return rows


@pytest.fixture(scope="module")
def phase_shift_rows(figure_report):
    database = phase_shift_database(size=SIZE, seed=101)
    ops = phase_shift_ops(
        database,
        phases=PHASES,
        writes_per_phase=WRITES_PER_PHASE,
        reads_per_phase=READS_PER_PHASE,
        read_limit=READ_LIMIT,
        seed=102,
    )
    return _ops_table(
        database, ops, figure_report, "Adaptive vs fixed epsilon on phase_shift"
    )


@pytest.fixture(scope="module")
def read_burst_rows(figure_report):
    database = phase_shift_database(size=SIZE, seed=111)
    ops = read_burst_ops(
        database,
        writes=2 * WRITES_PER_PHASE,
        reads=2 * READS_PER_PHASE,
        read_limit=READ_LIMIT,
        seed=112,
    )
    return _ops_table(
        database, ops, figure_report, "Adaptive vs fixed epsilon on read_burst"
    )


def _by_engine(rows):
    return {row["engine"]: row for row in rows}


def test_adaptive_beats_worst_fixed_by_2x(phase_shift_rows, benchmark):
    benchmark(lambda: None)
    adaptive = phase_shift_rows[-1]
    worst = max(row["total_s"] for row in phase_shift_rows[:-1])
    assert adaptive["engine"].startswith("adaptive")
    assert worst >= 2.0 * adaptive["total_s"]


def test_adaptive_within_20pct_of_best_fixed(phase_shift_rows, benchmark):
    benchmark(lambda: None)
    adaptive = phase_shift_rows[-1]
    best = min(row["total_s"] for row in phase_shift_rows[:-1])
    assert adaptive["total_s"] <= 1.2 * best


def test_adaptive_actually_retuned(phase_shift_rows, benchmark):
    """The win must come from retuning, not from a lucky fixed start."""
    benchmark(lambda: None)
    adaptive = phase_shift_rows[-1]
    assert adaptive["retunes"] >= PHASES - 1
    for row in phase_shift_rows[:-1]:
        assert row["retunes"] == 0


def test_read_burst_recovered_by_retuning(read_burst_rows, benchmark):
    """One regime change: adaptive must escape the slow-read regime."""
    benchmark(lambda: None)
    adaptive = read_burst_rows[-1]
    worst = max(row["total_s"] for row in read_burst_rows[:-1])
    assert adaptive["retunes"] >= 1
    assert worst >= 1.5 * adaptive["total_s"]
