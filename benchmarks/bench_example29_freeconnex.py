"""Example 29: the free-connex δ₁-hierarchical query ``Q(A) = R(A, B), S(B)``.

Static width 1 means preprocessing stays linear for every ε; the dynamic
width 1 means updates cost O(N^ε) while the delay is O(N^{1−ε}).  The
benchmark sweeps ε and also exercises the query whose updates hit the
smaller unary relation (the paper's Figure 24 discussion).
"""

import pytest

from repro import DynamicEngine, Update
from repro.bench import measure_enumeration_delay, measure_update_stream
from repro.workloads import zipf_pairs, zipf_values
from repro.data.database import Database
from benchmarks.conftest import scaled

QUERY = "Q(A) = R(A, B), S(B)"
SIZE = scaled(1500)
EPSILONS = [0.0, 0.5, 1.0]


def make_database(size, seed=131):
    domain = max(4, size // 3)
    r = zipf_pairs(size, domain, domain, exponent=1.2, seed=seed, key_position=1)
    s = [(b,) for b in zipf_values(size // 2, domain, 0.8, seed + 1)]
    return Database.from_dict({"R": (("A", "B"), r), "S": (("B",), s)})


@pytest.fixture(scope="module")
def example29_rows(figure_report):
    database = make_database(SIZE)
    domain = max(4, SIZE // 3)
    rows = []
    for epsilon in EPSILONS:
        engine = DynamicEngine(QUERY, epsilon=epsilon).load(database)
        updates = [
            Update("S", (b,), 1) for b in zipf_values(150, domain, 1.0, seed=132)
        ]
        update_measurement = measure_update_stream(engine, updates)
        delay, _ = measure_enumeration_delay(engine, limit=1500)
        rows.append(
            {
                "epsilon": epsilon,
                "N": database.size,
                "w": engine.static_width,
                "delta": engine.dynamic_width,
                "preprocess_s": engine.preprocessing_seconds,
                "update_mean_s": update_measurement.mean,
                "delay_max_s": delay.maximum,
                "view_tuples": engine.view_size(),
            }
        )
    figure_report.record("Example 29 / Figure 24: Q(A) = R(A, B), S(B)", rows)
    return rows


def test_example29_width_is_one(example29_rows, benchmark):
    benchmark(lambda: None)
    assert all(row["w"] == 1 for row in example29_rows)
    assert all(row["delta"] == 1 for row in example29_rows)


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_example29_update_to_unary_relation(benchmark, epsilon, example29_rows):
    database = make_database(scaled(800), seed=133)
    domain = max(4, scaled(800) // 3)
    engine = DynamicEngine(QUERY, epsilon=epsilon).load(database)
    keys = zipf_values(2000, domain, 1.0, seed=134)
    counter = {"i": 0}
    inserted = []

    def one_update():
        index = counter["i"]
        counter["i"] += 1
        # alternate inserts with deletes of previously inserted tuples so the
        # database size stays stable across benchmark rounds
        if inserted and index % 2 == 1:
            key = inserted.pop()
            engine.update("S", (key,), -1)
        else:
            key = keys[index % len(keys)]
            inserted.append(key)
            engine.update("S", (key,), 1)

    benchmark(one_update)
