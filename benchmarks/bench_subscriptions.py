"""Push-based subscriptions: hundreds of concurrent subscribers, one wire.

The networked serving layer (:mod:`repro.net`) pushes one consolidated
result delta per engine commit to every subscriber, instead of having
each of them re-read the full result.  This benchmark measures that
fan-out at scale and asserts the two claims the design stands on:

* **Consistency at scale** — ``SUBSCRIBERS`` concurrent subscribers (200
  at default scale, all multiplexed on one event loop against one
  server) each start from the full result in their subscribe response
  and then apply only the pushed per-commit deltas.  After the writer
  finishes, *every* subscriber's mirrored state must equal the oracle's
  final result at the final version — the recorded ``consistency`` ratio
  (converged subscribers / subscribers) must be 1.0.
* **Bounded memory under backpressure** — one deliberately slow
  subscriber (tiny kernel buffers, queue bound of 1, and it simply stops
  reading while the writer runs) must be switched to the coalescing
  resync path: the server's per-subscriber queue never grows beyond the
  configured bound (asserted via the ``max_queue_depth`` high-water
  mark), at least one resync is recorded, and the slow subscriber still
  converges to the oracle once it resumes reading.

The recorded table reports fan-out throughput (delta frames pushed per
second) alongside the asserted ratios.
"""

import asyncio
import random
import socket
import threading
import time

import pytest

from repro import Database, HierarchicalEngine, Update
from repro.baselines.naive import NaiveRecomputeEngine
from repro.core.serving import EngineServer
from repro.net import AsyncEngineClient, ServerConfig, ServerThread
from repro.net.protocol import read_frame, unwire_pairs, write_frame
from benchmarks.conftest import scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"
DOM = 24
SUBSCRIBERS = max(40, scaled(200))
COMMITS = max(12, scaled(30))
BATCH_SIZE = 6
QUEUE_BOUND = 16
SEED = 4242


def seed_database() -> Database:
    """A join with a hot key so per-commit deltas have real fan-out."""
    rng = random.Random(SEED)
    database = Database()
    database.create_relation("R", ("A", "B"))
    database.create_relation("S", ("B", "C"))
    for c in range(600):
        database.relation("S").apply_delta((0, c), 1)
    for _ in range(150):
        database.relation("R").apply_delta(
            (rng.randrange(DOM), rng.randrange(DOM)), 1
        )
        database.relation("S").apply_delta(
            (rng.randrange(1, DOM), rng.randrange(DOM)), 1
        )
    return database


def commit_stream():
    """COMMITS mixed batches; each opens with a hot-key insert so every
    pushed delta frame has real width (the slow subscriber's stalled
    connection must overflow its queue within a few commits, not hide
    behind kernel buffering)."""
    rng = random.Random(SEED + 1)
    inserted = []
    batches = []
    for _ in range(COMMITS):
        batch = [Update("R", (rng.randrange(DOM), 0), 1)]
        for _ in range(BATCH_SIZE - 1):
            if inserted and rng.random() < 0.35:
                relation, tup = inserted.pop(rng.randrange(len(inserted)))
                batch.append(Update(relation, tup, -1))
            else:
                relation = rng.choice(("R", "S"))
                tup = (rng.randrange(DOM), rng.randrange(1, DOM))
                inserted.append((relation, tup))
                batch.append(Update(relation, tup, 1))
        batches.append(batch)
    return batches


class SlowSubscriber:
    """A raw-socket subscriber that stops reading while the writer runs."""

    def __init__(self, port: int) -> None:
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        self.sock.connect(("127.0.0.1", port))
        write_frame(self.sock, {"op": "subscribe", "id": 1, "queue": 1})
        reply = read_frame(self.sock)
        assert reply.get("ok"), reply
        self.version = reply["version"]
        self.result = {tup: mult for tup, mult in unwire_pairs(reply["result"])}
        self.resyncs_seen = 0

    def catch_up(self, target_version: int, timeout: float = 60.0) -> None:
        self.sock.settimeout(timeout)
        deadline = time.perf_counter() + timeout
        while self.version < target_version and time.perf_counter() < deadline:
            message = read_frame(self.sock)
            if "sub" not in message:
                continue
            if message["kind"] == "delta":
                if message["version"] <= self.version:
                    continue
                for tup, mult in unwire_pairs(message["delta"]):
                    updated = self.result.get(tup, 0) + mult
                    if updated:
                        self.result[tup] = updated
                    else:
                        self.result.pop(tup, None)
                self.version = message["version"]
            elif message["kind"] == "resync":
                self.result = {
                    tup: mult for tup, mult in unwire_pairs(message["result"])
                }
                self.version = message["version"]
                self.resyncs_seen += 1

    def close(self) -> None:
        self.sock.close()


async def run_fanout(port: int, batches, oracle_final, final_version: dict):
    """Connect SUBSCRIBERS clients, subscribe all, then drive the writer."""
    clients = []
    for _ in range(SUBSCRIBERS):
        clients.append(await AsyncEngineClient.connect("127.0.0.1", port))
    subscriptions = await asyncio.gather(*(c.subscribe() for c in clients))

    writer = clients[0]
    started = time.perf_counter()
    for batch in batches:
        final_version["version"] = await writer.apply_batch(batch)
    write_seconds = time.perf_counter() - started

    waits = await asyncio.gather(
        *(
            sub.wait_for_version(final_version["version"], timeout=120.0)
            for sub in subscriptions
        )
    )
    fanout_seconds = time.perf_counter() - started
    converged = sum(
        1
        for sub, waited in zip(subscriptions, waits)
        if waited and sub.result == oracle_final
    )
    deltas_applied = sum(sub.deltas_applied for sub in subscriptions)
    await asyncio.gather(*(c.close() for c in clients))
    return {
        "converged": converged,
        "deltas_applied": deltas_applied,
        "write_seconds": write_seconds,
        "fanout_seconds": fanout_seconds,
    }


@pytest.mark.benchmark(group="subscriptions")
def test_subscription_fanout_and_backpressure(figure_report):
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(seed_database())
    oracle = NaiveRecomputeEngine(QUERY)
    oracle.load(seed_database())
    serving = EngineServer(engine, mode="snapshot")
    config = ServerConfig(
        max_connections=SUBSCRIBERS + 16,
        max_subscriptions=SUBSCRIBERS + 16,
        subscriber_queue_size=QUEUE_BOUND,
        executor_threads=4,
        # Tiny buffers: a subscriber that stops reading stalls its sender
        # within a few frames, exercising the coalescing resync path
        # instead of hiding behind megabytes of kernel buffering.
        send_buffer_bytes=8192,
    )
    batches = commit_stream()
    for batch in batches:
        for update in batch:
            oracle.update(update.relation, update.tuple, update.multiplicity)
    oracle_final = oracle.result()

    with ServerThread(serving, config) as handle:
        slow = SlowSubscriber(handle.port)
        final_version = {"version": 0}
        stats = asyncio.run(
            run_fanout(handle.port, batches, oracle_final, final_version)
        )
        # the writer is done and every fast subscriber has converged; now
        # let the deliberately slow subscriber drain and resync
        slow.catch_up(final_version["version"])
        slow_converged = slow.result == oracle_final
        slow.close()
        net = handle.server.stats.as_dict()

    engine.close()

    consistency = stats["converged"] / SUBSCRIBERS
    pushes_per_second = (
        net["deltas_pushed"] / stats["fanout_seconds"]
        if stats["fanout_seconds"] > 0
        else 0.0
    )
    figure_report.record(
        "Push-based subscription fan-out (one server, one event loop)",
        [
            {
                "subscribers": SUBSCRIBERS,
                "commits": COMMITS,
                "deltas_pushed": net["deltas_pushed"],
                "deltas_applied": stats["deltas_applied"],
                "pushes_per_s": round(pushes_per_second),
                "consistency": consistency,
                "resyncs": net["resyncs"],
                "max_queue_depth": net["max_queue_depth"],
                "queue_bound": QUEUE_BOUND,
                "slow_converged": slow_converged,
            }
        ],
    )

    # headline claims (mirrored in BENCH_trajectory.json)
    assert consistency == 1.0, (
        f"only {stats['converged']}/{SUBSCRIBERS} subscribers reproduced "
        "the oracle from pushed deltas"
    )
    assert net["max_queue_depth"] <= QUEUE_BOUND, (
        f"a subscriber queue reached {net['max_queue_depth']} frames, "
        f"above the configured bound of {QUEUE_BOUND}"
    )
    assert net["resyncs"] >= 1, (
        "the deliberately slow subscriber never triggered the "
        "coalescing resync path"
    )
    assert slow_converged, "the slow subscriber diverged after its resync"
