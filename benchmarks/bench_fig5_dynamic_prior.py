"""Figure 5: prior work on dynamic evaluation, compared on one workload.

The comparison pits IVM^ε (at ε ∈ {0, ½, 1}) against the baseline engines
standing in for the prior systems of the figure and of Section 2:

* classical first-order IVM (materialized result + delta queries);
* full recomputation;
* full materialization (the "conjunctive queries, O(N^w)/O(1)/O(N^δ)" row);
* the free-connex / q-hierarchical linear-preprocessing engine
  (DynYannakakis / F-IVM analogue) on a q-hierarchical query, which is the
  figure's O(N)/O(1)/O(1) row.
"""

import pytest

from repro import DynamicEngine, HierarchicalEngine
from repro.baselines import (
    FirstOrderIVMEngine,
    FreeConnexEngine,
    FullMaterializationEngine,
    NaiveRecomputeEngine,
)
from repro.bench import compare_engines
from repro.workloads import mixed_stream, path_query_database
from benchmarks.conftest import make_update_cycler, scaled

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
QHIER_QUERY = "Q(A, B) = R(A, B), S(B, C)"
SIZE = scaled(1000)
UPDATES = 150


@pytest.fixture(scope="module")
def dynamic_prior_rows(figure_report):
    database = path_query_database(SIZE, skew=1.2, seed=101)
    rows = compare_engines(
        PATH_QUERY,
        database,
        {
            "IVM^eps eps=0.0": lambda: HierarchicalEngine(PATH_QUERY, epsilon=0.0),
            "IVM^eps eps=0.5": lambda: HierarchicalEngine(PATH_QUERY, epsilon=0.5),
            "IVM^eps eps=1.0": lambda: HierarchicalEngine(PATH_QUERY, epsilon=1.0),
            "first-order IVM": lambda: FirstOrderIVMEngine(PATH_QUERY),
            "full materialization": lambda: FullMaterializationEngine(PATH_QUERY),
            "recompute": lambda: NaiveRecomputeEngine(PATH_QUERY),
        },
        updates_factory=lambda: mixed_stream(database, UPDATES, seed=102, domain=SIZE),
        delay_limit=1200,
    )
    for row in rows:
        row["query"] = "hierarchical w=2 (Example 28)"
    qhier_database = path_query_database(SIZE, skew=1.2, seed=103)
    qhier_rows = compare_engines(
        QHIER_QUERY,
        qhier_database,
        {
            "q-hierarchical via free-connex views": lambda: FreeConnexEngine(QHIER_QUERY),
            "q-hierarchical via IVM^eps": lambda: HierarchicalEngine(QHIER_QUERY, epsilon=1.0),
        },
        updates_factory=lambda: mixed_stream(qhier_database, UPDATES, seed=104, domain=SIZE),
        delay_limit=1200,
    )
    for row in qhier_rows:
        row["query"] = "q-hierarchical (O(N)/O(1)/O(1) row)"
    all_rows = rows + qhier_rows
    figure_report.record("Figure 5: dynamic prior-work comparison", all_rows)
    return all_rows


ENGINES = {
    "ivm_eps_05": lambda: HierarchicalEngine(PATH_QUERY, epsilon=0.5),
    "first_order_ivm": lambda: FirstOrderIVMEngine(PATH_QUERY),
    "recompute": lambda: NaiveRecomputeEngine(PATH_QUERY),
}


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_fig5_update_per_engine(benchmark, name, dynamic_prior_rows):
    database = path_query_database(scaled(600), skew=1.2, seed=105)
    engine = ENGINES[name]()
    engine.load(database)
    benchmark(make_update_cycler(engine, "R", 2, database.size, seed=106))


def test_fig5_recompute_is_slowest_updater(dynamic_prior_rows, benchmark):
    benchmark(lambda: None)
    path_rows = {
        row["engine"]: row
        for row in dynamic_prior_rows
        if row["query"].startswith("hierarchical")
    }
    assert (
        path_rows["recompute"]["update_mean_s"]
        > path_rows["IVM^eps eps=0.5"]["update_mean_s"]
    )
