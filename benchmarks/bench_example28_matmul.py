"""Example 28: matrix multiplication through ``Q(A, C) = R(A, B), S(B, C)``.

With ε = ½ the paper promises O(N^{3/2}) preprocessing and O(N^{1/2}) delay
(N = n² for n × n matrices).  The benchmark verifies the enumerated support
against numpy at two matrix sizes, records the preprocessing/delay scaling,
and times enumeration at the ε corners.
"""

import pytest

from repro import StaticEngine
from repro.bench import fit_exponent, measure_enumeration_delay
from repro.workloads import expected_product_support, matmul_database
from benchmarks.conftest import scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"
MATRIX_SIZES = [scaled(32), scaled(64)]


@pytest.fixture(scope="module")
def matmul_rows(figure_report):
    rows = []
    for n in MATRIX_SIZES:
        database, left, right = matmul_database(n, density=0.15, seed=121)
        for epsilon in (0.0, 0.5, 1.0):
            engine = StaticEngine(QUERY, epsilon=epsilon).load(database)
            assert set(engine.result()) == expected_product_support(left, right)
            delay, produced = measure_enumeration_delay(engine, limit=2500)
            rows.append(
                {
                    "n": n,
                    "N": database.size,
                    "epsilon": epsilon,
                    "preprocess_s": engine.preprocessing_seconds,
                    "delay_mean_s": delay.mean,
                    "delay_max_s": delay.maximum,
                    "output_tuples": produced,
                }
            )
    # scaling of preprocessing at eps = 0.5 across the two sizes
    eps_half = [row for row in rows if row["epsilon"] == 0.5]
    fit = fit_exponent([row["N"] for row in eps_half], [row["preprocess_s"] for row in eps_half])
    rows.append(
        {
            "n": "fit",
            "N": "-",
            "epsilon": 0.5,
            "preprocess_s": fit.exponent,
            "delay_mean_s": 1.5,
            "delay_max_s": 0.0,
            "output_tuples": 0,
        }
    )
    figure_report.record(
        "Example 28: Boolean matrix multiplication (last row: fitted vs 1.5 exponent)",
        rows,
    )
    return rows


@pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
def test_example28_enumeration(benchmark, epsilon, matmul_rows):
    database, left, right = matmul_database(MATRIX_SIZES[0], density=0.15, seed=122)
    engine = StaticEngine(QUERY, epsilon=epsilon).load(database)

    def enumerate_some():
        count = 0
        for _ in engine.enumerate():
            count += 1
            if count >= 400:
                break
        return count

    benchmark(enumerate_some)


def test_example28_preprocessing_eps_half(benchmark):
    database, _left, _right = matmul_database(MATRIX_SIZES[0], density=0.15, seed=123)
    benchmark(lambda: StaticEngine(QUERY, epsilon=0.5).load(database))
