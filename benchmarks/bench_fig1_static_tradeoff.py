"""Figure 1 (middle): the static preprocessing/delay trade-off.

One curve point per ε for the non-free-connex query ``Q(A, C) = R(A, B),
S(B, C)`` (the blue segment of the figure), plus the single point achieved by
free-connex queries (linear preprocessing, constant delay — here Example 18's
query), which is where the prior-work points of the figure sit.
"""

import pytest

from repro import StaticEngine
from repro.bench import measure_enumeration_delay
from repro.workloads import free_connex_database, path_query_database
from benchmarks.conftest import scaled

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
FREE_CONNEX_QUERY = "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"
EPSILONS = [0.0, 0.25, 0.5, 0.75, 1.0]
SIZE = scaled(1500)


@pytest.fixture(scope="module")
def static_tradeoff_rows(figure_report):
    database = path_query_database(SIZE, skew=1.1, seed=51)
    rows = []
    for epsilon in EPSILONS:
        engine = StaticEngine(PATH_QUERY, epsilon=epsilon)
        engine.load(database)
        delay, _ = measure_enumeration_delay(engine, limit=1500)
        rows.append(
            {
                "query": "hierarchical (w=2)",
                "epsilon": epsilon,
                "N": database.size,
                "preprocess_s": engine.preprocessing_seconds,
                "view_tuples": engine.view_size(),
                "delay_max_s": delay.maximum,
                "delay_mean_s": delay.mean,
            }
        )
    fc_database = free_connex_database(SIZE, seed=52)
    fc_engine = StaticEngine(FREE_CONNEX_QUERY, epsilon=1.0)
    fc_engine.load(fc_database)
    fc_delay, _ = measure_enumeration_delay(fc_engine, limit=1500)
    rows.append(
        {
            "query": "free-connex (w=1)",
            "epsilon": 1.0,
            "N": fc_database.size,
            "preprocess_s": fc_engine.preprocessing_seconds,
            "view_tuples": fc_engine.view_size(),
            "delay_max_s": fc_delay.maximum,
            "delay_mean_s": fc_delay.mean,
        }
    )
    figure_report.record(
        "Figure 1 (middle): static preprocessing/delay trade-off", rows
    )
    return rows


@pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
def test_fig1_static_preprocessing(benchmark, epsilon, static_tradeoff_rows):
    database = path_query_database(scaled(700), skew=1.1, seed=53)
    benchmark(lambda: StaticEngine(PATH_QUERY, epsilon=epsilon).load(database))
    # trade-off shape: preprocessing grows with ε, delay shrinks with ε
    hier = [r for r in static_tradeoff_rows if r["query"].startswith("hier")]
    assert hier[0]["view_tuples"] <= hier[-1]["view_tuples"]


def test_fig1_static_free_connex_preprocessing(benchmark):
    database = free_connex_database(scaled(700), seed=54)
    benchmark(lambda: StaticEngine(FREE_CONNEX_QUERY, epsilon=1.0).load(database))
