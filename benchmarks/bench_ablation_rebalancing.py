"""Ablation B: the cost and the necessity of minor/major rebalancing.

Rebalancing is what makes the update bound *amortized* (Section 6.2).  This
ablation drives a skew-shifting stream (one join key goes light → heavy →
light) and a growth stream (the database doubles several times) through the
engine with rebalancing enabled and disabled, comparing total maintenance
time and the partition state at the end.  With rebalancing disabled the
results stay correct (the view trees are still equivalent) but the partitions
drift away from the thresholds, which is exactly the degradation the paper's
amortization argument pays for.
"""

import time

import pytest

from repro import DynamicEngine
from repro.data.database import Database
from repro.workloads import growth_stream, skew_shift_stream
from benchmarks.conftest import scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"


def stable_database(size):
    return Database.from_dict(
        {
            "R": (("A", "B"), [(a, a % (size // 4 or 1)) for a in range(size)]),
            "S": (("B", "C"), [(b % (size // 4 or 1), b) for b in range(size)]),
        }
    )


@pytest.fixture(scope="module")
def rebalancing_rows(figure_report):
    size = scaled(600)
    rows = []
    for enabled in (True, False):
        database = stable_database(size)
        engine = DynamicEngine(QUERY, epsilon=0.5, enable_rebalancing=enabled)
        engine.load(database)
        stream = skew_shift_stream("R", 2, scaled(400), hot_key=0, seed=151)
        started = time.perf_counter()
        engine.apply_stream(stream)
        elapsed = time.perf_counter() - started
        stats = engine.rebalance_stats.as_dict()
        violations = 0
        for partition in engine._skew_plan.partitions:
            try:
                partition.check_loose(engine.threshold)
            except Exception:
                violations += 1
        rows.append(
            {
                "scenario": "skew shift",
                "rebalancing": "on" if enabled else "off",
                "updates": stats["updates"],
                "minor_rebalances": stats["minor_rebalances"],
                "major_rebalances": stats["major_rebalances"],
                "total_update_s": elapsed,
                "partition_violations": violations,
            }
        )
    for enabled in (True, False):
        database = Database.from_dict({"R": (("A", "B"), []), "S": (("B", "C"), [])})
        engine = DynamicEngine(QUERY, epsilon=0.5, enable_rebalancing=enabled)
        engine.load(database)
        stream = growth_stream("R", 2, scaled(500), domain=scaled(500), seed=152)
        started = time.perf_counter()
        engine.apply_stream(stream)
        elapsed = time.perf_counter() - started
        stats = engine.rebalance_stats.as_dict()
        rows.append(
            {
                "scenario": "growth from empty",
                "rebalancing": "on" if enabled else "off",
                "updates": stats["updates"],
                "minor_rebalances": stats["minor_rebalances"],
                "major_rebalances": stats["major_rebalances"],
                "total_update_s": elapsed,
                "partition_violations": 0,
            }
        )
    figure_report.record("Ablation B: rebalancing on vs off", rows)
    return rows


def test_ablation_rebalancing_keeps_invariants(rebalancing_rows, benchmark):
    benchmark(lambda: None)
    on_rows = [r for r in rebalancing_rows if r["rebalancing"] == "on"]
    assert all(row["partition_violations"] == 0 for row in on_rows)
    skew_on = next(r for r in on_rows if r["scenario"] == "skew shift")
    assert skew_on["minor_rebalances"] > 0


@pytest.mark.parametrize("enabled", [True, False])
def test_ablation_rebalancing_update_cost(benchmark, enabled):
    database = stable_database(scaled(400))
    engine = DynamicEngine(QUERY, epsilon=0.5, enable_rebalancing=enabled)
    engine.load(database)
    stream = list(skew_shift_stream("R", 2, 100000, hot_key=0, seed=153))
    counter = {"i": 0}

    def one_update():
        engine.apply(stream[counter["i"] % len(stream)])
        counter["i"] += 1

    benchmark(one_update)
