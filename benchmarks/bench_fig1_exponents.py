"""Figure 1 (left): runtime exponents as functions of ε.

For the δ₁-hierarchical query ``Q(A, C) = R(A, B), S(B, C)`` (w = 2, δ = 1)
the paper promises, as functions of ε: preprocessing exponent ``1 + ε``,
amortized update exponent ``ε``, enumeration delay exponent ``1 − ε``.
The module runs the workload at several database sizes for ε ∈ {0, ½, 1},
fits the measured exponents, and tabulates them against the theory; the
pytest-benchmark entries time the three runtime components at the middle
point ε = ½.
"""

import pytest

from repro import HierarchicalEngine
from repro.bench import scaling_experiment
from repro.workloads import mixed_stream, path_query_database
from benchmarks.conftest import make_update_cycler, scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"
SIZES = [scaled(300), scaled(600), scaled(1200)]
EPSILONS = [0.0, 0.5, 1.0]


@pytest.fixture(scope="module")
def exponent_rows(figure_report):
    rows = []
    for epsilon in EPSILONS:
        outcome = scaling_experiment(
            QUERY,
            lambda size: path_query_database(size, skew=1.1, seed=41),
            sizes=SIZES,
            epsilon=epsilon,
            updates_factory=lambda db, size: mixed_stream(db, 120, seed=42, domain=size),
            delay_limit=1200,
        )
        fits, theory = outcome["fits"], outcome["theory"]
        rows.append(
            {
                "epsilon": epsilon,
                "preproc_exp_fit": round(fits["preprocessing"].exponent, 2),
                "preproc_exp_theory": theory["preprocessing"],
                "update_exp_fit": round(fits["update"].exponent, 2),
                "update_exp_theory": theory["update"],
                "delay_exp_fit": round(fits["delay"].exponent, 2),
                "delay_exp_theory": theory["delay"],
            }
        )
    figure_report.record(
        "Figure 1 (left): measured vs theoretical exponents, Q(A,C)=R(A,B),S(B,C)",
        rows,
    )
    return rows


@pytest.fixture(scope="module")
def loaded_engine():
    database = path_query_database(SIZES[-1], skew=1.1, seed=41)
    engine = HierarchicalEngine(QUERY, epsilon=0.5)
    engine.load(database)
    return engine, database


def test_fig1_exponent_table(benchmark, exponent_rows):
    """The figure table itself; the benchmarked unit is one full enumeration."""
    database = path_query_database(scaled(300), skew=1.1, seed=41)
    engine = HierarchicalEngine(QUERY, epsilon=0.5).load(database)
    benchmark(lambda: sum(1 for _ in engine.enumerate()))
    # the orderings promised by the theory must hold in the fitted exponents
    by_eps = {row["epsilon"]: row for row in exponent_rows}
    assert by_eps[1.0]["preproc_exp_theory"] > by_eps[0.0]["preproc_exp_theory"]


def test_fig1_preprocessing_eps_half(benchmark):
    database = path_query_database(scaled(600), skew=1.1, seed=43)

    def preprocess():
        HierarchicalEngine(QUERY, epsilon=0.5).load(database)

    benchmark(preprocess)


def test_fig1_update_eps_half(benchmark, loaded_engine):
    engine, database = loaded_engine
    benchmark(make_update_cycler(engine, "R", 2, database.size, seed=44))


def test_fig1_enumeration_eps_half(benchmark, loaded_engine):
    engine, _database = loaded_engine

    def enumerate_some():
        count = 0
        for _ in engine.enumerate():
            count += 1
            if count >= 500:
                break
        return count

    benchmark(enumerate_some)
