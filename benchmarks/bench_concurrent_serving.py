"""Concurrent serving: snapshot readers vs the serialized read-after-write loop.

Without snapshots every enumeration walks live view state, so a reader and a
maintenance batch cannot overlap: reads serialize behind the in-flight batch
and — worse — each reader gets at most one read per batch cycle, because the
write lock alternates between the writer and the queued readers (exactly what
``EngineServer(mode="locked")`` enforces).  With versioned snapshots
(``mode="snapshot"``) a reader captures the engine version in ``O(plan)``
under the lock and enumerates the immutable capture *outside* it, so readers
keep serving while a batch is mid-flight and are no longer rate-limited by
the maintenance cadence.

The workload puts the engine in the regime where maintenance, not
enumeration, is the bottleneck: a dense ``DOM × DOM`` path-query cube, where
every join key has degree ``DOM``, ingested at ε = 1 (everything light, so
each distinct batch delta pays ``O(DOM)`` propagation into the materialized
views) while the result — and with it the cost of one full enumeration and
of one copy-on-write view capture — stays at ``DOM²`` tuples.  A continuous
writer applies consolidated batches of ``BATCH_SIZE`` updates; 4 reader
sessions enumerate the full result as fast as they can for a fixed
wall-clock window.  Both modes run the identical writer loop and the
identical reader sessions; the only difference is the serving mode.

The recorded table asserts the headline claim: snapshot serving sustains at
least 2× the aggregate enumeration throughput (completed full-result reads
per second, equivalently result tuples served per second) of the serialized
loop, with every served read a duplicate-free, torn-free enumeration of one
engine version.
"""

import random
import time

import pytest

from repro import Database, HierarchicalEngine, Update
from repro.core.serving import EngineServer
from benchmarks.conftest import scaled

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
# Never scaled *below* the defaults: the serving window is fixed wall-clock
# time, and shrinking the cube would let per-read capture overhead dominate
# the regime this benchmark is about (REPRO_BENCH_SCALE > 1 still scales up).
DOM = max(55, scaled(55))
BATCH_SIZE = max(12000, scaled(12000))
# The freshness scenario uses small batches so several versions commit (and
# get served) inside its window even with readers sharing the interpreter.
FRESH_BATCH_SIZE = 1000
FRESH_WINDOW_SECONDS = 1.25
READERS = 4
WINDOW_SECONDS = 2.5
EPSILON = 1.0
ATTEMPTS = 2  # best-of-N: noise on a busy host only ever inflates a run


def dense_cube_database() -> Database:
    """The dense path-query cube: R = S = the full DOM x DOM grid."""
    return Database.from_dict(
        {
            "R": (("A", "B"), [(a, b) for a in range(DOM) for b in range(DOM)]),
            "S": (("B", "C"), [(b, c) for b in range(DOM) for c in range(DOM)]),
        }
    )


def _endless_batches(
    relation: str, arity: int, domain: int, seed: int, batch_size: int
):
    """An infinite stream of valid consolidated batches of ``batch_size`` updates.

    Alternates fresh inserts with deletes of tuples inserted by *previous*
    batches (same-batch pairs would cancel during consolidation), keeping
    the database size roughly constant so per-batch maintenance cost stays
    stationary across the measurement window.
    """
    rng = random.Random(seed)
    inserted = []
    counter = 0
    while True:
        batch = []
        deletable = len(inserted)
        for _ in range(batch_size):
            counter += 1
            if deletable > 0 and counter % 2 == 1:
                deletable -= 1
                batch.append(Update(relation, inserted.pop(0), -1))
            else:
                tup = tuple(rng.randrange(domain) for _ in range(arity))
                inserted.append(tup)
                batch.append(Update(relation, tup, 1))
        yield batch


def _check_ticket(ticket) -> None:
    """Every served read must be duplicate-free with positive multiplicities."""
    seen = set()
    for tup, mult in ticket.pairs:
        assert mult > 0, f"non-positive multiplicity {mult} for {tup!r}"
        assert tup not in seen, f"tuple {tup!r} enumerated twice in one read"
        seen.add(tup)


def _run_mode(
    mode: str,
    database,
    batch_size: int = BATCH_SIZE,
    window: float = WINDOW_SECONDS,
) -> dict:
    """One serving window: continuous writer + READERS full-read sessions."""
    engine = HierarchicalEngine(PATH_QUERY, epsilon=EPSILON)
    engine.load(database)
    server = EngineServer(engine, mode=mode)
    batches = _endless_batches("R", 2, DOM, seed=303, batch_size=batch_size)
    server.start_writer(batches)
    started = time.perf_counter()
    tickets = server.run_readers(READERS, window)
    elapsed = time.perf_counter() - started
    server.stop_writer()
    for ticket in tickets[:: max(1, len(tickets) // 16)]:
        _check_ticket(ticket)
    tuples = sum(len(ticket.pairs) for ticket in tickets)
    return {
        "mode": mode,
        "readers": READERS,
        "reads": len(tickets),
        "batches": server.stats.batches_applied,
        "reads_per_s": len(tickets) / elapsed,
        "tuples_per_s": tuples / elapsed,
        "versions_seen": len({ticket.version for ticket in tickets}),
    }


def _best_of(mode: str, database) -> dict:
    best = None
    for _ in range(ATTEMPTS):
        row = _run_mode(mode, database)
        if best is None or row["reads_per_s"] > best["reads_per_s"]:
            best = row
    return best


@pytest.fixture(scope="module")
def serving_rows(figure_report):
    database = dense_cube_database()
    rows = [
        _best_of("locked", database),
        _best_of("snapshot", database),
    ]
    locked = rows[0]
    for row in rows:
        row["speedup_vs_locked"] = row["reads_per_s"] / locked["reads_per_s"]
    figure_report.record(
        "Concurrent serving: aggregate enumeration throughput, "
        f"{READERS} full-result readers vs a continuous batch writer "
        f"(N={database.size}, result={DOM * DOM}, batch={BATCH_SIZE}, "
        f"eps={EPSILON}, window={WINDOW_SECONDS}s)",
        rows,
    )
    return rows


def test_snapshot_readers_at_least_2x_serialized(serving_rows, benchmark):
    benchmark(lambda: None)
    by_mode = {row["mode"]: row for row in serving_rows}
    assert by_mode["snapshot"]["reads_per_s"] >= 2.0 * by_mode["locked"]["reads_per_s"]


def test_snapshot_readers_observe_multiple_versions(figure_report, benchmark):
    """Snapshot reads must track the writer: several committed versions get
    served inside one window once commits are frequent enough."""
    benchmark(lambda: None)
    row = _run_mode(
        "snapshot",
        dense_cube_database(),
        batch_size=FRESH_BATCH_SIZE,
        window=FRESH_WINDOW_SECONDS,
    )
    row["mode"] = "snapshot-freshness"
    figure_report.record(
        "Freshness: published versions served during one window "
        f"(batch={FRESH_BATCH_SIZE}, window={FRESH_WINDOW_SECONDS}s)",
        [row],
    )
    assert row["versions_seen"] > 1
    assert row["batches"] >= 1
