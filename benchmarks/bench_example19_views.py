"""Examples 19 / 24: the four-atom query with two levels of partitioning.

``Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)`` has static
width 3 and dynamic width 3: preprocessing is O(N^{1+2ε}) and updates are
O(N^{3ε}) (Example 24).  The benchmark measures preprocessing, update, and
delay on skewed data for the ε corners and checks the structural facts of
Figure 12 (three strategy trees, indicators on A and on (A, B)).
"""

import pytest

from repro import DynamicEngine
from repro.bench import measure_enumeration_delay, measure_update_stream
from repro.workloads import example19_database, mixed_stream
from benchmarks.conftest import make_update_cycler, scaled

QUERY = "Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)"
SIZE = scaled(350)
EPSILONS = [0.0, 0.5, 1.0]


@pytest.fixture(scope="module")
def example19_rows(figure_report):
    database = example19_database(SIZE, skew=1.1, seed=111)
    rows = []
    for epsilon in EPSILONS:
        engine = DynamicEngine(QUERY, epsilon=epsilon).load(database)
        updates = mixed_stream(database, 80, seed=112, domain=SIZE)
        update_measurement = measure_update_stream(engine, updates)
        delay, _ = measure_enumeration_delay(engine, limit=600)
        rows.append(
            {
                "epsilon": epsilon,
                "N": database.size,
                "w": engine.static_width,
                "delta": engine.dynamic_width,
                "strategy_trees": len(engine._skew_plan.all_trees()),
                "indicators": len(engine._skew_plan.indicator_triples),
                "preprocess_s": engine.preprocessing_seconds,
                "update_mean_s": update_measurement.mean,
                "delay_max_s": delay.maximum,
            }
        )
    figure_report.record("Example 19 / Figure 12: the four-atom query", rows)
    return rows


def test_example19_structure(example19_rows, benchmark):
    benchmark(lambda: None)
    row = example19_rows[0]
    assert row["strategy_trees"] == 3
    assert row["indicators"] == 2
    assert row["w"] == 3 and row["delta"] == 3


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_example19_update(benchmark, epsilon, example19_rows):
    database = example19_database(scaled(250), skew=1.1, seed=113)
    engine = DynamicEngine(QUERY, epsilon=epsilon).load(database)
    benchmark(make_update_cycler(engine, "R", 3, database.size, seed=114))
