"""Elastic resharding: online split under a live writer, vs fresh-at-k'.

Two headline claims about ``ShardedEngine.reshard`` through the serving
layer:

* **the writer rides through** — the three-phase protocol holds the
  serving write lock only for the brief cut (``begin_reshard``: one
  export broadcast) and the brief swap (``finish_reshard``: tail replay +
  barrier + pointer swap); the expensive middle (``build_reshard``:
  re-route every shard's base data and preprocess the new fleet) runs
  with the lock released.  A writer committing throughout an online
  2→4 reshard therefore keeps landing commits *during* the reshard, and
  its longest stall stays well below the reshard's total wall-clock;
* **no lasting penalty** — a fleet that arrived at 4 shards by online
  reshard ingests the same follow-up stream at least 80% as fast as a
  fleet *loaded* fresh at 4 shards (reshard-as-rebuild: the new shard
  engines are preprocessed from scratch at the cut, so steady-state cost
  is the fresh deployment's, not some degraded hybrid).

Correctness rides along: the resharded fleet's final result equals the
fresh fleet's after both ingest the same follow-up stream.
"""

import threading
import time

import pytest

from repro.core.serving import EngineServer
from repro.data.database import Database
from repro.data.update import Update
from repro.sharding import ShardedEngine
from benchmarks.conftest import scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"
EPSILON = 0.5
# keep the build phase comfortably longer than the begin/finish stalls,
# even at smoke scale — the stall-ratio claim needs a real middle phase
SIZE = max(scaled(6000), 1500)
FOLLOWUP_UPDATES = max(scaled(2500), 400)
DOMAIN = 40
ATTEMPTS = 2  # best-of-N: noise on a busy host only ever inflates a run


def make_database(size):
    database = Database()
    r = database.create_relation("R", ("A", "B"))
    s = database.create_relation("S", ("B", "C"))
    for index in range(size):
        r.apply_delta((index, index % DOMAIN), 1)
    for index in range(size // 4):
        s.apply_delta((index % DOMAIN, index), 1)
    return database


def insert_stream(count, start):
    return [
        Update("R", (start + index, index % DOMAIN), 1) for index in range(count)
    ]


def _run_online_reshard(size):
    """One attempt: reshard 2→4 under a live writer; return the metrics."""
    engine = ShardedEngine(QUERY, shards=2, epsilon=EPSILON, executor="thread")
    engine.load(make_database(size))
    server = EngineServer(engine, mode="locked")

    commits = []  # (started, latency) per writer commit
    stop = threading.Event()
    cursor = insert_stream(1 << 20, start=size * 2)

    def writer_loop():
        index = 0
        while not stop.is_set():
            update = cursor[index]
            index += 1
            started = time.perf_counter()
            server.apply_update(update)
            commits.append((started, time.perf_counter() - started))

    writer = threading.Thread(target=writer_loop, daemon=True)
    writer.start()
    time.sleep(0.05)  # let the writer reach steady state
    reshard_started = time.perf_counter()
    server.reshard(4)
    reshard_wall_s = time.perf_counter() - reshard_started
    time.sleep(0.02)
    stop.set()
    writer.join(timeout=30)
    assert not writer.is_alive()

    window = [
        (started, latency)
        for started, latency in commits
        if started + latency > reshard_started
        and started < reshard_started + reshard_wall_s
    ]
    commits_during = len(window)
    max_stall_s = max((latency for _, latency in window), default=0.0)
    # one commit per loop iteration, so the writer applied exactly this prefix
    return engine, cursor[: len(commits)], {
        "reshard_wall_s": reshard_wall_s,
        "max_stall_s": max_stall_s,
        "stall_ratio": max_stall_s / reshard_wall_s if reshard_wall_s else 0.0,
        "commits_during": commits_during,
        "writer_commits": len(commits),
    }


def _ingest_throughput(engine, stream):
    started = time.perf_counter()
    for update in stream:
        engine.apply(update)
    elapsed = time.perf_counter() - started
    return len(stream) / elapsed, elapsed


@pytest.fixture(scope="module")
def reshard_rows(figure_report):
    best_metrics = None
    best_engine = None
    best_writer_updates = None
    for _ in range(ATTEMPTS):
        engine, writer_updates, metrics = _run_online_reshard(SIZE)
        if best_metrics is None or metrics["stall_ratio"] < best_metrics["stall_ratio"]:
            if best_engine is not None:
                best_engine.close()
            best_metrics, best_engine = metrics, engine
            best_writer_updates = writer_updates
        else:
            engine.close()
    assert best_engine.shards == 4

    # steady state after the swap: the resharded fleet vs a fresh one.
    # The fresh fleet replays (untimed) everything the live writer
    # committed, so both sides enter the timed phase with the same data.
    followup = insert_stream(FOLLOWUP_UPDATES, start=SIZE * 8)
    resharded_tps = 0.0
    fresh_tps = 0.0
    for attempt in range(ATTEMPTS):
        tps, _elapsed = _ingest_throughput(
            best_engine,
            insert_stream(FOLLOWUP_UPDATES, start=SIZE * (8 + attempt)),
        )
        resharded_tps = max(resharded_tps, tps)
    resharded_result = dict(best_engine.result())

    for _ in range(ATTEMPTS):
        fresh = ShardedEngine(QUERY, shards=4, epsilon=EPSILON, executor="thread")
        fresh.load(make_database(SIZE))
        fresh.apply_batch(best_writer_updates)
        tps, _elapsed = _ingest_throughput(fresh, followup)
        fresh_tps = max(fresh_tps, tps)
        fresh.close()

    rows = [
        {
            "phase": "online reshard 2->4 (live writer)",
            "wall_s": best_metrics["reshard_wall_s"],
            "max_writer_stall_s": best_metrics["max_stall_s"],
            "stall_ratio": best_metrics["stall_ratio"],
            "commits_during_reshard": best_metrics["commits_during"],
        },
        {
            "phase": "post-reshard ingest (resharded fleet)",
            "tuples_per_s": resharded_tps,
        },
        {
            "phase": "ingest on fleet loaded fresh at 4",
            "tuples_per_s": fresh_tps,
        },
        {
            "phase": "resharded/fresh throughput ratio",
            "ratio": resharded_tps / fresh_tps,
        },
    ]
    figure_report.record(
        "Elastic resharding: 2->4 under a live writer "
        f"(N~{SIZE}, eps={EPSILON}, thread executor)",
        rows,
    )
    best_engine.check_invariants()
    best_engine.close()
    assert resharded_result  # the fleet served real data throughout
    return rows


def test_writer_rides_through_the_reshard(reshard_rows, benchmark):
    """The lock is held only for the cut and the swap, never the build."""
    benchmark(lambda: None)
    online = reshard_rows[0]
    assert online["commits_during_reshard"] >= 1
    assert online["stall_ratio"] <= 0.6, (
        f"longest writer stall {online['max_writer_stall_s']:.4f}s is "
        f"{online['stall_ratio']:.2f} of the {online['wall_s']:.4f}s reshard"
    )


def test_post_reshard_throughput_within_20pct_of_fresh(reshard_rows, benchmark):
    benchmark(lambda: None)
    ratio = reshard_rows[3]["ratio"]
    assert ratio >= 0.8, (
        f"resharded fleet ingests at {ratio:.2f} of a fresh 4-shard fleet"
    )
