"""Columnar vs dict relation storage on the per-tuple maintenance hot path.

The skew-aware maintenance loop touches relation storage far more often
than it enumerates it: every streamed tuple triggers pre-state capture
(``contains_key_of`` on base and light parts), a routing decision,
existence/degree probes against sibling atoms during delta propagation
(``slice_size``), threshold checks for rebalancing (``degree_of``), and
multiplicity bumps on already-live rows.  The columnar backend
(``REPRO_STORAGE=columnar``, the default) answers all of these from flat
arrays addressed by row id instead of re-hashing full tuples and
re-normalising key schemas per call.

Two headline series over the *existing* workload scenarios (every entry
of :data:`repro.workloads.scenarios.SCENARIOS`):

* **touch throughput** (gated claim) — per-tuple maintenance bookkeeping
  replayed from each scenario's update stream against loaded base/light
  parts: pre-state probes, routing decision, sibling existence/degree
  probes, rebalance threshold checks, and a rid-addressed multiplicity
  bump for live rows.  The geometric mean of the columnar/dict
  throughput ratio across scenarios must be **>= 3x**.
* **transcript throughput** (context) — the same streams replayed as full
  write transcripts (base inserts/deletes, light routing, hysteresis
  group moves between light and heavy).  Fresh inserts are the one spot
  where the dict backend's single hash-and-store is near-optimal, so the
  ratio here is lower; see docs/architecture.md section 15 ("when the
  dict backend wins") for the cost model.

Correctness rides along: both backends must finish every transcript with
identical base and light contents.
"""

from __future__ import annotations

import math
import re
import time
from collections import Counter
from typing import Dict, List, Tuple

import pytest

from benchmarks.conftest import scaled
from repro.data import Relation, storage_backend
from repro.workloads.scenarios import SCENARIOS, get_scenario

COUNT = scaled(15000)
ATTEMPTS = 2  # best-of-N: noise on a busy host only ever inflates a run
SEED_DB = 11
SEED_STREAM = 13
TOUCH_RATIO_GEOMEAN_MIN = 3.0
TRANSCRIPT_RATIO_GEOMEAN_MIN = 1.5


def _plan(name: str):
    """Scenario + per-relation join-variable positions and sibling atoms."""
    scenario = get_scenario(name)
    atoms = [
        (match.group(1), tuple(v.strip() for v in match.group(2).split(",")))
        for match in re.finditer(
            r"(\w+)\(([^)]*)\)", scenario.query.split("=", 1)[1]
        )
    ]
    occurrences = Counter(v for _, vs in atoms for v in set(vs))
    shared = {v for v, c in occurrences.items() if c > 1}
    info: Dict[str, Dict[str, object]] = {}
    for rel_name, vs in atoms:
        jpos = next(i for i, v in enumerate(vs) if v in shared)
        info[rel_name] = {"jpos": jpos, "jvar": vs[jpos]}
    for rel_name, vs in atoms:
        jvar = info[rel_name]["jvar"]
        info[rel_name]["siblings"] = [
            other for other, ovs in atoms if other != rel_name and jvar in ovs
        ]
    return scenario, info


def _setup(name: str):
    """Build base/light parts under the active backend and pre-route the stream.

    Returns ``(transcript, threshold)`` where each transcript entry is
    ``(base, light, keys, tup, delta, jkey, sibs)`` — the per-update
    storage targets resolved up front so the timed loops measure storage
    operations, not benchmark-driver routing.
    """
    scenario, info = _plan(name)
    database = scenario.make_database(seed=SEED_DB, scale=1.0)
    updates = list(scenario.make_stream(database, count=COUNT, seed=SEED_STREAM))
    relations = list(database.relations())
    average = sum(len(r) for r in relations) / len(relations)
    threshold = max(8, int(math.sqrt(average)))
    parts: Dict[str, Tuple[Relation, Relation, tuple, int]] = {}
    for relation in relations:
        schema = relation.schema
        jpos = info[relation.name]["jpos"]
        keys = (schema[jpos],)
        base = Relation(relation.name, schema, dict(relation.items()))
        light = Relation(relation.name + "^l", schema)
        base.ensure_index(keys)
        light.ensure_index(keys)
        for key in list(base.distinct_keys(keys)):
            if base.slice_size(keys, key) < threshold:
                for tup in base.slice(keys, key):
                    light.apply_delta(tup, base.multiplicity(tup))
        parts[relation.name] = (base, light, keys, jpos)
    transcript = []
    for update in updates:
        base, light, keys, jpos = parts[update.relation]
        sibs = tuple(
            (parts[other][0], parts[other][1], parts[other][2])
            for other in info[update.relation]["siblings"]
        )
        transcript.append(
            (base, light, keys, update.tuple, update.multiplicity,
             (update.tuple[jpos],), sibs)
        )
    return transcript, threshold


def _run_touch(name: str, backend: str) -> float:
    """Per-tuple maintenance bookkeeping throughput (read-mostly).

    Live rows additionally take a +1/-1 multiplicity bump through
    ``apply_delta``'s rid-addressed fast path, so the relation contents
    are identical before and after the run.
    """
    with storage_backend(backend):
        transcript, threshold = _setup(name)
        hi = 2 * threshold
        lo = threshold // 2
        started = time.perf_counter()
        for base, light, keys, tup, delta, jkey, sibs in transcript:
            was_base = base.contains_key_of(keys, tup)
            was_light = light.contains_key_of(keys, tup)
            route_light = was_light or not was_base
            for sib_base, sib_light, sib_keys in sibs:
                if sib_light.slice_size(sib_keys, jkey):
                    pass
                if sib_base.slice_size(sib_keys, jkey) >= threshold:
                    pass
            if was_base and delta:
                base.apply_delta(tup, 1)
                base.apply_delta(tup, -1)
            light_degree = light.degree_of(keys, tup)
            base_degree = base.degree_of(keys, tup)
            if light_degree and base_degree >= hi:
                pass
            elif light_degree == 0 and 0 < base_degree <= lo:
                pass
        elapsed = time.perf_counter() - started
        assert route_light in (True, False)
        return len(transcript) / elapsed


def _run_transcript(name: str, backend: str, capture: bool = False):
    """Full write transcript throughput (and optionally the final state)."""
    with storage_backend(backend):
        transcript, threshold = _setup(name)
        hi = 2 * threshold
        lo = threshold // 2
        started = time.perf_counter()
        for base, light, keys, tup, delta, jkey, sibs in transcript:
            was_base = base.contains_key_of(keys, tup)
            was_light = light.contains_key_of(keys, tup)
            try:
                base.apply_delta(tup, delta)
            except Exception:
                continue
            if was_light or not was_base:
                if delta > 0 or tup in light:
                    try:
                        light.apply_delta(tup, delta)
                    except Exception:
                        pass
            emitted = 0
            for sib_base, sib_light, sib_keys in sibs:
                for _match in sib_light.slice(sib_keys, jkey):
                    emitted += 1
                if sib_base.slice_size(sib_keys, jkey) >= threshold:
                    emitted += 1
            light_degree = light.degree_of(keys, tup)
            base_degree = base.degree_of(keys, tup)
            if light_degree and base_degree >= hi:
                for other in list(light.slice(keys, jkey)):
                    light.apply_delta(other, -light.multiplicity(other))
            elif light_degree == 0 and 0 < base_degree <= lo:
                for other in base.slice(keys, jkey):
                    light.apply_delta(
                        other, base.multiplicity(other) - light.multiplicity(other)
                    )
        elapsed = time.perf_counter() - started
        throughput = len(transcript) / elapsed
        if not capture:
            return throughput
        seen = {}
        for base, light, _keys, _tup, _delta, _jkey, _sibs in transcript:
            seen[base.name] = base.as_dict()
            seen[light.name] = light.as_dict()
        return throughput, seen


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


@pytest.fixture(scope="module")
def storage_rows(figure_report):
    rows = []
    for name in sorted(SCENARIOS):
        touch_dict = touch_col = trans_dict = trans_col = 0.0
        for _ in range(ATTEMPTS):
            touch_dict = max(touch_dict, _run_touch(name, "dict"))
            touch_col = max(touch_col, _run_touch(name, "columnar"))
            trans_dict = max(trans_dict, _run_transcript(name, "dict"))
            trans_col = max(trans_col, _run_transcript(name, "columnar"))
        rows.append(
            {
                "scenario": name,
                "touch dict/s": round(touch_dict),
                "touch columnar/s": round(touch_col),
                "touch ratio": round(touch_col / touch_dict, 2),
                "transcript dict/s": round(trans_dict),
                "transcript columnar/s": round(trans_col),
                "transcript ratio": round(trans_col / trans_dict, 2),
            }
        )
    touch_geomean = _geomean([row["touch ratio"] for row in rows])
    transcript_geomean = _geomean([row["transcript ratio"] for row in rows])
    rows.append(
        {
            "scenario": "geomean",
            "touch dict/s": "",
            "touch columnar/s": "",
            "touch ratio": round(touch_geomean, 2),
            "transcript dict/s": "",
            "transcript columnar/s": "",
            "transcript ratio": round(transcript_geomean, 2),
        }
    )
    figure_report.record(
        "Columnar vs dict storage: per-tuple maintenance throughput "
        f"({COUNT} updates per scenario, best of {ATTEMPTS})",
        rows,
    )
    return rows


def test_touch_throughput_ratio(storage_rows):
    """Gated claim: maintenance touches are >= 3x faster columnar (geomean)."""
    geomean = next(r for r in storage_rows if r["scenario"] == "geomean")
    assert geomean["touch ratio"] >= TOUCH_RATIO_GEOMEAN_MIN


def test_touch_ratio_per_scenario_floor(storage_rows):
    """No scenario regresses anywhere near dict parity on the touch path.

    The floor is deliberately loose (the gated claim is the geomean): on a
    contended host the dict baseline of a single scenario can luck into a
    quiet slot while the columnar run is descheduled, and per-scenario
    ratios swing far more than the cross-scenario mean.
    """
    for row in storage_rows:
        if row["scenario"] == "geomean":
            continue
        assert row["touch ratio"] >= 1.5, row


def test_transcript_throughput_ratio(storage_rows):
    """Full write transcripts still favor columnar despite insert parity."""
    geomean = next(r for r in storage_rows if r["scenario"] == "geomean")
    assert geomean["transcript ratio"] >= TRANSCRIPT_RATIO_GEOMEAN_MIN


def test_backends_reach_identical_state():
    """The transcript leaves byte-identical base/light contents per backend."""
    for name in ("retail", "fraud", "sensors"):
        _tps_dict, state_dict = _run_transcript(name, "dict", capture=True)
        _tps_col, state_col = _run_transcript(name, "columnar", capture=True)
        assert state_dict == state_col
