"""Shared infrastructure for the benchmark suite.

Every benchmark reproduces one figure of the paper.  Besides the
pytest-benchmark timings, each benchmark computes the figure's rows/series
and records them through the :func:`figure_report` fixture; the recorded
tables are printed in the terminal summary (so they appear in
``bench_output.txt``) and written to ``benchmarks/results/<name>.txt``.

Benchmarks are sized to finish in a few minutes on a laptop; the sizes can be
scaled up through the ``REPRO_BENCH_SCALE`` environment variable (a float
multiplier applied to database sizes).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Mapping, Sequence

import pytest

from repro.bench.reporting import format_table

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_RECORDED: List[str] = []


def bench_scale() -> float:
    """Global size multiplier for the benchmark workloads."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:  # pragma: no cover - defensive
        return 1.0


def scaled(size: int) -> int:
    """Scale a workload size by the global multiplier (at least 10)."""
    return max(10, int(size * bench_scale()))


class FigureReport:
    """Collects the tables of one benchmark module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.sections: List[str] = []

    def record(self, title: str, rows: Sequence[Mapping[str, object]]) -> str:
        text = format_table(rows, title=title)
        self.sections.append(text)
        _RECORDED.append(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n\n".join(self.sections) + "\n")
        return text


def make_update_cycler(engine, relation: str, arity: int, domain: int, seed: int = 0):
    """A zero-argument callable applying one safe single-tuple update per call.

    pytest-benchmark invokes the callable an unbounded number of times, so
    replaying a finite recorded stream would eventually issue rejected
    deletes.  The cycler instead alternates inserts of fresh random tuples
    with deletes of tuples it inserted earlier: every call is valid and the
    database size stays roughly constant across rounds.
    """
    import random

    rng = random.Random(seed)
    inserted: List[tuple] = []
    state = {"i": 0}

    def one_update() -> None:
        index = state["i"]
        state["i"] += 1
        if inserted and index % 2 == 1:
            tup = inserted.pop()
            engine.update(relation, tup, -1)
        else:
            tup = tuple(rng.randrange(domain) for _ in range(arity))
            inserted.append(tup)
            engine.update(relation, tup, 1)

    return one_update


def make_batch_cycler(
    engine, relation: str, arity: int, domain: int, batch_size: int, seed: int = 0
):
    """A zero-argument callable applying one safe consolidated batch per call.

    The batched analogue of :func:`make_update_cycler`: each call builds a
    batch of ``batch_size`` alternating fresh inserts and deletes of tuples
    inserted by *previous* batches and ingests it through ``apply_batch``.
    Deleting only pre-batch tuples matters: an insert/delete pair of the
    same tuple inside one batch would cancel during consolidation, and the
    benchmark would be timing empty batches.  After the first (insert-only)
    call the database size stays roughly constant across rounds.
    """
    import random

    from repro.data.update import Update, UpdateBatch

    rng = random.Random(seed)
    inserted: List[tuple] = []
    state = {"i": 0}

    def one_batch() -> None:
        batch = UpdateBatch()
        deletable = len(inserted)  # tuples that predate this batch
        for _ in range(batch_size):
            index = state["i"]
            state["i"] += 1
            if deletable > 0 and index % 2 == 1:
                deletable -= 1
                batch.add(Update(relation, inserted.pop(0), -1))
            else:
                tup = tuple(rng.randrange(domain) for _ in range(arity))
                inserted.append(tup)
                batch.add(Update(relation, tup, 1))
        engine.apply_batch(batch)

    return one_batch


@pytest.fixture(scope="module")
def figure_report(request) -> FigureReport:
    """One report collector per benchmark module."""
    module_name = request.module.__name__.split(".")[-1]
    return FigureReport(module_name)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every recorded figure table at the end of the run."""
    if not _RECORDED:
        return
    terminalreporter.section("paper figure reproductions")
    for text in _RECORDED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
