"""Benchmark harness reproducing the paper's figures (see DESIGN.md §2)."""
