"""Batched update ingestion: per-tuple throughput vs. batch size.

The batched maintenance path (``HierarchicalEngine.apply_batch``) amortizes
per-update overhead — plan scans, light-routing pre-state capture, indicator
refreshes, and the rebalance check — across a whole consolidated batch, and
propagates one grouped delta per view tree instead of one per tuple.  This
module measures per-tuple throughput on the Figure 5 dynamic workload (the
path query over a skewed database with a mixed insert/delete stream) at
batch sizes {1, 10, 100, 1000}, against the single-update path, and repeats
the batch-size sweep for the baseline engines so the comparison stays
apples-to-apples.

The recorded table asserts the headline claim: per-tuple throughput at batch
size 1000 is at least 2× the throughput at batch size 1, with the final
query result identical to the sequential replay.
"""

import time

import pytest

from repro import HierarchicalEngine, UpdateStream
from repro.baselines import FirstOrderIVMEngine, NaiveRecomputeEngine
from repro.workloads import mixed_stream, path_query_database
from benchmarks.conftest import make_batch_cycler, scaled

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
SIZE = scaled(1000)
UPDATES = max(scaled(2000), 2 * SIZE)
BATCH_SIZES = (1, 10, 100, 1000)


def _ingest_in_batches(engine_factory, database, stream, batch_size):
    """Load a fresh engine and time batched ingestion of the whole stream."""
    engine = engine_factory()
    engine.load(database)
    started = time.perf_counter()
    for batch in stream.batches(batch_size):
        engine.apply_batch(batch)
    elapsed = time.perf_counter() - started
    return engine, elapsed


@pytest.fixture(scope="module")
def batch_throughput_rows(figure_report):
    database = path_query_database(SIZE, skew=1.2, seed=101)
    stream = mixed_stream(database, UPDATES, seed=102, domain=SIZE)

    rows = []
    results = {}
    # sequential single-update reference
    engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5)
    engine.load(database)
    started = time.perf_counter()
    engine.apply_stream(stream)
    sequential_s = time.perf_counter() - started
    results["sequential"] = engine.result()
    rows.append(
        {
            "path": "apply_stream (single-update)",
            "batch_size": 1,
            "total_s": sequential_s,
            "per_tuple_us": sequential_s / len(stream) * 1e6,
            "tuples_per_s": len(stream) / sequential_s,
        }
    )
    for batch_size in BATCH_SIZES:
        engine, elapsed = _ingest_in_batches(
            lambda: HierarchicalEngine(PATH_QUERY, epsilon=0.5),
            database,
            stream,
            batch_size,
        )
        results[batch_size] = engine.result()
        rows.append(
            {
                "path": "apply_batch",
                "batch_size": batch_size,
                "total_s": elapsed,
                "per_tuple_us": elapsed / len(stream) * 1e6,
                "tuples_per_s": len(stream) / elapsed,
            }
        )
    base = rows[1]["tuples_per_s"]
    for row in rows:
        row["speedup_vs_batch1"] = row["tuples_per_s"] / base
    figure_report.record(
        "Batched ingestion: IVM^eps eps=0.5 on the Figure 5 dynamic workload",
        rows,
    )

    # every path must agree with the sequential replay, bit for bit
    for batch_size in BATCH_SIZES:
        assert results[batch_size] == results["sequential"]

    # Baselines ingest a shorter prefix of the same stream (full recompute at
    # batch size 1 would dominate the whole benchmark run) and must all agree
    # with each other on the final result.
    baseline_stream = UpdateStream(list(stream)[: scaled(300)])
    baseline_rows = []
    baseline_results = []
    for name, factory in {
        "first-order IVM": lambda: FirstOrderIVMEngine(PATH_QUERY),
        "recompute": lambda: NaiveRecomputeEngine(PATH_QUERY),
    }.items():
        for batch_size in (1, 100, 1000):
            engine, elapsed = _ingest_in_batches(
                factory, database, baseline_stream, batch_size
            )
            baseline_results.append(engine.result())
            baseline_rows.append(
                {
                    "engine": name,
                    "batch_size": batch_size,
                    "total_s": elapsed,
                    "per_tuple_us": elapsed / len(baseline_stream) * 1e6,
                    "tuples_per_s": len(baseline_stream) / elapsed,
                }
            )
    assert all(result == baseline_results[0] for result in baseline_results)
    figure_report.record(
        "Batched ingestion: baselines on the same workload", baseline_rows
    )
    return rows


def test_batch_1000_at_least_2x_batch_1(batch_throughput_rows, benchmark):
    benchmark(lambda: None)
    by_size = {
        row["batch_size"]: row
        for row in batch_throughput_rows
        if row["path"] == "apply_batch"
    }
    assert by_size[1000]["tuples_per_s"] >= 2.0 * by_size[1]["tuples_per_s"]


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_ingest_per_size(benchmark, batch_size, batch_throughput_rows):
    database = path_query_database(scaled(600), skew=1.2, seed=105)
    engine = HierarchicalEngine(PATH_QUERY, epsilon=0.5)
    engine.load(database)
    benchmark(
        make_batch_cycler(engine, "R", 2, database.size, batch_size, seed=106)
    )
