"""Figure 4: prior work on static evaluation, reproduced with this library.

The rows of the figure that concern conjunctive queries are recovered by
choosing ε (Section 1 of the paper):

* α-acyclic CQ, O(N) preprocessing / O(N) delay       → ε = 0;
* general CQ, O(N^w) preprocessing / O(1) delay       → ε = 1;
* free-connex CQ, O(N) preprocessing / O(1) delay     → w = 1, any ε;
* bounded-degree databases, O(N) preprocessing / O(1) delay → ε = 1 on a
  database whose degrees are bounded by a constant.
"""

import pytest

from repro import StaticEngine
from repro.bench import measure_enumeration_delay
from repro.workloads import (
    bounded_degree_database,
    free_connex_database,
    path_query_database,
)
from benchmarks.conftest import scaled

PATH_QUERY = "Q(A, C) = R(A, B), S(B, C)"
FC_QUERY = "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"
SIZE = scaled(1200)

ROWS = [
    ("alpha-acyclic CQ (eps=0)", PATH_QUERY, lambda: path_query_database(SIZE, seed=91), 0.0),
    ("general CQ (eps=1)", PATH_QUERY, lambda: path_query_database(SIZE, seed=91), 1.0),
    ("free-connex CQ (w=1)", FC_QUERY, lambda: free_connex_database(SIZE, seed=92), 1.0),
    (
        "bounded-degree database (eps=1)",
        PATH_QUERY,
        lambda: bounded_degree_database(SIZE, degree=3, seed=93),
        1.0,
    ),
]


@pytest.fixture(scope="module")
def static_prior_rows(figure_report):
    rows = []
    for label, query, database_factory, epsilon in ROWS:
        database = database_factory()
        engine = StaticEngine(query, epsilon=epsilon)
        engine.load(database)
        delay, _ = measure_enumeration_delay(engine, limit=1500)
        rows.append(
            {
                "row": label,
                "epsilon": epsilon,
                "N": database.size,
                "preprocess_s": engine.preprocessing_seconds,
                "delay_mean_s": delay.mean,
                "delay_max_s": delay.maximum,
                "extra_space_tuples": engine.view_size(),
            }
        )
    figure_report.record("Figure 4: static prior-work rows via epsilon choices", rows)
    return rows


@pytest.mark.parametrize("index", range(len(ROWS)))
def test_fig4_static_preprocessing(benchmark, index, static_prior_rows):
    label, query, database_factory, epsilon = ROWS[index]
    database = database_factory()
    benchmark(lambda: StaticEngine(query, epsilon=epsilon).load(database))


def test_fig4_shape(static_prior_rows, benchmark):
    """ε = 1 buys smaller delay than ε = 0 at the cost of preprocessing."""
    benchmark(lambda: None)
    by_row = {row["row"]: row for row in static_prior_rows}
    assert (
        by_row["general CQ (eps=1)"]["extra_space_tuples"]
        >= by_row["alpha-acyclic CQ (eps=0)"]["extra_space_tuples"]
    )
