"""Figure 1 (right): the dynamic preprocessing/update/delay trade-off surface.

One row per ε for the δ₁-hierarchical query ``Q(A, C) = R(A, B), S(B, C)``
in dynamic mode, measuring all three components on the same Zipf workload
and update stream.
"""

import pytest

from repro import DynamicEngine
from repro.bench import sweep_epsilon
from repro.workloads import mixed_stream, path_query_database
from benchmarks.conftest import make_update_cycler, scaled

QUERY = "Q(A, C) = R(A, B), S(B, C)"
EPSILONS = [0.0, 0.25, 0.5, 0.75, 1.0]
SIZE = scaled(1200)


@pytest.fixture(scope="module")
def dynamic_tradeoff_rows(figure_report):
    database = path_query_database(SIZE, skew=1.1, seed=61)
    points = sweep_epsilon(
        QUERY,
        database,
        EPSILONS,
        mode="dynamic",
        updates_factory=lambda: mixed_stream(database, 200, seed=62, domain=SIZE),
        delay_limit=1200,
    )
    rows = [point.as_row() for point in points]
    figure_report.record(
        "Figure 1 (right): dynamic preprocessing/update/delay trade-off", rows
    )
    return rows


@pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
def test_fig1_dynamic_update(benchmark, epsilon, dynamic_tradeoff_rows):
    database = path_query_database(scaled(800), skew=1.1, seed=63)
    engine = DynamicEngine(QUERY, epsilon=epsilon).load(database)
    benchmark(make_update_cycler(engine, "R", 2, database.size, seed=64))


def test_fig1_dynamic_shape(dynamic_tradeoff_rows, benchmark):
    """The measured surface keeps the paper's qualitative shape."""
    by_eps = {row["epsilon"]: row for row in dynamic_tradeoff_rows}
    benchmark(lambda: None)
    # delay at ε=1 should not exceed delay at ε=0 (it shrinks with ε), and the
    # materialized state grows with ε.
    assert by_eps[1.0]["view_tuples"] >= by_eps[0.0]["view_tuples"]
