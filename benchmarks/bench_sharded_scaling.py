"""Sharded maintenance: per-tuple throughput vs shard count.

The sharded engine hash-partitions base relations on the planner-chosen
shard key, so every shard plans against a fraction of the data and its
heavy/light threshold ``M_shard^ε`` drops below the single engine's.  On
the ``hot_shard`` scenario — the adversarial heavy-key workload whose hot
join values have degree *between* the per-shard and the global threshold —
this flips every hot key from the light regime (each update pays
``O(degree)`` propagation into materialized light join views) into the
heavy regime (``O(1)`` per update, work deferred to enumeration).  The
speedup below is therefore *algorithmic*: all configurations run the
serial executor on one core, no parallelism involved; the process executor
adds machine parallelism on top on multi-core hosts.

The recorded table asserts the headline claim: per-tuple maintenance
throughput at 4 shards is at least 2× the 1-shard throughput, with the
final query result identical across every shard count and equal to the
unsharded engine's.
"""

import time

import pytest

from repro import HierarchicalEngine, ShardedEngine
from repro.workloads import HOT_SHARD_QUERY, hot_shard_database, hot_shard_stream
from benchmarks.conftest import scaled

SIZE = scaled(2000)
UPDATES = max(scaled(2500), 200)
HOT_KEYS = 16
SHARD_COUNTS = (1, 2, 4, 7)
EPSILON = 0.5


ATTEMPTS = 2  # best-of-N: noise on a busy host only ever inflates a run


def _ingest(engine, stream):
    started = time.perf_counter()
    for update in stream:
        engine.apply(update)
    return time.perf_counter() - started


def _measure(make_engine, database, stream):
    """Load + ingest ``ATTEMPTS`` times on fresh engines; keep the fastest.

    Single-shot timings on a shared single-core box occasionally absorb a
    multi-x scheduling spike; taking the best attempt makes the asserted
    throughput ratios reflect the engines, not the neighbours.
    """
    best = None
    for _ in range(ATTEMPTS):
        engine = make_engine()
        started = time.perf_counter()
        engine.load(database)
        load_s = time.perf_counter() - started
        maintain_s = _ingest(engine, stream)
        if best is None or maintain_s < best[2]:
            if best is not None and hasattr(best[0], "close"):
                best[0].close()
            best = (engine, load_s, maintain_s)
        elif hasattr(engine, "close"):
            engine.close()
    return best


@pytest.fixture(scope="module")
def sharded_scaling_rows(figure_report):
    database = hot_shard_database(
        size=SIZE, hot_keys=HOT_KEYS, epsilon=EPSILON, seed=201
    )
    stream = hot_shard_stream(UPDATES, hot_keys=HOT_KEYS, seed=202)

    rows = []
    results = {}

    single, single_load_s, single_s = _measure(
        lambda: HierarchicalEngine(HOT_SHARD_QUERY, epsilon=EPSILON),
        database,
        stream,
    )
    results["unsharded"] = single.result()
    rows.append(
        {
            "engine": "unsharded",
            "shards": 1,
            "load_s": single_load_s,
            "maintain_s": single_s,
            "per_tuple_us": single_s / len(stream) * 1e6,
            "tuples_per_s": len(stream) / single_s,
            "minor_rebalances": single.rebalance_stats.minor_rebalances,
            "major_rebalances": single.rebalance_stats.major_rebalances,
        }
    )

    for shards in SHARD_COUNTS:
        engine, load_s, maintain_s = _measure(
            lambda: ShardedEngine(
                HOT_SHARD_QUERY, shards=shards, epsilon=EPSILON, executor="serial"
            ),
            database,
            stream,
        )
        results[shards] = engine.result()
        stats = engine.rebalance_stats
        rows.append(
            {
                "engine": "sharded(serial)",
                "shards": shards,
                "load_s": load_s,
                "maintain_s": maintain_s,
                "per_tuple_us": maintain_s / len(stream) * 1e6,
                "tuples_per_s": len(stream) / maintain_s,
                "minor_rebalances": stats.minor_rebalances,
                "major_rebalances": stats.major_rebalances,
            }
        )
        engine.close()

    base = next(r for r in rows if r["engine"] == "sharded(serial)" and r["shards"] == 1)
    for row in rows:
        row["speedup_vs_1shard"] = row["tuples_per_s"] / base["tuples_per_s"]
    figure_report.record(
        "Sharded scaling: per-tuple maintenance throughput on hot_shard "
        f"(N={database.size}, eps={EPSILON}, serial executor)",
        rows,
    )

    # every shard count must land on the exact unsharded result
    for shards in SHARD_COUNTS:
        assert results[shards] == results["unsharded"]
    return rows


def test_4_shards_at_least_2x_1_shard(sharded_scaling_rows, benchmark):
    benchmark(lambda: None)
    by_shards = {
        row["shards"]: row
        for row in sharded_scaling_rows
        if row["engine"] == "sharded(serial)"
    }
    assert by_shards[4]["tuples_per_s"] >= 2.0 * by_shards[1]["tuples_per_s"]


def test_sharding_monotone_region(sharded_scaling_rows, benchmark):
    """2 shards must already beat 1 shard on the adversarial heavy-key load."""
    benchmark(lambda: None)
    by_shards = {
        row["shards"]: row
        for row in sharded_scaling_rows
        if row["engine"] == "sharded(serial)"
    }
    assert by_shards[2]["tuples_per_s"] > by_shards[1]["tuples_per_s"]
