"""Workload telemetry: what the engine actually pays per operation.

:class:`WorkloadTelemetry` is a thread-safe accumulator threaded through
the maintenance driver and the enumeration paths.  It records two kinds
of events:

* **updates** — every ingestion event (a single-tuple update or a whole
  consolidated batch) reports its source-update count and wall-clock cost,
  measured around the full maintenance pass *including* any minor/major
  rebalancing it triggered;
* **reads** — every enumeration reports how many tuples it produced and how
  long it ran; partial reads (a page of ``k`` tuples out of a large result)
  are recorded too, via generator finalization, so the read cost reflects
  what consumers actually paid rather than the full-result cost.

Besides raw totals the collector keeps exponentially weighted moving
averages: per-event update cost, per-event read cost, and the *read
fraction* — the EWMA of the event-kind indicator (1 for a read, 0 for a
write).  The read fraction is the phase detector of the adaptive ε
controller (:mod:`repro.adaptive.controller`): a write burst drives it
toward 0, a read-heavy serving phase toward 1, and the smoothing constant
``alpha`` sets how many events a phase shift takes to register.

Recording takes a lock: :class:`repro.core.serving.EngineServer` feeds
one collector from N reader threads plus the writer, and the
read-modify-write counter/EWMA updates would otherwise lose events.
Reads of the aggregates stay lock-free (a torn read of an EWMA is at
worst one event stale, which the smoothing already tolerates).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Iterator, Optional, Tuple


class WorkloadTelemetry:
    """EWMA-smoothed counters over the update and enumeration traffic."""

    __slots__ = (
        "alpha",
        "_lock",
        "update_events",
        "update_tuples",
        "update_seconds",
        "read_events",
        "read_tuples",
        "read_seconds",
        "ewma_update_seconds",
        "ewma_read_seconds",
        "ewma_read_fraction",
    )

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = alpha
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Zero every counter and forget the moving averages."""
        self.update_events = 0
        self.update_tuples = 0
        self.update_seconds = 0.0
        self.read_events = 0
        self.read_tuples = 0
        self.read_seconds = 0.0
        self.ewma_update_seconds: Optional[float] = None
        self.ewma_read_seconds: Optional[float] = None
        self.ewma_read_fraction: Optional[float] = None

    # ------------------------------------------------------------------
    def _smooth(self, previous: Optional[float], value: float) -> float:
        if previous is None:
            return value
        return previous + self.alpha * (value - previous)

    def record_update(self, tuples: int, seconds: float) -> None:
        """Record one ingestion event of ``tuples`` source updates."""
        with self._lock:
            self.update_events += 1
            self.update_tuples += tuples
            self.update_seconds += seconds
            self.ewma_update_seconds = self._smooth(
                self.ewma_update_seconds, seconds
            )
            self.ewma_read_fraction = self._smooth(self.ewma_read_fraction, 0.0)

    def record_read(self, tuples: int, seconds: float) -> None:
        """Record one enumeration (full or partial) of ``tuples`` tuples."""
        with self._lock:
            self.read_events += 1
            self.read_tuples += tuples
            self.read_seconds += seconds
            self.ewma_read_seconds = self._smooth(self.ewma_read_seconds, seconds)
            self.ewma_read_fraction = self._smooth(self.ewma_read_fraction, 1.0)

    def recorded_read(
        self, pairs: Iterable[Tuple[object, int]]
    ) -> Iterator[Tuple[object, int]]:
        """Yield from ``pairs``, recording the read when iteration ends.

        The ``finally`` clause runs on exhaustion AND on abandonment
        (generator close), so a page read that stops after ``k`` tuples
        still records its real cost.  Both enumeration paths — the single
        engine's :class:`~repro.enumeration.result.ResultEnumerator` and
        the sharded facade's merge — wrap their iteration in this helper.
        The clock includes consumer think-time between ``next()`` calls.
        """
        produced = 0
        started = time.perf_counter()
        try:
            for item in pairs:
                produced += 1
                yield item
        finally:
            self.record_read(produced, time.perf_counter() - started)

    # ------------------------------------------------------------------
    @property
    def events(self) -> int:
        """Total observed events of both kinds."""
        return self.update_events + self.read_events

    def read_fraction(self) -> float:
        """EWMA-smoothed share of reads in the recent event mix.

        Returns 0.5 before any event is observed — the neutral prior under
        which the cost model has no reason to move ε either way.
        """
        if self.ewma_read_fraction is None:
            return 0.5
        return self.ewma_read_fraction

    def state_dict(self) -> Dict[str, object]:
        """Exact, restorable state (unlike :meth:`as_dict`, which rounds).

        The ``None`` EWMA seeds are preserved as ``None`` — restoring
        them as ``0.0`` would poison the first smoothed value after a
        recovery.  Used by the durability layer to carry telemetry across
        a checkpoint/restart cycle.
        """
        with self._lock:
            return {
                "alpha": self.alpha,
                "update_events": self.update_events,
                "update_tuples": self.update_tuples,
                "update_seconds": self.update_seconds,
                "read_events": self.read_events,
                "read_tuples": self.read_tuples,
                "read_seconds": self.read_seconds,
                "ewma_update_seconds": self.ewma_update_seconds,
                "ewma_read_seconds": self.ewma_read_seconds,
                "ewma_read_fraction": self.ewma_read_fraction,
            }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Overwrite every counter and EWMA from a :meth:`state_dict` dump."""
        with self._lock:
            self.alpha = float(state["alpha"])
            self.update_events = int(state["update_events"])
            self.update_tuples = int(state["update_tuples"])
            self.update_seconds = float(state["update_seconds"])
            self.read_events = int(state["read_events"])
            self.read_tuples = int(state["read_tuples"])
            self.read_seconds = float(state["read_seconds"])
            for name in (
                "ewma_update_seconds",
                "ewma_read_seconds",
                "ewma_read_fraction",
            ):
                value = state[name]
                setattr(self, name, None if value is None else float(value))

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (reported by benchmarks and the serving layer)."""
        return {
            "update_events": self.update_events,
            "update_tuples": self.update_tuples,
            "update_seconds": self.update_seconds,
            "read_events": self.read_events,
            "read_tuples": self.read_tuples,
            "read_seconds": self.read_seconds,
            "ewma_update_seconds": self.ewma_update_seconds or 0.0,
            "ewma_read_seconds": self.ewma_read_seconds or 0.0,
            "read_fraction": self.read_fraction(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadTelemetry(updates={self.update_events}, "
            f"reads={self.read_events}, "
            f"read_fraction={self.read_fraction():.2f})"
        )
