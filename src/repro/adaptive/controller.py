"""The adaptive ε policy: cost model plus hysteresis controller.

The paper leaves ε as a free parameter: update time ``O(N^{δε})`` against
enumeration delay ``O(N^{1−ε})`` (Theorems 2 and 4).  A fixed choice is
right only for a fixed workload — a write burst wants small ε, a read-heavy
serving phase wants large ε.  The two classes here close the loop:

* :class:`CostModel` predicts the per-event cost of running at a candidate
  ε.  The *shape* comes from :meth:`repro.core.planner.QueryPlan.\
expected_exponents` — moving from the current ε to a candidate scales the
  update term by ``N^{δ(ε−ε_cur)}`` and the read term by ``N^{ε_cur−ε}`` —
  and the *scale* comes from telemetry: the observed EWMA per-event costs at
  the current ε anchor both terms, so the model needs no hand-tuned
  constants.  The asymptotic ratios deliberately over-estimate the cost of
  moving away from the current operating point (real constants are smaller
  than ``N^Δ``), which acts as built-in damping: the controller only moves
  when the observed mix clearly calls for it.
* :class:`AdaptiveController` evaluates the model over a candidate grid and
  retunes the engine when the predicted win clears a hysteresis factor, at
  most once per cooldown window.  Retuning costs one preprocessing pass
  (:meth:`~repro.core.api.HierarchicalEngine.retune`), so the policy errs
  toward staying put.

The controller drives any engine exposing ``epsilon`` / ``plan`` /
``telemetry`` / ``retune`` — both :class:`~repro.core.api.\
HierarchicalEngine` and :class:`~repro.sharding.engine.ShardedEngine` —
and :class:`repro.core.serving.EngineServer` consults it after every
committed batch for hands-off auto-retuning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adaptive.telemetry import WorkloadTelemetry

DEFAULT_EPSILON_GRID: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class ShardCapacityConfig:
    """The MAAS-style capacity policy for shard-count proposals.

    A shard nominally holds ``shard_capacity`` base tuples; like MAAS
    pod accounting (total/used/available with an over-commit ratio), the
    *admitted* per-shard total is ``shard_capacity * over_commit_ratio``
    — the slack absorbs transient skew so a brief hot shard does not
    trigger a fleet rebuild.  A split is proposed when any shard's used
    exceeds its over-committed total; a merge when the whole fleet's
    used would fit in ``current_shards - 1`` shards with ``shrink_margin``
    headroom to spare (the asymmetry is deliberate: a reshard costs a
    full re-route, so shrinking must be clearly safe, not merely
    possible).
    """

    shard_capacity: int
    over_commit_ratio: float = 1.5
    min_shards: int = 1
    max_shards: int = 64
    shrink_margin: float = 0.6

    def __post_init__(self) -> None:
        if self.shard_capacity <= 0:
            raise ValueError("shard_capacity must be a positive tuple count")
        if self.over_commit_ratio < 1.0:
            raise ValueError("over_commit_ratio must be >= 1.0")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if not 0.0 < self.shrink_margin <= 1.0:
            raise ValueError("shrink_margin must lie in (0, 1]")


@dataclass(frozen=True)
class ShardCapacity:
    """One shard's capacity accounting: total / used / available."""

    shard: int
    total: int
    used: int

    @property
    def available(self) -> int:
        return self.total - self.used

    @property
    def over_committed(self) -> bool:
        return self.used > self.total


class CostModel:
    """Telemetry-anchored per-event cost prediction over candidate ε."""

    def __init__(self, plan) -> None:
        self.plan = plan

    def predict(
        self,
        epsilon: float,
        current_epsilon: float,
        size: int,
        telemetry: WorkloadTelemetry,
    ) -> float:
        """Predicted per-event cost (seconds) of running at ``epsilon``.

        ``cost(ε) = (1−f)·C_u·N^{u(ε)−u(ε_cur)} + f·C_r·N^{d(ε)−d(ε_cur)}``
        where ``u``/``d`` are the update/delay exponents of
        ``plan.expected_exponents``, ``f`` is the EWMA read fraction, and
        ``C_u``/``C_r`` are the observed EWMA per-event costs at the
        current ε (1.0 when that kind has not been observed yet, which
        reduces the term to the bare asymptotic ratio).
        """
        candidate = self.plan.expected_exponents(epsilon)
        current = self.plan.expected_exponents(current_epsilon)
        n = max(2.0, float(size))
        update_cost = telemetry.ewma_update_seconds
        read_cost = telemetry.ewma_read_seconds
        if update_cost is None or update_cost <= 0.0:
            update_cost = 1.0
        if read_cost is None or read_cost <= 0.0:
            read_cost = 1.0
        update_exp = candidate.get("update", 0.0) - current.get("update", 0.0)
        delay_exp = candidate["delay"] - current["delay"]
        fraction = telemetry.read_fraction()
        return (1.0 - fraction) * update_cost * n**update_exp + (
            fraction * read_cost * n**delay_exp
        )


class AdaptiveController:
    """Propose (and optionally apply) ε and shard-count moves.

    ``hysteresis`` is the minimum predicted cost ratio — current over best
    candidate — before a retune is worth its preprocessing pass;
    ``cooldown`` is the minimum number of telemetry events between
    consecutive structural moves (and before the first), so one noisy
    observation cannot thrash the engine.  When ``capacity`` names a
    :class:`ShardCapacityConfig` and the engine is sharded, the same
    controller also proposes shard-count changes from the same telemetry
    loop — one controller, two knobs — under the *shared* cooldown
    window: a retune and a reshard are both structural moves, and two in
    one window would double-pay the rebuild they each imply.  The
    capacity knob carries its own damping in place of the cost-ratio
    hysteresis: the over-commit ratio absorbs transient skew before a
    split, and the shrink margin demands clear headroom before a merge.
    """

    def __init__(
        self,
        engine,
        epsilons: Sequence[float] = DEFAULT_EPSILON_GRID,
        hysteresis: float = 1.5,
        cooldown: int = 16,
        telemetry: Optional[WorkloadTelemetry] = None,
        capacity: Optional[ShardCapacityConfig] = None,
    ) -> None:
        grid = tuple(sorted(set(float(e) for e in epsilons)))
        if not grid:
            raise ValueError("the candidate grid needs at least one epsilon")
        for epsilon in grid:
            if not 0.0 <= epsilon <= 1.0:
                raise ValueError("every candidate epsilon must lie in [0, 1]")
        if hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0 (a cost ratio)")
        if cooldown < 1:
            raise ValueError("cooldown must be a positive event count")
        self.engine = engine
        self.epsilons = grid
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self.telemetry = telemetry if telemetry is not None else engine.telemetry
        if self.telemetry is None:
            raise ValueError(
                "the engine was built with telemetry=False; pass a "
                "WorkloadTelemetry to the controller (and feed it) instead"
            )
        if capacity is not None and not hasattr(engine, "shard_sizes"):
            raise ValueError(
                "a capacity policy needs a sharded engine (shard_sizes); "
                f"got {type(engine).__name__}"
            )
        self.capacity = capacity
        self.model = CostModel(engine.plan)
        self.retunes_applied = 0
        self.reshards_applied = 0
        self.history: List[Tuple[int, float]] = []
        #: Every applied reshard, as ``(telemetry events, new shard count)``.
        self.reshard_history: List[Tuple[int, int]] = []
        self._events_at_last_retune = 0
        self._events_at_last_reshard = 0

    # ------------------------------------------------------------------
    def _engine_size(self) -> int:
        database = getattr(self.engine, "database", None)
        if database is not None:
            return database.size
        return sum(self.engine.shard_sizes())

    def predicted_costs(self) -> Dict[float, float]:
        """The model's per-event cost for every grid candidate (and current ε)."""
        size = self._engine_size()
        current = self.engine.epsilon
        candidates = set(self.epsilons) | {current}
        return {
            epsilon: self.model.predict(epsilon, current, size, self.telemetry)
            for epsilon in sorted(candidates)
        }

    def propose(self) -> Optional[float]:
        """The ε the engine should move to, or None to stay put.

        Returns None inside the cooldown window, when no candidate beats
        the current ε by the hysteresis factor, or when the winner *is*
        the current ε.
        """
        if self._in_cooldown():
            return None
        costs = self.predicted_costs()
        current = self.engine.epsilon
        best = min(self.epsilons, key=lambda eps: (costs[eps], abs(eps - current)))
        if best == current:
            return None
        if costs[current] < self.hysteresis * costs[best]:
            return None
        return best

    def maybe_retune(self) -> Optional[float]:
        """Apply :meth:`propose` to the engine; returns the ε applied or None."""
        epsilon = self.propose()
        if epsilon is None:
            return None
        self.engine.retune(epsilon)
        self.retunes_applied += 1
        self._events_at_last_retune = self.telemetry.events
        self.history.append((self.telemetry.events, epsilon))
        return epsilon

    # ------------------------------------------------------------------
    # the capacity knob (shard count)
    # ------------------------------------------------------------------
    def _in_cooldown(self) -> bool:
        """Inside the shared window since the last structural move?"""
        last_move = max(self._events_at_last_retune, self._events_at_last_reshard)
        return self.telemetry.events - last_move < self.cooldown

    def capacity_report(self) -> List[ShardCapacity]:
        """Per-shard total/used/available under the capacity policy."""
        if self.capacity is None:
            raise ValueError("this controller was built without a capacity policy")
        total = int(self.capacity.shard_capacity * self.capacity.over_commit_ratio)
        return [
            ShardCapacity(shard=index, total=total, used=int(used))
            for index, used in enumerate(self.engine.shard_sizes())
        ]

    def propose_shards(self) -> Optional[int]:
        """The shard count the fleet should move to, or None to stay put.

        Pure (no engine mutation).  Returns None without a capacity
        policy, inside the shared cooldown window, or when the fleet is
        inside its admitted envelope: a *split* needs some shard over
        its over-committed total, a *merge* needs the whole fleet to fit
        in one fewer shard with the shrink margin to spare.
        """
        if self.capacity is None or self._in_cooldown():
            return None
        policy = self.capacity
        sizes = [int(size) for size in self.engine.shard_sizes()]
        current = len(sizes)
        used = sum(sizes)
        admitted = policy.shard_capacity * policy.over_commit_ratio
        if any(size > admitted for size in sizes):
            # Grow to the count that fits the fleet at *nominal* capacity
            # (not the over-committed total: landing back inside the
            # slack is the point), at least one shard more than now.
            target = max(current + 1, math.ceil(used / policy.shard_capacity))
            target = min(target, policy.max_shards)
            return target if target > current else None
        comfortable = policy.shard_capacity * policy.shrink_margin
        if current > policy.min_shards and used <= comfortable * (current - 1):
            target = max(policy.min_shards, math.ceil(used / comfortable) or 1)
            target = min(target, current - 1)
            return target if target < current else None
        return None

    def record_reshard(self, new_count: int) -> None:
        """Note an applied reshard (resets the shared cooldown window).

        Split out from :meth:`maybe_reshard` so a serving layer driving
        the three-phase protocol itself can keep the controller's
        bookkeeping exact.
        """
        self.reshards_applied += 1
        self._events_at_last_reshard = self.telemetry.events
        self.reshard_history.append((self.telemetry.events, new_count))

    def maybe_reshard(self) -> Optional[int]:
        """Apply :meth:`propose_shards`; returns the count applied or None."""
        target = self.propose_shards()
        if target is None:
            return None
        self.engine.reshard(target)
        self.record_reshard(target)
        return target
