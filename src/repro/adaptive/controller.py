"""The adaptive ε policy: cost model plus hysteresis controller.

The paper leaves ε as a free parameter: update time ``O(N^{δε})`` against
enumeration delay ``O(N^{1−ε})`` (Theorems 2 and 4).  A fixed choice is
right only for a fixed workload — a write burst wants small ε, a read-heavy
serving phase wants large ε.  The two classes here close the loop:

* :class:`CostModel` predicts the per-event cost of running at a candidate
  ε.  The *shape* comes from :meth:`repro.core.planner.QueryPlan.\
expected_exponents` — moving from the current ε to a candidate scales the
  update term by ``N^{δ(ε−ε_cur)}`` and the read term by ``N^{ε_cur−ε}`` —
  and the *scale* comes from telemetry: the observed EWMA per-event costs at
  the current ε anchor both terms, so the model needs no hand-tuned
  constants.  The asymptotic ratios deliberately over-estimate the cost of
  moving away from the current operating point (real constants are smaller
  than ``N^Δ``), which acts as built-in damping: the controller only moves
  when the observed mix clearly calls for it.
* :class:`AdaptiveController` evaluates the model over a candidate grid and
  retunes the engine when the predicted win clears a hysteresis factor, at
  most once per cooldown window.  Retuning costs one preprocessing pass
  (:meth:`~repro.core.api.HierarchicalEngine.retune`), so the policy errs
  toward staying put.

The controller drives any engine exposing ``epsilon`` / ``plan`` /
``telemetry`` / ``retune`` — both :class:`~repro.core.api.\
HierarchicalEngine` and :class:`~repro.sharding.engine.ShardedEngine` —
and :class:`repro.core.serving.EngineServer` consults it after every
committed batch for hands-off auto-retuning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.adaptive.telemetry import WorkloadTelemetry

DEFAULT_EPSILON_GRID: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


class CostModel:
    """Telemetry-anchored per-event cost prediction over candidate ε."""

    def __init__(self, plan) -> None:
        self.plan = plan

    def predict(
        self,
        epsilon: float,
        current_epsilon: float,
        size: int,
        telemetry: WorkloadTelemetry,
    ) -> float:
        """Predicted per-event cost (seconds) of running at ``epsilon``.

        ``cost(ε) = (1−f)·C_u·N^{u(ε)−u(ε_cur)} + f·C_r·N^{d(ε)−d(ε_cur)}``
        where ``u``/``d`` are the update/delay exponents of
        ``plan.expected_exponents``, ``f`` is the EWMA read fraction, and
        ``C_u``/``C_r`` are the observed EWMA per-event costs at the
        current ε (1.0 when that kind has not been observed yet, which
        reduces the term to the bare asymptotic ratio).
        """
        candidate = self.plan.expected_exponents(epsilon)
        current = self.plan.expected_exponents(current_epsilon)
        n = max(2.0, float(size))
        update_cost = telemetry.ewma_update_seconds
        read_cost = telemetry.ewma_read_seconds
        if update_cost is None or update_cost <= 0.0:
            update_cost = 1.0
        if read_cost is None or read_cost <= 0.0:
            read_cost = 1.0
        update_exp = candidate.get("update", 0.0) - current.get("update", 0.0)
        delay_exp = candidate["delay"] - current["delay"]
        fraction = telemetry.read_fraction()
        return (1.0 - fraction) * update_cost * n**update_exp + (
            fraction * read_cost * n**delay_exp
        )


class AdaptiveController:
    """Propose (and optionally apply) ε changes with hysteresis.

    ``hysteresis`` is the minimum predicted cost ratio — current over best
    candidate — before a retune is worth its preprocessing pass;
    ``cooldown`` is the minimum number of telemetry events between
    consecutive retunes (and before the first), so one noisy observation
    cannot thrash the engine.
    """

    def __init__(
        self,
        engine,
        epsilons: Sequence[float] = DEFAULT_EPSILON_GRID,
        hysteresis: float = 1.5,
        cooldown: int = 16,
        telemetry: Optional[WorkloadTelemetry] = None,
    ) -> None:
        grid = tuple(sorted(set(float(e) for e in epsilons)))
        if not grid:
            raise ValueError("the candidate grid needs at least one epsilon")
        for epsilon in grid:
            if not 0.0 <= epsilon <= 1.0:
                raise ValueError("every candidate epsilon must lie in [0, 1]")
        if hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0 (a cost ratio)")
        if cooldown < 1:
            raise ValueError("cooldown must be a positive event count")
        self.engine = engine
        self.epsilons = grid
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self.telemetry = telemetry if telemetry is not None else engine.telemetry
        if self.telemetry is None:
            raise ValueError(
                "the engine was built with telemetry=False; pass a "
                "WorkloadTelemetry to the controller (and feed it) instead"
            )
        self.model = CostModel(engine.plan)
        self.retunes_applied = 0
        self.history: List[Tuple[int, float]] = []
        self._events_at_last_retune = 0

    # ------------------------------------------------------------------
    def _engine_size(self) -> int:
        database = getattr(self.engine, "database", None)
        if database is not None:
            return database.size
        return sum(self.engine.shard_sizes())

    def predicted_costs(self) -> Dict[float, float]:
        """The model's per-event cost for every grid candidate (and current ε)."""
        size = self._engine_size()
        current = self.engine.epsilon
        candidates = set(self.epsilons) | {current}
        return {
            epsilon: self.model.predict(epsilon, current, size, self.telemetry)
            for epsilon in sorted(candidates)
        }

    def propose(self) -> Optional[float]:
        """The ε the engine should move to, or None to stay put.

        Returns None inside the cooldown window, when no candidate beats
        the current ε by the hysteresis factor, or when the winner *is*
        the current ε.
        """
        events = self.telemetry.events
        if events - self._events_at_last_retune < self.cooldown:
            return None
        costs = self.predicted_costs()
        current = self.engine.epsilon
        best = min(self.epsilons, key=lambda eps: (costs[eps], abs(eps - current)))
        if best == current:
            return None
        if costs[current] < self.hysteresis * costs[best]:
            return None
        return best

    def maybe_retune(self) -> Optional[float]:
        """Apply :meth:`propose` to the engine; returns the ε applied or None."""
        epsilon = self.propose()
        if epsilon is None:
            return None
        self.engine.retune(epsilon)
        self.retunes_applied += 1
        self._events_at_last_retune = self.telemetry.events
        self.history.append((self.telemetry.events, epsilon))
        return epsilon
