"""Workload-adaptive ε retuning: telemetry, cost model, controller.

The paper's ε knob trades update time ``O(N^{δε})`` against enumeration
delay ``O(N^{1−ε})``; this package makes the knob *live*.  A
:class:`WorkloadTelemetry` collector (threaded through the maintenance
driver and the enumeration paths) observes the real read/write mix and
per-operation costs; a :class:`CostModel` built on
``plan.expected_exponents(ε)`` predicts what each candidate ε would cost
under that mix; and an :class:`AdaptiveController` retunes the engine —
via :meth:`repro.core.api.HierarchicalEngine.retune`, one major-rebalance
pass — whenever the predicted win clears a hysteresis bar.  The same controller
optionally drives a second knob: a MAAS-style
:class:`ShardCapacityConfig` (per-shard total/used/available with an
over-commit ratio) proposes online shard-count changes for
:class:`~repro.sharding.engine.ShardedEngine` under the shared cooldown
discipline.  See ``docs/architecture.md`` §11 for the full design,
including when adaptation loses, and §14 for resharding.
"""

from repro.adaptive.controller import (
    DEFAULT_EPSILON_GRID,
    AdaptiveController,
    CostModel,
    ShardCapacity,
    ShardCapacityConfig,
)
from repro.adaptive.telemetry import WorkloadTelemetry

__all__ = [
    "AdaptiveController",
    "CostModel",
    "DEFAULT_EPSILON_GRID",
    "ShardCapacity",
    "ShardCapacityConfig",
    "WorkloadTelemetry",
]
