"""repro — a reproduction of "Trade-offs in Static and Dynamic Evaluation of
Hierarchical Queries" (Kara, Nikolic, Olteanu, Zhang; PODS 2020).

The package implements the paper's IVM^ε algorithm end to end: hierarchical
query classification, canonical/free-top variable orders, static and dynamic
width measures, skew-aware view trees over heavy/light partitions,
preprocessing, constant-delay-style enumeration with the Union and Product
algorithms, and incremental maintenance with minor/major rebalancing — plus
baselines, synthetic workloads, and a benchmark harness that regenerates the
shape of every figure in the paper.

Quickstart::

    from repro import Database, HierarchicalEngine

    db = Database.from_dict({
        "R": (("A", "B"), [(1, 10), (2, 10)]),
        "S": (("B", "C"), [(10, 5)]),
    })
    engine = HierarchicalEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5)
    engine.load(db)
    print(engine.result())
"""

from repro.adaptive import AdaptiveController, WorkloadTelemetry
from repro.core.api import DynamicEngine, HierarchicalEngine, StaticEngine
from repro.core.serving import EngineServer
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.update import Update, UpdateBatch, UpdateStream
from repro.snapshot import Snapshot
from repro.query.atom import Atom, atom
from repro.query.classes import classify
from repro.query.conjunctive import ConjunctiveQuery, query
from repro.query.parser import parse_query
from repro.rings import AggregateSpec, Ring, get_ring, ring_names
from repro.sharding import ShardedEngine
from repro.widths.dynamic_width import dynamic_width
from repro.widths.static_width import static_width

__version__ = "1.0.0"

__all__ = [
    "AdaptiveController",
    "AggregateSpec",
    "Atom",
    "ConjunctiveQuery",
    "Database",
    "DynamicEngine",
    "EngineServer",
    "HierarchicalEngine",
    "Relation",
    "Ring",
    "ShardedEngine",
    "Snapshot",
    "StaticEngine",
    "Update",
    "UpdateBatch",
    "UpdateStream",
    "WorkloadTelemetry",
    "atom",
    "classify",
    "dynamic_width",
    "get_ring",
    "parse_query",
    "query",
    "ring_names",
    "static_width",
    "__version__",
]
