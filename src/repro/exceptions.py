"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  The exception names mirror the constraints stated
in the paper (Section 3 of Kara et al., PODS 2020): deletes that would drive a
multiplicity negative are *rejected*, queries outside the supported fragment
raise :class:`UnsupportedQueryError`, and schema mismatches between tuples and
relations raise :class:`SchemaError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SchemaError(ReproError):
    """A tuple, projection, or join does not match the expected schema."""


class RejectedUpdateError(ReproError):
    """A delete would make a tuple's multiplicity negative.

    The paper's update model (Section 3, "Modeling Updates Using
    Multiplicities") requires all stored multiplicities to remain strictly
    positive; a delete of ``m`` copies of a tuple with fewer than ``m``
    existing copies is rejected.
    """


class UnsupportedQueryError(ReproError):
    """The query lies outside the fragment supported by this implementation.

    The engine supports hierarchical conjunctive queries with arbitrary free
    variables, without repeating relation symbols, and with at least one atom
    of non-empty schema (the paper's footnotes 1 and 2).
    """


class NotHierarchicalError(UnsupportedQueryError):
    """The query is not hierarchical (Definition 1 of the paper)."""


class UnknownRelationError(ReproError):
    """An update or lookup referenced a relation not present in the database."""


class EnumerationError(ReproError):
    """The enumeration iterators were driven outside their protocol.

    For example calling ``next`` on an iterator that has not been opened.
    """


class InvariantViolationError(ReproError):
    """An internal data-structure invariant was violated.

    These errors indicate bugs in the maintenance logic (for example a
    partition whose heavy and light parts overlap on a key) and are used
    extensively by the consistency checkers exercised in the test suite.
    """


class StaleStateError(ReproError):
    """A snapshot or enumerator outlived the engine state it was built on.

    ``engine.load()`` replaces the engine's database, views, and indicator
    structures wholesale; any :class:`repro.snapshot.Snapshot` or live
    enumerator created against the previous load would otherwise silently
    read a mixture of old and new state.  Both raise this error instead.
    """


class DurabilityError(ReproError):
    """The durability layer hit an unrecoverable on-disk inconsistency.

    Torn WAL tails and corrupt trailing checkpoints are *expected* crash
    residue and are repaired silently (with a log line) during recovery;
    this error is reserved for states no crash of this code can produce —
    a directory with no readable checkpoint at all, a WAL whose records
    contradict the checkpoint they should extend, or a recovery replay
    that lands on the wrong version.
    """


class WriterFailedError(ReproError):
    """The serving writer loop died; readers must not keep serving silently.

    :class:`repro.core.serving.EngineServer` captures a writer-loop
    exception and — instead of sitting on it until ``stop_writer`` — raises
    this from :meth:`~repro.core.serving.EngineServer.check_writer`, which
    every read consults.  The original exception is attached as
    ``__cause__`` and is still re-raised by ``stop_writer``.
    """


class WorkerDiedError(ReproError):
    """A shard worker process died while a command was in flight.

    Carries the indexes of the dead shards so a supervisor
    (:class:`repro.durability.ShardSupervisor`) can restart and recover
    exactly the affected workers while the rest keep serving.
    """

    def __init__(self, shard_indexes, message: str = "") -> None:
        self.shard_indexes = tuple(sorted(shard_indexes))
        detail = message or (
            f"shard worker(s) {list(self.shard_indexes)} died mid-command"
        )
        super().__init__(detail)
