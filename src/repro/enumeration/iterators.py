"""View-tree iterators: the open/next/close protocol of Figures 13–14.

Each iterator enumerates, for a given context (an assignment of the variables
fixed by its ancestors), the *distinct* tuples over the free query variables
contributed by its subtree, together with their multiplicities.  Three cases
arise, mirroring the paper:

* **direct** — the root view's schema already covers all free variables of
  the subtree: enumerate the matching view entries;
* **grounded** — the node has a heavy-indicator child ``∃H``: ground the
  indicator (one bucket per heavy key matching the context) and take the
  Union of the buckets, projecting away the grounded bound values so that
  identical free tuples coming from different heavy keys are deduplicated
  (cf. Example 28);
* **iterate** — otherwise: iterate over the root view's entries matching the
  context (each adds the node's free variable) and, for each, produce the
  Product of the children's iterators.

Iterators are re-openable: ``open(ctx)`` can be called again after ``close``,
which is what the Product odometer relies on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator as TypingIterator, List, Mapping, Optional, Sequence, Tuple

from repro.data.schema import ValueTuple
from repro.engine.join import BoundRelation
from repro.enumeration.lookup import lookup_multiplicity
from repro.enumeration.union import UnionIterator, UnionSource
from repro.exceptions import EnumerationError
from repro.views.view import IndicatorLeaf, ViewTreeNode

Assignment = Dict[str, object]


class TreeIterator(UnionSource):
    """Common interface of all view-tree iterators."""

    def __init__(self, free_order: Tuple[str, ...]) -> None:
        self.free_order = free_order
        self.out_vars: Tuple[str, ...] = ()
        self._ctx: Assignment = {}
        self._opened = False

    # -- protocol ----------------------------------------------------------
    def open(self, ctx: Mapping[str, object]) -> None:
        raise NotImplementedError

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        raise NotImplementedError

    def lookup(self, key: ValueTuple) -> int:
        raise NotImplementedError

    def close(self) -> None:
        self._opened = False

    # -- helpers -------------------------------------------------------------
    def _require_open(self) -> None:
        if not self._opened:
            raise EnumerationError("iterator used before open()")

    def _set_context(self, ctx: Mapping[str, object], subtree_vars: FrozenSet[str]) -> None:
        self._ctx = dict(ctx)
        free_in_subtree = [v for v in self.free_order if v in subtree_vars]
        self.out_vars = tuple(v for v in free_in_subtree if v not in self._ctx)
        self._opened = True

    def _key_to_assignment(self, key: ValueTuple) -> Assignment:
        assignment = dict(self._ctx)
        assignment.update(zip(self.out_vars, key))
        return assignment


class DirectIterator(TreeIterator):
    """Enumerate straight from a view whose schema covers the subtree's free vars."""

    def __init__(self, tree: ViewTreeNode, free_order: Tuple[str, ...]) -> None:
        super().__init__(free_order)
        self.tree = tree
        self._subtree_vars = tree.variables()
        self._free_set = frozenset(free_order)
        self._stream: Optional[TypingIterator[Tuple[ValueTuple, int]]] = None

    def open(self, ctx: Mapping[str, object]) -> None:
        self._set_context(ctx, self._subtree_vars)
        bound = BoundRelation(self.tree.schema, self.tree.relation())
        probe = {v: ctx[v] for v in self.tree.schema if v in ctx}
        out_positions = [
            self.tree.schema.index(v) for v in self.out_vars
        ]
        extra = [
            v
            for v in self.tree.schema
            if v not in probe and v not in self._free_set
        ]
        if not extra:
            def stream() -> TypingIterator[Tuple[ValueTuple, int]]:
                for tup, mult in bound.matching(probe):
                    yield tuple(tup[i] for i in out_positions), mult

            self._stream = stream()
        else:
            # Defensive fallback (not reached for τ-built trees): aggregate
            # over the non-free, non-context variables before enumerating.
            grouped: Dict[ValueTuple, int] = {}
            for tup, mult in bound.matching(probe):
                key = tuple(tup[i] for i in out_positions)
                grouped[key] = grouped.get(key, 0) + mult
            self._stream = iter(grouped.items())

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        self._require_open()
        assert self._stream is not None
        return next(self._stream, None)

    def lookup(self, key: ValueTuple) -> int:
        return lookup_multiplicity(
            self.tree, self._free_set, self._key_to_assignment(key)
        )


class ProductIterator(TreeIterator):
    """Cartesian product of child iterators under a shared context (Figure 16)."""

    def __init__(
        self, children: Sequence[TreeIterator], free_order: Tuple[str, ...]
    ) -> None:
        super().__init__(free_order)
        self.children: Tuple[TreeIterator, ...] = tuple(children)
        self._current: List[Optional[Tuple[ValueTuple, int]]] = []
        self._exhausted = False

    def open(self, ctx: Mapping[str, object]) -> None:
        self._ctx = dict(ctx)
        self._opened = True
        self._exhausted = False
        self._current = []
        out: List[str] = []
        for child in self.children:
            child.open(ctx)
            out.extend(v for v in child.out_vars if v not in out)
        self.out_vars = tuple(v for v in self.free_order if v in out)
        # prime the odometer: every child must produce at least one tuple
        for child in self.children:
            item = child.next()
            if item is None:
                self._exhausted = True
                return
            self._current.append(item)
        self._primed = True
        self._first = True

    def _emit(self) -> Tuple[ValueTuple, int]:
        assignment: Assignment = {}
        mult = 1
        for child, item in zip(self.children, self._current):
            key, child_mult = item  # type: ignore[misc]
            assignment.update(zip(child.out_vars, key))
            mult *= child_mult
        return tuple(assignment[v] for v in self.out_vars), mult

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        self._require_open()
        if self._exhausted:
            return None
        if not self.children:
            if self._first:
                self._first = False
                return (), 1
            return None
        if self._first:
            self._first = False
            return self._emit()
        # advance the odometer starting from the last child
        position = len(self.children) - 1
        while position >= 0:
            item = self.children[position].next()
            if item is not None:
                self._current[position] = item
                for later in range(position + 1, len(self.children)):
                    child = self.children[later]
                    child.close()
                    child.open(self._ctx)
                    first = child.next()
                    if first is None:  # pragma: no cover - cannot happen once primed
                        self._exhausted = True
                        return None
                    self._current[later] = first
                return self._emit()
            position -= 1
        self._exhausted = True
        return None

    def lookup(self, key: ValueTuple) -> int:
        assignment = self._key_to_assignment(key)
        total = 1
        for child in self.children:
            child_key = tuple(assignment[v] for v in child.out_vars)
            total *= child.lookup(child_key)
            if total == 0:
                return 0
        return total


class IterateIterator(TreeIterator):
    """Iterate the root view's matching entries, producing a Product per entry."""

    def __init__(self, tree: ViewTreeNode, free_order: Tuple[str, ...]) -> None:
        super().__init__(free_order)
        self.tree = tree
        self._free_set = frozenset(free_order)
        self._subtree_vars = tree.variables()
        self._child_iterators = tuple(
            build_iterator(child, free_order) for child in tree.children
        )
        self._entries: Optional[TypingIterator[Tuple[ValueTuple, int]]] = None
        self._product: Optional[ProductIterator] = None
        self._entry_assignment: Assignment = {}

    def open(self, ctx: Mapping[str, object]) -> None:
        self._set_context(ctx, self._subtree_vars)
        bound = BoundRelation(self.tree.schema, self.tree.relation())
        probe = {v: ctx[v] for v in self.tree.schema if v in ctx}
        self._entries = bound.matching(probe)
        self._product = None

    def _advance_entry(self) -> bool:
        assert self._entries is not None
        item = next(self._entries, None)
        if item is None:
            return False
        tup, _mult = item
        self._entry_assignment = dict(self._ctx)
        self._entry_assignment.update(zip(self.tree.schema, tup))
        product = ProductIterator(self._child_iterators, self.free_order)
        product.open(self._entry_assignment)
        self._product = product
        return True

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        self._require_open()
        while True:
            if self._product is None:
                if not self._advance_entry():
                    return None
            assert self._product is not None
            item = self._product.next()
            if item is None:
                self._product = None
                continue
            key, mult = item
            assignment = dict(self._entry_assignment)
            assignment.update(zip(self._product.out_vars, key))
            return tuple(assignment[v] for v in self.out_vars), mult

    def lookup(self, key: ValueTuple) -> int:
        return lookup_multiplicity(
            self.tree, self._free_set, self._key_to_assignment(key)
        )


class GroundedIterator(TreeIterator):
    """Ground a heavy indicator and Union the per-key buckets (Figures 13–14)."""

    def __init__(self, tree: ViewTreeNode, free_order: Tuple[str, ...]) -> None:
        super().__init__(free_order)
        self.tree = tree
        self._free_set = frozenset(free_order)
        self._subtree_vars = tree.variables()
        self.indicator = next(
            c for c in tree.children if isinstance(c, IndicatorLeaf)
        )
        self.others = tuple(c for c in tree.children if c is not self.indicator)
        self._union: Optional[UnionIterator] = None

    def open(self, ctx: Mapping[str, object]) -> None:
        self._set_context(ctx, self._subtree_vars)
        bound = BoundRelation(self.indicator.schema, self.indicator.relation())
        probe = {v: ctx[v] for v in self.indicator.schema if v in ctx}
        buckets: List[_Bucket] = []
        for key_tuple, _mult in bound.matching(probe):
            grounded_ctx = dict(ctx)
            grounded_ctx.update(zip(self.indicator.schema, key_tuple))
            buckets.append(
                _Bucket(self.others, grounded_ctx, self.free_order, self._free_set)
            )
        self._buckets = buckets
        self._union = UnionIterator(buckets) if buckets else None

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        self._require_open()
        if self._union is None:
            return None
        return self._union.next()

    def lookup(self, key: ValueTuple) -> int:
        return lookup_multiplicity(
            self.tree, self._free_set, self._key_to_assignment(key)
        )


class _Bucket(UnionSource):
    """One grounded instance of a view tree: the Product of the non-indicator
    children under a context extended with one heavy key."""

    def __init__(
        self,
        children: Sequence[ViewTreeNode],
        ctx: Assignment,
        free_order: Tuple[str, ...],
        free_set: FrozenSet[str],
    ) -> None:
        self._children = tuple(children)
        self._ctx = ctx
        self._free_set = free_set
        self._product = ProductIterator(
            tuple(build_iterator(child, free_order) for child in children),
            free_order,
        )
        self._product.open(ctx)

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        return self._product.next()

    def lookup(self, key: ValueTuple) -> int:
        assignment = dict(self._ctx)
        assignment.update(zip(self._product.out_vars, key))
        total = 1
        for child in self._children:
            total *= lookup_multiplicity(child, self._free_set, assignment)
            if total == 0:
                return 0
        return total


def build_iterator(
    tree: ViewTreeNode, free_order: Tuple[str, ...]
) -> TreeIterator:
    """Choose the iterator kind for a view-tree node (cases of Figure 13)."""
    free_set = set(free_order)
    free_in_subtree = tree.variables() & free_set
    if tree.is_leaf() or free_in_subtree <= set(tree.schema):
        return DirectIterator(tree, free_order)
    if any(isinstance(child, IndicatorLeaf) for child in tree.children):
        return GroundedIterator(tree, free_order)
    return IterateIterator(tree, free_order)
