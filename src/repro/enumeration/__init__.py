"""Enumeration: view-tree iterators, Union and Product algorithms, results."""

from repro.enumeration.iterators import (
    DirectIterator,
    GroundedIterator,
    IterateIterator,
    ProductIterator,
    TreeIterator,
    build_iterator,
)
from repro.enumeration.lookup import lookup_multiplicity
from repro.enumeration.result import ResultEnumerator
from repro.enumeration.union import CallbackSource, UnionIterator, UnionSource

__all__ = [
    "CallbackSource",
    "DirectIterator",
    "GroundedIterator",
    "IterateIterator",
    "ProductIterator",
    "ResultEnumerator",
    "TreeIterator",
    "UnionIterator",
    "UnionSource",
    "build_iterator",
    "lookup_multiplicity",
]
