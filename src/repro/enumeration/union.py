"""The Union algorithm (Figure 15, after Durand & Strozecki).

Given ``n`` sources that enumerate possibly overlapping sets of tuples over
the same schema — each with its own per-tuple multiplicity and a constant(ish)
time ``lookup`` — the union iterator enumerates every *distinct* tuple exactly
once, with multiplicity equal to the sum of its multiplicities across the
sources, and with delay bounded by the sum of the sources' delays.

The trick: when the next tuple of the first ``n−1`` sources also occurs in
the ``n``-th source, output the next tuple of the ``n``-th source instead
(it is new by construction); the skipped tuple will be produced when the
``n``-th source reaches it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.data.schema import ValueTuple


class UnionSource:
    """Interface expected from union inputs.

    ``next`` returns ``(key, multiplicity)`` pairs with pairwise-distinct
    keys, or ``None`` when exhausted; ``lookup`` returns the multiplicity of
    a key in this source (0 when absent).
    """

    def next(self) -> Optional[Tuple[ValueTuple, int]]:  # pragma: no cover - interface
        raise NotImplementedError

    def lookup(self, key: ValueTuple) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class UnionIterator(UnionSource):
    """Distinct-tuple enumeration of the union of several sources."""

    def __init__(self, sources: Sequence[UnionSource]) -> None:
        if not sources:
            raise ValueError("UnionIterator needs at least one source")
        self._sources: Tuple[UnionSource, ...] = tuple(sources)
        if len(self._sources) == 1:
            self._left: Optional[UnionIterator] = None
            self._left_sources: Tuple[UnionSource, ...] = ()
            self._last: UnionSource = self._sources[0]
        else:
            self._left = UnionIterator(self._sources[:-1])
            self._left_sources = self._sources[:-1]
            self._last = self._sources[-1]
        self._left_exhausted = False

    # ------------------------------------------------------------------
    def lookup(self, key: ValueTuple) -> int:
        """Total multiplicity of ``key`` across all sources."""
        return sum(source.lookup(key) for source in self._sources)

    def _total_with_left(self, key: ValueTuple, last_mult: int) -> int:
        return last_mult + sum(source.lookup(key) for source in self._left_sources)

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        if self._left is None:
            return self._last.next()
        while not self._left_exhausted:
            item = self._left.next()
            if item is None:
                self._left_exhausted = True
                break
            key, left_mult = item
            last_mult = self._last.lookup(key)
            if last_mult == 0:
                return key, left_mult
            nxt = self._last.next()
            if nxt is None:
                # Defensive: the invariant guarantees the last source is not
                # exhausted while collisions remain; fall back to emitting the
                # collided tuple with its full multiplicity.
                return key, left_mult + last_mult
            last_key, mult = nxt
            return last_key, self._total_with_left(last_key, mult)
        nxt = self._last.next()
        if nxt is None:
            return None
        last_key, mult = nxt
        return last_key, self._total_with_left(last_key, mult)


class CallbackSource(UnionSource):
    """Adapter turning ``next``/``lookup`` callables into a union source."""

    def __init__(
        self,
        next_fn: Callable[[], Optional[Tuple[ValueTuple, int]]],
        lookup_fn: Callable[[ValueTuple], int],
    ) -> None:
        self._next_fn = next_fn
        self._lookup_fn = lookup_fn

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        return self._next_fn()

    def lookup(self, key: ValueTuple) -> int:
        return self._lookup_fn(key)
