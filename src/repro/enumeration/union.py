"""The Union algorithm (Figure 15, after Durand & Strozecki).

Given ``n`` sources that enumerate possibly overlapping sets of tuples over
the same schema — each with its own per-tuple multiplicity and a constant(ish)
time ``lookup`` — the union iterator enumerates every *distinct* tuple exactly
once, with multiplicity equal to the sum of its multiplicities across the
sources, and with delay bounded by the sum of the sources' delays.

The trick: when the next tuple of the first ``n−1`` sources also occurs in
the ``n``-th source, output the next tuple of the ``n``-th source instead
(it is new by construction); the skipped tuple will be produced when the
``n``-th source reaches it.

The module also hosts the *shard-merging* enumeration path of
:mod:`repro.sharding`: :func:`merge_shards` performs an order-preserving
k-way merge of per-shard enumerations sorted by :func:`canonical_sort_key`,
summing multiplicities of tuples produced by several shards.  Union handles
sources over one engine's disjoint strategies; the shard merge handles
sources that are whole engines.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.data.schema import ValueTuple


class UnionSource:
    """Interface expected from union inputs.

    ``next`` returns ``(key, multiplicity)`` pairs with pairwise-distinct
    keys, or ``None`` when exhausted; ``lookup`` returns the multiplicity of
    a key in this source (0 when absent).
    """

    def next(self) -> Optional[Tuple[ValueTuple, int]]:  # pragma: no cover - interface
        raise NotImplementedError

    def lookup(self, key: ValueTuple) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class UnionIterator(UnionSource):
    """Distinct-tuple enumeration of the union of several sources."""

    def __init__(self, sources: Sequence[UnionSource]) -> None:
        if not sources:
            raise ValueError("UnionIterator needs at least one source")
        self._sources: Tuple[UnionSource, ...] = tuple(sources)
        if len(self._sources) == 1:
            self._left: Optional[UnionIterator] = None
            self._left_sources: Tuple[UnionSource, ...] = ()
            self._last: UnionSource = self._sources[0]
        else:
            self._left = UnionIterator(self._sources[:-1])
            self._left_sources = self._sources[:-1]
            self._last = self._sources[-1]
        self._left_exhausted = False

    # ------------------------------------------------------------------
    def lookup(self, key: ValueTuple) -> int:
        """Total multiplicity of ``key`` across all sources."""
        return sum(source.lookup(key) for source in self._sources)

    def _total_with_left(self, key: ValueTuple, last_mult: int) -> int:
        return last_mult + sum(source.lookup(key) for source in self._left_sources)

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        if self._left is None:
            return self._last.next()
        while not self._left_exhausted:
            item = self._left.next()
            if item is None:
                self._left_exhausted = True
                break
            key, left_mult = item
            last_mult = self._last.lookup(key)
            if last_mult == 0:
                return key, left_mult
            nxt = self._last.next()
            if nxt is None:
                # Defensive: the invariant guarantees the last source is not
                # exhausted while collisions remain; fall back to emitting the
                # collided tuple with its full multiplicity.
                return key, left_mult + last_mult
            last_key, mult = nxt
            return last_key, self._total_with_left(last_key, mult)
        nxt = self._last.next()
        if nxt is None:
            return None
        last_key, mult = nxt
        return last_key, self._total_with_left(last_key, mult)


# ----------------------------------------------------------------------
# shard merging (the sharded engine's enumeration path)
# ----------------------------------------------------------------------
def canonical_sort_key(tup: ValueTuple) -> Tuple:
    """A total, deterministic sort key over result tuples of mixed types.

    Python refuses to order values of different types (``3 < "a"`` raises),
    so the canonical enumeration order of the sharded engine sorts each
    component under a type tag — values of one kind order naturally,
    different kinds order by tag, and unorderable values fall back to their
    ``repr``.  All numbers share one tag because tuple equality already
    treats ``1 == 1.0 == True`` as the same value (numeric comparison
    across int/float is exact in Python), so two shards producing
    numerically equal tuples group — and sum — correctly in the merge.
    The key is process-independent, which is what makes sharded enumeration
    byte-identical across runs and executors.
    """
    return tuple(
        ("num", v)
        if isinstance(v, (bool, int, float))
        else (type(v).__name__, v)
        if isinstance(v, (str, bytes))
        else (type(v).__name__, repr(v))
        for v in tup
    )


def sort_shard_result(
    pairs: Iterable[Tuple[ValueTuple, int]]
) -> List[Tuple[ValueTuple, int]]:
    """Materialize one shard's enumeration in canonical order."""
    return sorted(pairs, key=lambda pair: canonical_sort_key(pair[0]))


def merge_shards(
    sources: Sequence[Iterable[Tuple[ValueTuple, int]]]
) -> Iterator[Tuple[ValueTuple, int]]:
    """Order-preserving k-way merge of per-shard enumerations.

    Every source must yield ``(tuple, multiplicity)`` pairs in
    :func:`canonical_sort_key` order with pairwise-distinct tuples (each
    shard engine already enumerates distinct tuples; shards themselves may
    overlap when the shard key is not free in the query).  The merge yields
    every distinct tuple exactly once, in canonical order, with multiplicity
    summed across the shards that produced it — so the merged result is
    exactly the single-engine result, reordered canonically.

    The merge holds one pending pair per shard (a heap of size k), so the
    delay between outputs is ``O(log k)`` plus the shards' own delays.  An
    out-of-order source is reported with :class:`ValueError` rather than
    silently mis-merged.
    """
    iterators = [iter(source) for source in sources]
    last_keys: List[Optional[Tuple]] = [None] * len(iterators)
    heap: List[Tuple[Tuple, int, ValueTuple, int]] = []

    def pull(index: int) -> None:
        item = next(iterators[index], None)
        if item is None:
            return
        tup, mult = item
        key = canonical_sort_key(tup)
        previous = last_keys[index]
        if previous is not None and key <= previous:
            raise ValueError(
                f"shard source {index} enumerated {tup!r} out of canonical "
                "order; merge_shards requires sorted, duplicate-free sources"
            )
        last_keys[index] = key
        heapq.heappush(heap, (key, index, tup, mult))

    for index in range(len(iterators)):
        pull(index)
    while heap:
        key, index, tup, mult = heapq.heappop(heap)
        pull(index)
        while heap and heap[0][0] == key:
            _, other, _tup, other_mult = heapq.heappop(heap)
            mult += other_mult
            pull(other)
        if mult != 0:
            yield tup, mult


def merge_shard_aggregates(partials, ring):
    """Merge per-shard partial aggregates with the ring's ``combine``.

    Each partial is a mapping ``{group: (support, element)}`` computed over
    one shard's slice of the result.  Grouped aggregation is a ring
    homomorphism of the shard decomposition — supports add, elements merge
    with :meth:`~repro.rings.base.Ring.combine` — so the merged map equals
    the single-engine aggregate without materializing any enumeration.
    This is the aggregate counterpart of :func:`merge_shards`: O(groups)
    instead of an order-preserving k-way merge over the full result.
    Groups whose merged support cancels to zero are dropped (a group
    produced by several shards exists iff tuples survive somewhere).
    """
    merged: dict = {}
    for partial in partials:
        items = partial.items() if hasattr(partial, "items") else partial
        for group, (support, element) in items:
            present = merged.get(group)
            if present is None:
                merged[group] = (support, element)
            else:
                merged[group] = (
                    present[0] + support,
                    ring.combine(present[1], element),
                )
    return {
        group: (support, element)
        for group, (support, element) in merged.items()
        if support != 0
    }


class CallbackSource(UnionSource):
    """Adapter turning ``next``/``lookup`` callables into a union source."""

    def __init__(
        self,
        next_fn: Callable[[], Optional[Tuple[ValueTuple, int]]],
        lookup_fn: Callable[[ValueTuple], int],
    ) -> None:
        self._next_fn = next_fn
        self._lookup_fn = lookup_fn

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        return self._next_fn()

    def lookup(self, key: ValueTuple) -> int:
        return self._lookup_fn(key)
