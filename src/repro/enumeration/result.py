"""Top-level result enumeration over a skew-aware plan.

Per connected component of the query, the strategy trees produced by τ are
combined with the Union algorithm (their bound-variable valuations are
disjoint, so summing multiplicities yields the component's result); across
components the Product algorithm assembles the final tuples (Section 5).

The enumerator yields ``(tuple, multiplicity)`` pairs where the tuple follows
the order of the query head.  It also offers ``to_dict``/``count`` helpers
and per-``next`` timing hooks used by the benchmark harness to measure the
enumeration delay.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.data.schema import ValueTuple
from repro.enumeration.iterators import TreeIterator, build_iterator
from repro.enumeration.lookup import lookup_head_multiplicity, lookup_multiplicity
from repro.enumeration.union import UnionIterator, UnionSource
from repro.exceptions import SchemaError
from repro.query.conjunctive import ConjunctiveQuery
from repro.rings.spec import AggregateSpec, answer_map, fold_result
from repro.views.skew import SkewAwarePlan
from repro.views.view import ViewTreeNode


class _TreeSource(UnionSource):
    """A strategy tree opened with the empty context, seen as a union source."""

    def __init__(self, tree: ViewTreeNode, free_order: Tuple[str, ...]) -> None:
        self.tree = tree
        self.free_order = free_order
        self._free_set = frozenset(free_order)
        self.iterator: TreeIterator = build_iterator(tree, free_order)
        self.iterator.open({})
        self.out_vars = self.iterator.out_vars

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        return self.iterator.next()

    def lookup(self, key: ValueTuple) -> int:
        assignment = dict(zip(self.out_vars, key))
        return lookup_multiplicity(self.tree, self._free_set, assignment)


class _ComponentEnumerator:
    """Union of the strategy trees of one connected component."""

    def __init__(self, trees: Sequence[ViewTreeNode], free_order: Tuple[str, ...]) -> None:
        self.trees = tuple(trees)
        self.free_order = free_order
        self.reset()

    def reset(self) -> None:
        self._sources = [_TreeSource(tree, self.free_order) for tree in self.trees]
        self.out_vars = self._sources[0].out_vars if self._sources else ()
        self._union = UnionIterator(self._sources) if self._sources else None

    def next(self) -> Optional[Tuple[ValueTuple, int]]:
        if self._union is None:
            return None
        return self._union.next()


class ResultEnumerator:
    """Enumerates the distinct result tuples of a query with multiplicities."""

    def __init__(
        self,
        plan: SkewAwarePlan,
        query: ConjunctiveQuery,
        validator: Optional[Callable[[], None]] = None,
        telemetry=None,
    ) -> None:
        self.plan = plan
        self.query = query
        self.head: Tuple[str, ...] = tuple(query.head)
        # Called before every produced tuple; the engine passes a generation
        # check that raises StaleStateError once load() has replaced the
        # state this enumerator walks (mid-iteration included).
        self._validator = validator
        # Optional repro.adaptive.WorkloadTelemetry: each iteration records
        # how many tuples it produced and how long it ran — partial reads
        # included, via the generator's finalization — so the adaptive ε
        # controller sees real enumeration costs.
        self._telemetry = telemetry
        self._components = [
            _ComponentEnumerator(trees, self.head) for trees in plan.component_trees
        ]
        self._delays: List[float] = []

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        if self._telemetry is None:
            return self._iterate()
        return self._telemetry.recorded_read(self._iterate())

    def _check_valid(self) -> None:
        if self._validator is not None:
            self._validator()

    def _iterate(self) -> Iterator[Tuple[ValueTuple, int]]:
        self._check_valid()
        if not self._components:
            return
        if len(self._components) == 1:
            component = self._components[0]
            component.reset()
            while True:
                self._check_valid()
                started = time.perf_counter()
                item = component.next()
                self._delays.append(time.perf_counter() - started)
                if item is None:
                    return
                key, mult = item
                yield self._reorder(component.out_vars, key), mult
            return
        yield from self._cartesian(0, {}, 1)

    def _cartesian(
        self, index: int, assignment: Dict[str, object], mult: int
    ) -> Iterator[Tuple[ValueTuple, int]]:
        """Product across connected components (Figure 16 with empty context)."""
        if index == len(self._components):
            yield tuple(assignment[v] for v in self.head), mult
            return
        component = self._components[index]
        component.reset()
        while True:
            self._check_valid()
            started = time.perf_counter()
            item = component.next()
            self._delays.append(time.perf_counter() - started)
            if item is None:
                return
            key, component_mult = item
            extended = dict(assignment)
            extended.update(zip(component.out_vars, key))
            yield from self._cartesian(index + 1, extended, mult * component_mult)

    def _reorder(self, out_vars: Tuple[str, ...], key: ValueTuple) -> ValueTuple:
        if out_vars == self.head:
            return key
        assignment = dict(zip(out_vars, key))
        return tuple(assignment[v] for v in self.head)

    # ------------------------------------------------------------------
    # aggregation (the enumerate-and-fold answer path)
    # ------------------------------------------------------------------
    def aggregate_elements(self, spec: AggregateSpec):
        """Fold the enumeration into raw ``{group: (support, element)}``.

        This is the enumerate-and-fold path: O(result) per call, but exact
        at any ε and the oracle every maintained answer is checked against.
        Iterating through ``self`` keeps the validator and telemetry
        semantics of a paged enumeration (the fold's read cost is recorded
        like any other full read).
        """
        return fold_result(spec, self.head, self)

    def aggregate(self, spec: AggregateSpec) -> Dict[ValueTuple, object]:
        """User-facing ``{group: answer}`` by enumerate-and-fold."""
        return answer_map(spec, self.aggregate_elements(spec))

    def aggregate_group(self, spec: AggregateSpec, group: ValueTuple):
        """Point aggregate of one group when the group key covers the head.

        Returns ``(support, answer)``.  Only specs whose ``group_by`` is a
        permutation of the full head qualify — the group then *is* a result
        tuple, so its support comes from constant-time view lookups
        (:func:`~repro.enumeration.lookup.lookup_head_multiplicity`)
        instead of an enumeration.  An absent group answers the ring's
        zero answer with support 0.
        """
        positions = spec.group_positions(self.head)
        if sorted(positions) != list(range(len(self.head))):
            raise SchemaError(
                f"point aggregate lookups need group_by to cover the full "
                f"head {self.head!r}; got {spec.group_by!r}"
            )
        if len(group) != len(positions):
            raise SchemaError(
                f"group {group!r} does not match group_by {spec.group_by!r}"
            )
        self._check_valid()
        started = time.perf_counter()
        head_tup: List[object] = [None] * len(self.head)
        for value, position in zip(group, positions):
            head_tup[position] = value
        tup = tuple(head_tup)
        ring = spec.ring
        support = lookup_head_multiplicity(
            self.plan.component_trees, self.head, tup
        )
        if support == 0:
            element = ring.zero()
        else:
            element = ring.lift(spec.value_extractor(self.head)(tup), support)
        if self._telemetry is not None:
            self._telemetry.record_read(1, time.perf_counter() - started)
        return support, ring.answer(element)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[ValueTuple, int]:
        """Materialize the enumeration into ``{tuple: multiplicity}``."""
        return {tup: mult for tup, mult in self}

    def count_distinct(self) -> int:
        """Number of distinct result tuples."""
        return sum(1 for _ in self)

    @property
    def recorded_delays(self) -> Tuple[float, ...]:
        """Per-``next`` wall-clock delays recorded during iteration."""
        return tuple(self._delays)
