"""Multiplicity lookups inside view trees.

The Union algorithm (Figure 15) deduplicates tuples coming from different
view trees / heavy-indicator groundings by looking up candidate tuples in the
other trees and summing their multiplicities.  :func:`lookup_multiplicity`
computes the multiplicity of a (complete) assignment of the free variables in
one view tree's join, using only constant-time view lookups plus — for trees
with heavy indicators — one pass over the matching heavy keys, which is
within the ``O(N^{1−ε})`` delay budget of Proposition 22.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from repro.engine.join import BoundRelation
from repro.views.view import IndicatorLeaf, ViewTreeNode


def _direct_lookup(
    tree: ViewTreeNode, assignment: Mapping[str, object]
) -> int:
    """Multiplicity of the assignment in the node's own materialized content."""
    bound = BoundRelation(tree.schema, tree.relation())
    missing = [v for v in tree.schema if v not in assignment]
    if not missing:
        return bound.multiplicity_of_assignment(assignment)
    # Defensive fallback: some schema variable is not fixed by the assignment
    # (this does not happen for the trees built by τ, but keeps the function
    # total); aggregate over the matching entries.
    total = 0
    for _tup, mult in bound.matching(assignment):
        total += mult
    return total


def lookup_head_multiplicity(
    component_trees, head, tup
) -> int:
    """Multiplicity of one fully-specified head tuple across components.

    The point-lookup counterpart of full enumeration: per connected
    component, the tuple's multiplicity is the sum over that component's
    strategy trees (their valuations are disjoint, exactly as in the Union
    algorithm); across components it is the product (the Product
    algorithm with every variable fixed).  Cost is a constant number of
    view lookups plus heavy-indicator passes — never an enumeration — so
    the aggregate answer path can probe single groups within the
    ``O(N^{1−ε})`` budget of Proposition 22.
    """
    assignment = dict(zip(head, tup))
    free = frozenset(head)
    total = 1
    for trees in component_trees:
        component_total = 0
        for tree in trees:
            component_total += lookup_multiplicity(tree, free, assignment)
        if component_total == 0:
            return 0
        total *= component_total
    return total


def lookup_multiplicity(
    tree: ViewTreeNode,
    free: FrozenSet[str],
    assignment: Mapping[str, object],
) -> int:
    """Multiplicity of ``assignment`` (covering the tree's free variables)
    in the join encoded by ``tree``.

    The recursion mirrors the enumeration cases: views that already cover all
    free variables of their subtree are probed directly; views with a heavy
    indicator child sum over the matching heavy keys; all other views
    factorise into the product of their children's lookups (the children only
    share variables that are fixed by the assignment).
    """
    free_in_subtree = tree.variables() & free
    if tree.is_leaf() or free_in_subtree <= set(tree.schema):
        return _direct_lookup(tree, assignment)
    indicator = next(
        (c for c in tree.children if isinstance(c, IndicatorLeaf)), None
    )
    if indicator is not None:
        others = [c for c in tree.children if c is not indicator]
        bound = BoundRelation(indicator.schema, indicator.relation())
        total = 0
        for key_tuple, _mult in bound.matching(assignment):
            grounded: Dict[str, object] = dict(assignment)
            grounded.update(zip(indicator.schema, key_tuple))
            product = 1
            for child in others:
                product *= lookup_multiplicity(child, free, grounded)
                if product == 0:
                    break
            total += product
        return total
    product = 1
    for child in tree.children:
        product *= lookup_multiplicity(child, free, assignment)
        if product == 0:
            return 0
    return product
