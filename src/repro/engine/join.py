"""Multiplicity-aware joins over variable-named relations.

The view trees name their columns with query variables, while the stored
relations may use arbitrary column names; :class:`BoundRelation` provides the
positional aliasing between the two and the probing primitives (point
lookups and index slices by partial variable assignments) used by
materialization, delta propagation, and enumeration alike.

Joins are computed by folding children one at a time into an accumulator of
``assignment-tuple → multiplicity`` entries, probing each next child through
a hash index on the shared variables and projecting away variables that are
needed neither by the output nor by the remaining children (an InsideOut-style
early aggregation, which is what keeps the materialization costs within the
bounds of Proposition 21 on the light parts).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.data.relation import Relation
from repro.data.schema import Schema, ValueTuple
from repro.exceptions import SchemaError


class BoundRelation:
    """A relation whose columns are (re)named by query variables.

    The variable at position ``i`` corresponds to the ``i``-th column of the
    underlying relation; tuples exposed by this wrapper are ordered by the
    variable schema, which coincides with the stored order.
    """

    __slots__ = ("variables", "relation", "_columns", "_key_memo")

    def __init__(self, variables: Sequence[str], relation: Relation) -> None:
        self.variables: Schema = tuple(variables)
        if len(self.variables) != len(relation.schema):
            raise SchemaError(
                f"cannot bind variables {self.variables!r} to relation "
                f"{relation.name!r} with schema {relation.schema!r}"
            )
        self.relation = relation
        self._columns = {
            variable: relation.schema[i] for i, variable in enumerate(self.variables)
        }
        # Memo of _index_key results: fold/delta joins probe the same shared
        # variable sets over and over, and the normalisation is pure.
        self._key_memo: Dict[Tuple[str, ...], Tuple[Schema, Tuple[str, ...]]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.relation)

    def items(self) -> Iterable[Tuple[ValueTuple, int]]:
        """All ``(tuple, multiplicity)`` entries, tuples ordered by variables."""
        return self.relation.items()

    def multiplicity(self, tup: ValueTuple) -> int:
        """Multiplicity of a tuple given in variable order."""
        return self.relation.multiplicity(tup)

    def multiplicity_of_assignment(self, assignment: Mapping[str, object]) -> int:
        """Multiplicity of the tuple described by a (complete) assignment."""
        try:
            tup = tuple(assignment[v] for v in self.variables)
        except KeyError:
            raise SchemaError(
                f"assignment {assignment!r} does not cover schema {self.variables!r}"
            )
        return self.relation.multiplicity(tup)

    # ------------------------------------------------------------------
    def _index_key(self, shared: Sequence[str]) -> Tuple[Schema, Tuple[str, ...]]:
        """Translate shared variables into the underlying index key schema.

        Returns ``(column_key_schema, variable_order)`` where the variable
        order matches the normalised column order of the index, so callers
        can build probe keys in the right order.
        """
        memo_key = tuple(shared)
        cached = self._key_memo.get(memo_key)
        if cached is not None:
            return cached
        columns = [self._columns[v] for v in shared]
        column_set = set(columns)
        normalised_columns = tuple(
            c for c in self.relation.schema if c in column_set
        )
        column_to_var = {self._columns[v]: v for v in shared}
        variable_order = tuple(column_to_var[c] for c in normalised_columns)
        self._key_memo[memo_key] = (normalised_columns, variable_order)
        return normalised_columns, variable_order

    def matching(
        self, assignment: Mapping[str, object]
    ) -> Iterator[Tuple[ValueTuple, int]]:
        """Enumerate tuples agreeing with ``assignment`` on shared variables.

        Uses an index on the shared variables (constant-delay per result).
        When the assignment covers all variables this degenerates to a point
        lookup; when it covers none, the whole relation is enumerated.
        """
        shared = [v for v in self.variables if v in assignment]
        if len(shared) == len(self.variables):
            tup = tuple(assignment[v] for v in self.variables)
            mult = self.relation.multiplicity(tup)
            if mult:
                yield tup, mult
            return
        if not shared:
            yield from self.relation.items()
            return
        columns, variable_order = self._index_key(shared)
        key = tuple(assignment[v] for v in variable_order)
        index = self.relation.ensure_index(columns)
        for tup in index.group(key):
            yield tup, self.relation.multiplicity(tup)

    def count_matching(self, assignment: Mapping[str, object]) -> int:
        """Number of distinct tuples matching ``assignment`` (constant time)."""
        shared = [v for v in self.variables if v in assignment]
        if len(shared) == len(self.variables):
            tup = tuple(assignment[v] for v in self.variables)
            return 1 if self.relation.multiplicity(tup) else 0
        if not shared:
            return len(self.relation)
        columns, variable_order = self._index_key(shared)
        key = tuple(assignment[v] for v in variable_order)
        return self.relation.ensure_index(columns).group_size(key)

    def contains_assignment(self, assignment: Mapping[str, object]) -> bool:
        """Constant-time membership test of the assignment's key projection."""
        return self.count_matching(assignment) > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundRelation({self.variables!r} -> {self.relation.name!r})"


# ----------------------------------------------------------------------
# join folding
# ----------------------------------------------------------------------
def _project_accumulator(
    schema: Schema, acc: Dict[ValueTuple, int], keep: Schema
) -> Tuple[Schema, Dict[ValueTuple, int]]:
    """Project the accumulator onto ``keep`` (summing multiplicities)."""
    if keep == schema:
        return schema, acc
    positions = [schema.index(v) for v in keep]
    projected: Dict[ValueTuple, int] = {}
    for tup, mult in acc.items():
        key = tuple(tup[i] for i in positions)
        projected[key] = projected.get(key, 0) + mult
    return keep, projected


def fold_join(
    start_schema: Schema,
    start: Dict[ValueTuple, int],
    children: Sequence[BoundRelation],
    output_schema: Schema,
) -> Dict[ValueTuple, int]:
    """Join ``start`` with every child and project to ``output_schema``.

    The accumulator is probed against each child through an index on the
    shared variables; after each step, variables not needed by the output or
    the remaining children are aggregated away.
    """
    acc_schema: Schema = tuple(start_schema)
    acc = dict(start)
    remaining = list(children)
    # Process smaller children first so the accumulator stays small.
    remaining.sort(key=len)
    for idx, child in enumerate(remaining):
        later_vars: set = set()
        for future in remaining[idx + 1 :]:
            later_vars.update(future.variables)
        needed = set(output_schema) | later_vars
        child_new = tuple(
            v for v in child.variables if v not in acc_schema and v in needed
        )
        shared = tuple(v for v in acc_schema if v in set(child.variables))
        new_schema = acc_schema + child_new
        joined: Dict[ValueTuple, int] = {}
        shared_positions = [acc_schema.index(v) for v in shared]
        child_positions = {v: child.variables.index(v) for v in child_new}
        for tup, mult in acc.items():
            assignment = {v: tup[p] for v, p in zip(shared, shared_positions)}
            for child_tup, child_mult in child.matching(assignment):
                extension = tuple(child_tup[child_positions[v]] for v in child_new)
                key = tup + extension
                joined[key] = joined.get(key, 0) + mult * child_mult
        acc_schema, acc = new_schema, joined
        keep = tuple(v for v in acc_schema if v in needed)
        acc_schema, acc = _project_accumulator(acc_schema, acc, keep)
        if not acc:
            return {}
    # final projection onto the requested output schema
    final_schema = tuple(output_schema)
    missing = set(final_schema) - set(acc_schema)
    if missing:
        raise SchemaError(
            f"output schema {final_schema!r} requests variables {sorted(missing)} "
            f"not produced by the join over {[c.variables for c in children]!r}"
        )
    _, projected = _project_accumulator(
        acc_schema, acc, tuple(v for v in acc_schema if v in set(final_schema))
    )
    # reorder columns to match the requested output order
    current = tuple(v for v in acc_schema if v in set(final_schema))
    if current == final_schema:
        return projected
    positions = [current.index(v) for v in final_schema]
    return {
        tuple(tup[i] for i in positions): mult for tup, mult in projected.items()
    }


def join_children(
    children: Sequence[BoundRelation], output_schema: Schema
) -> Dict[ValueTuple, int]:
    """Join a list of bound relations and project onto ``output_schema``."""
    if not children:
        return {(): 1}
    first, rest = children[0], children[1:]
    start_needed = set(output_schema)
    for child in rest:
        start_needed.update(child.variables)
    start_schema = tuple(v for v in first.variables if v in start_needed)
    start_schema_full = first.variables
    start: Dict[ValueTuple, int] = {}
    positions = [start_schema_full.index(v) for v in start_schema]
    for tup, mult in first.items():
        key = tuple(tup[i] for i in positions)
        start[key] = start.get(key, 0) + mult
    return fold_join(start_schema, start, rest, output_schema)


def join_to_relation(
    children: Sequence[BoundRelation], output_schema: Schema, name: str
) -> Relation:
    """Join children into a freshly materialized relation."""
    result = Relation(name, output_schema)
    for tup, mult in join_children(children, output_schema).items():
        if mult != 0:
            result.apply_delta(tup, mult)
    return result


def delta_join(
    delta_schema: Schema,
    delta: Mapping[ValueTuple, int],
    siblings: Sequence[BoundRelation],
    output_schema: Schema,
) -> Dict[ValueTuple, int]:
    """Compute ``π_out(δ ⋈ sibling₁ ⋈ … ⋈ siblingₖ)``.

    This is the delta-rule primitive of Figure 17: the change of a view under
    a change of one of its children is the join of that change with the other
    children, projected to the view schema.
    """
    start = {tup: mult for tup, mult in delta.items() if mult != 0}
    if not start:
        return {}
    return fold_join(tuple(delta_schema), start, siblings, tuple(output_schema))
