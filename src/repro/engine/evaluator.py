"""Reference (non-incremental) query evaluation.

``evaluate_query_naive`` joins all atoms of a conjunctive query and projects
onto the head, summing multiplicities.  It is intentionally simple: the rest
of the library (the skew-aware engine, the baselines, and above all the test
suite) uses it as the ground truth that every other evaluation strategy must
agree with.
"""

from __future__ import annotations

from typing import Dict

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import ValueTuple
from repro.engine.join import BoundRelation, join_children
from repro.query.conjunctive import ConjunctiveQuery


def evaluate_query_naive(query: ConjunctiveQuery, database: Database) -> Relation:
    """Full join of the query body projected onto the head (bag semantics).

    The result relation's schema is the query head, in head order; its
    multiplicities are the sums over all valuations of the bound variables of
    the products of the input multiplicities — exactly the semantics the
    paper's enumeration procedures must reproduce tuple by tuple.
    """
    children = [
        BoundRelation(atom.variables, database.relation(atom.relation))
        for atom in query.atoms
    ]
    content = join_children(children, tuple(query.head))
    result = Relation(f"{query.name}_result", tuple(query.head))
    for tup, mult in content.items():
        if mult != 0:
            result.apply_delta(tup, mult)
    return result


def evaluate_to_dict(
    query: ConjunctiveQuery, database: Database
) -> Dict[ValueTuple, int]:
    """Same as :func:`evaluate_query_naive` but returned as a plain dict."""
    return evaluate_query_naive(query, database).as_dict()
