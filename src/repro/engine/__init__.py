"""Execution engine: joins, view materialization, reference evaluation."""

from repro.engine.evaluator import evaluate_query_naive, evaluate_to_dict
from repro.engine.join import (
    BoundRelation,
    delta_join,
    fold_join,
    join_children,
    join_to_relation,
)
from repro.engine.materialize import (
    bound,
    materialize_indicator_triple,
    materialize_plan,
    materialize_tree,
    rematerialize_plan,
    total_view_size,
)

__all__ = [
    "BoundRelation",
    "bound",
    "delta_join",
    "evaluate_query_naive",
    "evaluate_to_dict",
    "fold_join",
    "join_children",
    "join_to_relation",
    "materialize_indicator_triple",
    "materialize_plan",
    "materialize_tree",
    "rematerialize_plan",
    "total_view_size",
]
