"""Bottom-up materialization of view trees (the preprocessing stage).

Preprocessing (Section 4, Proposition 21) materializes every view of every
view tree produced by the skew-aware construction.  The order matters:

1. the light parts of all partitions are (re)computed with the strict
   threshold ``θ``;
2. the ``All`` and ``L`` indicator trees are materialized (they only read
   base relations and light parts);
3. the heavy-indicator supports ``∃H`` are derived from the indicator roots;
4. the skew-aware strategy trees are materialized (they may read base
   relations, light parts, and ``∃H`` leaves).
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.join import BoundRelation, join_children
from repro.views.indicators import IndicatorTriple
from repro.views.skew import SkewAwarePlan
from repro.views.view import ViewNode, ViewTreeNode


def bound(node: ViewTreeNode) -> BoundRelation:
    """The node's content viewed under its variable schema."""
    return BoundRelation(node.schema, node.relation())


def materialize_tree(tree: ViewTreeNode) -> None:
    """Materialize every inner view of ``tree`` bottom-up."""
    for child in tree.children:
        materialize_tree(child)
    if isinstance(tree, ViewNode):
        tree.reset()
        children = [bound(child) for child in tree.children]
        content = join_children(children, tree.schema)
        relation = tree.relation()
        for tup, mult in content.items():
            if mult != 0:
                relation.apply_delta(tup, mult)


def materialize_indicator_triple(triple: IndicatorTriple) -> None:
    """Materialize the All and L trees of a triple and derive ``∃H``."""
    materialize_tree(triple.all_tree)
    materialize_tree(triple.light_tree)
    triple.rebuild_support()


def materialize_plan(plan: SkewAwarePlan, threshold: float) -> None:
    """Run the full preprocessing stage for a skew-aware plan."""
    for partition in plan.partitions:
        partition.strict_repartition(threshold)
    for triple in plan.indicator_triples:
        materialize_indicator_triple(triple)
    for tree in plan.all_trees():
        materialize_tree(tree)


def rematerialize_plan(plan: SkewAwarePlan, threshold: float) -> None:
    """Recompute light parts and every view (major rebalancing, Figure 20)."""
    materialize_plan(plan, threshold)


def total_view_size(plan: SkewAwarePlan) -> int:
    """Total number of tuples stored across all materialized views.

    This is the "extra space" column of the paper's comparison tables and is
    reported by the benchmark harness.
    """
    size = 0
    seen = set()
    trees: Iterable[ViewTreeNode] = list(plan.all_trees())
    for triple in plan.indicator_triples:
        trees = list(trees) + [triple.all_tree, triple.light_tree]
        if id(triple.exists_heavy) not in seen:
            seen.add(id(triple.exists_heavy))
            size += len(triple.exists_heavy)
    for tree in trees:
        for view in tree.views():
            if id(view.relation()) not in seen:
                seen.add(id(view.relation()))
                size += len(view.relation())
    for partition in plan.partitions:
        if id(partition.light) not in seen:
            seen.add(id(partition.light))
            size += len(partition.light)
    return size
