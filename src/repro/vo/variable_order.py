"""Variable orders (Definition 13 of the paper).

A variable order ``ω`` for a conjunctive query is a forest with one node per
variable or atom: the variables of every atom lie on a single root-to-leaf
path, and every atom hangs below its lowest variable.  The function
``dep_ω(X)`` maps a variable to the subset of its ancestors on which the
variables in the subtree rooted at ``X`` depend (i.e. with which they share
an atom).

Hierarchical queries admit *canonical* variable orders — where the inner
nodes of every root-to-leaf path are exactly the variables of the leaf atom —
and the canonical order is unique up to the ordering of variables that share
the same atom set.  This module builds canonical variable orders and exposes
the node/forest API used by the view-tree construction (anc, dep, subtree
variables and atoms, sibling tests) and by the width measures.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import NotHierarchicalError, UnsupportedQueryError
from repro.query.atom import Atom
from repro.query.classes import is_hierarchical
from repro.query.conjunctive import ConjunctiveQuery


class VONode:
    """Base class for variable-order nodes (variables and atoms)."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional["VariableNode"] = None

    def ancestors(self) -> Tuple[str, ...]:
        """Variables on the path from this node to the root (nearest first)."""
        result: List[str] = []
        node = self.parent
        while node is not None:
            result.append(node.variable)
            node = node.parent
        return tuple(result)

    def root(self) -> "VONode":
        """The root of the tree containing this node."""
        node: VONode = self
        while node.parent is not None:
            node = node.parent
        return node


class AtomNode(VONode):
    """A leaf node holding a query atom."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom) -> None:
        super().__init__()
        self.atom = atom

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomNode({self.atom})"


class VariableNode(VONode):
    """An inner node holding a variable and its child subtrees."""

    __slots__ = ("variable", "children")

    def __init__(self, variable: str, children: Optional[List[VONode]] = None) -> None:
        super().__init__()
        self.variable = variable
        self.children: List[VONode] = []
        for child in children or []:
            self.add_child(child)

    def add_child(self, child: VONode) -> None:
        child.parent = self
        self.children.append(child)

    def variable_children(self) -> Tuple["VariableNode", ...]:
        return tuple(c for c in self.children if isinstance(c, VariableNode))

    def atom_children(self) -> Tuple[AtomNode, ...]:
        return tuple(c for c in self.children if isinstance(c, AtomNode))

    def subtree_variables(self) -> FrozenSet[str]:
        """All variables in the subtree rooted at this node (including itself)."""
        result = {self.variable}
        for child in self.children:
            if isinstance(child, VariableNode):
                result.update(child.subtree_variables())
        return frozenset(result)

    def subtree_atoms(self) -> Tuple[Atom, ...]:
        """All atoms at the leaves of the subtree rooted at this node."""
        atoms: List[Atom] = []
        for child in self.children:
            if isinstance(child, AtomNode):
                atoms.append(child.atom)
            else:
                atoms.extend(child.subtree_atoms())
        return tuple(atoms)

    def iter_variable_nodes(self) -> Iterator["VariableNode"]:
        """Pre-order iteration over the variable nodes of this subtree."""
        yield self
        for child in self.children:
            if isinstance(child, VariableNode):
                yield from child.iter_variable_nodes()

    def has_sibling(self) -> bool:
        """True when this node's parent has other children (Definition 13 flag)."""
        if self.parent is None:
            return False
        return len(self.parent.children) > 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VariableNode({self.variable!r}, children={len(self.children)})"


class VariableOrder:
    """A variable-order forest for a conjunctive query."""

    def __init__(self, roots: Sequence[VONode], query: ConjunctiveQuery) -> None:
        self.roots: Tuple[VONode, ...] = tuple(roots)
        self.query = query
        self._variable_nodes: Dict[str, VariableNode] = {}
        for root in self.roots:
            if isinstance(root, VariableNode):
                for node in root.iter_variable_nodes():
                    if node.variable in self._variable_nodes:
                        raise UnsupportedQueryError(
                            f"variable {node.variable!r} appears twice in the variable order"
                        )
                    self._variable_nodes[node.variable] = node

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def variables(self) -> FrozenSet[str]:
        return frozenset(self._variable_nodes)

    def atoms(self) -> Tuple[Atom, ...]:
        atoms: List[Atom] = []
        for root in self.roots:
            if isinstance(root, VariableNode):
                atoms.extend(root.subtree_atoms())
            else:
                atoms.append(root.atom)  # type: ignore[union-attr]
        return tuple(atoms)

    def node(self, variable: str) -> VariableNode:
        return self._variable_nodes[variable]

    def iter_variable_nodes(self) -> Iterator[VariableNode]:
        for root in self.roots:
            if isinstance(root, VariableNode):
                yield from root.iter_variable_nodes()

    def ancestors(self, variable: str) -> Tuple[str, ...]:
        """``anc(X)``: variables on the path from X to the root, excluding X."""
        return self.node(variable).ancestors()

    def subtree_variables(self, variable: str) -> FrozenSet[str]:
        return self.node(variable).subtree_variables()

    def subtree_atoms(self, variable: str) -> Tuple[Atom, ...]:
        return self.node(variable).subtree_atoms()

    def dep(self, variable: str) -> FrozenSet[str]:
        """``dep_ω(X)``: ancestors of X occurring in atoms of X's subtree.

        A variable of the subtree rooted at X depends on an ancestor exactly
        when they share an atom; since every atom sits below its lowest
        variable, such atoms are leaves of the subtree, hence the formula
        ``anc(X) ∩ vars(atoms(ω_X))``.
        """
        node = self.node(variable)
        atom_vars: set = set()
        for atom in node.subtree_atoms():
            atom_vars.update(atom.variables)
        return frozenset(set(node.ancestors()) & atom_vars)

    def has_sibling(self, variable: str) -> bool:
        return self.node(variable).has_sibling()

    # ------------------------------------------------------------------
    # structural predicates
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """Check the two conditions of Definition 13.

        (1) every atom's variables lie on a single root-to-leaf path and the
        atom hangs below its lowest variable; (2) the dep condition holds
        (it does by construction of :meth:`dep`, so only (1) is checked).
        """
        order_atoms = set(self.atoms())
        if order_atoms != set(self.query.atoms):
            return False
        for root in self.roots:
            stack: List[VONode] = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, AtomNode):
                    path = set(node.ancestors())
                    if not set(node.atom.variables) <= path:
                        return False
                else:
                    stack.extend(node.children)
        return True

    def is_free_top(self, free_variables: Optional[Iterable[str]] = None) -> bool:
        """True when no bound variable is an ancestor of a free variable."""
        free = set(free_variables) if free_variables is not None else set(
            self.query.free_variables
        )
        for node in self.iter_variable_nodes():
            if node.variable in free:
                if any(anc not in free for anc in node.ancestors()):
                    return False
        return True

    def is_canonical(self) -> bool:
        """True when each leaf atom's variables equal the inner nodes of its path."""
        for root in self.roots:
            stack: List[VONode] = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, AtomNode):
                    if set(node.atom.variables) != set(node.ancestors()):
                        return False
                else:
                    stack.extend(node.children)
        return True

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def component_roots(self) -> Tuple[VONode, ...]:
        return self.roots

    def pretty(self) -> str:
        """Render the forest as an indented string (used in docs and debugging)."""
        lines: List[str] = []

        def render(node: VONode, depth: int) -> None:
            prefix = "  " * depth
            if isinstance(node, AtomNode):
                lines.append(f"{prefix}{node.atom}")
            else:
                lines.append(f"{prefix}{node.variable}")
                for child in node.children:
                    render(child, depth + 1)

        for root in self.roots:
            render(root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VariableOrder(roots={len(self.roots)}, vars={sorted(self.variables())})"


# ----------------------------------------------------------------------
# canonical variable order construction
# ----------------------------------------------------------------------
def _order_shared_variables(
    variables: Iterable[str], free: FrozenSet[str]
) -> List[str]:
    """Deterministic ordering of variables sharing one atom set.

    Free variables come first (this makes the canonical order free-top for
    q-hierarchical queries, recovering the linear/constant results without a
    separate transformation) and ties are broken lexicographically.
    """
    return sorted(variables, key=lambda v: (v not in free, v))


def _build_component(
    atoms: Sequence[Atom], ancestors: Tuple[str, ...], free: FrozenSet[str]
) -> VariableNode:
    """Recursively build the canonical order of one connected atom group."""
    ancestor_set = set(ancestors)
    # Variables occurring in every atom of the group (and not used yet).
    shared = set(atoms[0].variables) - ancestor_set
    for atom in atoms[1:]:
        shared &= set(atom.variables)
    if not shared:
        raise NotHierarchicalError(
            "connected atom group without a shared variable; "
            "the query is not hierarchical"
        )
    chain = _order_shared_variables(shared, free)
    top = VariableNode(chain[0])
    bottom = top
    for variable in chain[1:]:
        node = VariableNode(variable)
        bottom.add_child(node)
        bottom = node
    new_ancestors = ancestors + tuple(chain)
    covered = set(new_ancestors)
    # Atoms fully covered by the chain + ancestors become leaf children.
    leaf_atoms = [atom for atom in atoms if set(atom.variables) <= covered]
    remaining = [atom for atom in atoms if set(atom.variables) - covered]
    for atom in leaf_atoms:
        bottom.add_child(AtomNode(atom))
    # Remaining atoms split into connected groups over the uncovered variables.
    for group in _connected_groups(remaining, covered):
        bottom.add_child(_build_component(group, new_ancestors, free))
    return top


def _connected_groups(
    atoms: Sequence[Atom], covered: set
) -> List[List[Atom]]:
    """Group atoms that share a variable outside the covered set."""
    remaining = list(atoms)
    groups: List[List[Atom]] = []
    while remaining:
        seed = remaining.pop(0)
        group = [seed]
        group_vars = set(seed.variables) - covered
        changed = True
        while changed:
            changed = False
            keep: List[Atom] = []
            for atom in remaining:
                if group_vars & (set(atom.variables) - covered):
                    group.append(atom)
                    group_vars |= set(atom.variables) - covered
                    changed = True
                else:
                    keep.append(atom)
            remaining = keep
        groups.append(group)
    return groups


def build_canonical_variable_order(query: ConjunctiveQuery) -> VariableOrder:
    """Build the canonical variable order of a hierarchical query.

    Raises :class:`NotHierarchicalError` for non-hierarchical queries and
    :class:`UnsupportedQueryError` for atoms with empty schemas (the paper's
    footnote 1 excludes them).
    """
    if any(not atom.variables for atom in query.atoms):
        raise UnsupportedQueryError(
            "atoms with empty schemas are outside the supported fragment"
        )
    if not is_hierarchical(query):
        raise NotHierarchicalError(f"query {query} is not hierarchical")
    free = query.free_variables
    roots: List[VONode] = []
    for component in query.connected_components():
        roots.append(_build_component(component.atoms, (), free))
    return VariableOrder(roots, query)
