"""Variable orders: canonical construction and free-top transformation."""

from repro.vo.free_top import free_top_order, highest_bound_over_free, restrict
from repro.vo.variable_order import (
    AtomNode,
    VariableNode,
    VariableOrder,
    VONode,
    build_canonical_variable_order,
)

__all__ = [
    "AtomNode",
    "VONode",
    "VariableNode",
    "VariableOrder",
    "build_canonical_variable_order",
    "free_top_order",
    "highest_bound_over_free",
    "restrict",
]
