"""Canonical → free-top variable-order transformation (Appendix B.1).

A variable order is *free-top* when no bound variable is an ancestor of a
free variable.  The static and dynamic widths (Definitions 15 and 16) are
minima over free-top variable orders; for hierarchical queries the
transformation below — applied to the canonical order — attains those minima
(Lemmas 33, 37 and the proof of Proposition 3).

The transformation finds ``hBF(ω)``, the highest bound variables that are
ancestors of free variables, and restructures each subtree rooted at such a
variable: the free variables of the subtree are pulled up into a path (in an
order compatible with the original partial order, ties broken
lexicographically), followed by the restriction of the original subtree to
its remaining (bound) variables.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.vo.variable_order import (
    AtomNode,
    VariableNode,
    VariableOrder,
    VONode,
)


def _clone(node: VONode) -> VONode:
    """Deep-copy a variable-order subtree (atoms are shared, nodes are new)."""
    if isinstance(node, AtomNode):
        return AtomNode(node.atom)
    assert isinstance(node, VariableNode)
    clone = VariableNode(node.variable)
    for child in node.children:
        clone.add_child(_clone(child))
    return clone


def highest_bound_over_free(
    order: VariableOrder, free: frozenset
) -> Tuple[VariableNode, ...]:
    """``hBF(ω)``: bound variables that are ancestors of free variables and
    have no bound ancestors themselves."""
    result: List[VariableNode] = []
    for node in order.iter_variable_nodes():
        if node.variable in free:
            continue
        subtree_free = node.subtree_variables() & free
        if not subtree_free - {node.variable}:
            continue
        if any(anc not in free for anc in node.ancestors()):
            continue
        result.append(node)
    return tuple(result)


def restrict(node: VONode, keep: frozenset) -> List[VONode]:
    """Restriction ``ω|keep`` of a subtree to a set of variables.

    Eliminated variables are spliced out: their children are promoted to the
    parent (or become independent roots when the eliminated node was a root).
    Atom leaves are always kept.  Returns the list of resulting roots.
    """
    if isinstance(node, AtomNode):
        return [AtomNode(node.atom)]
    assert isinstance(node, VariableNode)
    restricted_children: List[VONode] = []
    for child in node.children:
        restricted_children.extend(restrict(child, keep))
    if node.variable in keep:
        new_node = VariableNode(node.variable)
        for child in restricted_children:
            new_node.add_child(child)
        return [new_node]
    return restricted_children


def _topological_free_order(node: VariableNode, free: frozenset) -> List[str]:
    """Free variables of the subtree in an order compatible with the subtree.

    Parents come before children (respecting the partial order of ω_X);
    siblings are merged lexicographically, matching Appendix B.1.
    """
    collected: List[str] = []

    def visit(current: VariableNode) -> None:
        if current.variable in free:
            collected.append(current.variable)
        for child in sorted(
            current.variable_children(), key=lambda c: c.variable
        ):
            visit(child)

    visit(node)
    # The paper asks for *an* order compatible with the partial order with
    # lexicographic tie-breaking; a pre-order walk with sorted children gives
    # exactly that.
    return collected


def _transform_subtree(node: VariableNode, free: frozenset) -> VONode:
    """Replace the subtree rooted at a bound variable by its free-top version."""
    free_chain = _topological_free_order(node, free)
    remaining = node.subtree_variables() - set(free_chain)
    restricted_roots = restrict(node, frozenset(remaining))
    if not free_chain:
        assert len(restricted_roots) == 1
        return restricted_roots[0]
    top = VariableNode(free_chain[0])
    bottom = top
    for variable in free_chain[1:]:
        nxt = VariableNode(variable)
        bottom.add_child(nxt)
        bottom = nxt
    for root in restricted_roots:
        bottom.add_child(root)
    return top


def free_top_order(order: VariableOrder, query: ConjunctiveQuery) -> VariableOrder:
    """Transform a canonical variable order into a free-top variable order.

    Subtrees rooted at the variables of ``hBF(ω)`` are restructured; all other
    nodes are kept as they are (Remark 32).  The result is a valid free-top
    variable order for the query (Lemma 33), asserted in the test suite.
    """
    free = query.free_variables
    targets = {node.variable for node in highest_bound_over_free(order, free)}

    def rebuild(node: VONode) -> VONode:
        if isinstance(node, AtomNode):
            return AtomNode(node.atom)
        assert isinstance(node, VariableNode)
        if node.variable in targets:
            return _transform_subtree(node, free)
        clone = VariableNode(node.variable)
        for child in node.children:
            clone.add_child(rebuild(child))
        return clone

    new_roots = [rebuild(root) for root in order.roots]
    return VariableOrder(new_roots, query)
