"""Synthetic relation generators.

The paper's cost statements are driven by two data characteristics: database
size ``N`` and the *degree distribution* of join values (how many tuples
share a join key).  The generators below control both, so benchmarks can
exercise the light-only regime (uniform low degrees), the heavy-only regime
(a few very hot keys), and the mixed Zipf regime where the skew-aware
partitioning actually pays off.

All generators take an explicit ``seed`` and return plain tuple lists or
:class:`~repro.data.database.Database` objects, so every benchmark and test
is reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.schema import ValueTuple


def uniform_pairs(
    count: int, domain: int, seed: int = 0, offset: int = 0
) -> List[Tuple[int, int]]:
    """``count`` distinct-ish pairs drawn uniformly from ``[0, domain)²``."""
    rng = random.Random(seed)
    return [
        (rng.randrange(domain) + offset, rng.randrange(domain) + offset)
        for _ in range(count)
    ]


def zipf_values(count: int, domain: int, exponent: float, seed: int = 0) -> List[int]:
    """``count`` values in ``[0, domain)`` following a Zipf-like distribution.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1)^exponent``; exponent 0 degenerates to uniform.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, domain + 1, dtype=float)
    weights = 1.0 / np.power(ranks, exponent)
    weights /= weights.sum()
    return [int(v) for v in rng.choice(domain, size=count, p=weights)]


def zipf_pairs(
    count: int,
    key_domain: int,
    value_domain: int,
    exponent: float = 1.0,
    seed: int = 0,
    key_position: int = 1,
) -> List[Tuple[int, int]]:
    """Pairs whose join-key column follows a Zipf distribution.

    ``key_position`` selects whether the skewed column is the first (0) or
    second (1) component, matching the ``R(A, B)`` / ``S(B, C)`` orientation
    of Example 28 where ``B`` is the join key.
    """
    rng = random.Random(seed + 1)
    keys = zipf_values(count, key_domain, exponent, seed)
    pairs = []
    for key in keys:
        other = rng.randrange(value_domain)
        if key_position == 0:
            pairs.append((key, other))
        else:
            pairs.append((other, key))
    return pairs


def heavy_hitter_pairs(
    count: int,
    heavy_keys: int,
    heavy_fraction: float,
    key_domain: int,
    value_domain: int,
    seed: int = 0,
    key_position: int = 1,
) -> List[Tuple[int, int]]:
    """Pairs where a handful of join keys receive a fixed fraction of tuples.

    ``heavy_fraction`` of the tuples use one of ``heavy_keys`` hot keys; the
    rest are uniform over the full key domain.  This produces exactly the
    bimodal degree distribution that separates the heavy and light strategies
    of the skew-aware view trees.
    """
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        if rng.random() < heavy_fraction:
            key = rng.randrange(heavy_keys)
        else:
            key = rng.randrange(key_domain)
        other = rng.randrange(value_domain)
        pairs.append((key, other) if key_position == 0 else (other, key))
    return pairs


def path_query_database(
    size: int,
    skew: float = 1.0,
    domain_factor: float = 0.5,
    seed: int = 0,
) -> Database:
    """A database for ``Q(A, C) = R(A, B), S(B, C)`` with Zipf join keys.

    ``size`` is the number of tuples per relation; the join-key domain is
    ``size * domain_factor`` so the average degree stays constant as ``size``
    grows and skew (controlled by the Zipf exponent) decides how heavy the
    heaviest keys are.
    """
    domain = max(4, int(size * domain_factor))
    r = zipf_pairs(size, domain, domain, exponent=skew, seed=seed, key_position=1)
    s = zipf_pairs(size, domain, domain, exponent=skew, seed=seed + 7, key_position=0)
    return Database.from_dict({"R": (("A", "B"), r), "S": (("B", "C"), s)})


def star_query_database(
    size: int,
    branches: int = 3,
    skew: float = 1.0,
    seed: int = 0,
) -> Database:
    """A database for the star query ``Q(Y₀,…) = R₀(X, Y₀), …, R_k(X, Y_k)``.

    The shared variable ``X`` follows a Zipf distribution in every relation,
    which is the worst case for the δ_k-hierarchical star queries used in the
    landscape benchmark (Figure 2).
    """
    domain = max(4, size // 2)
    contents = {}
    for i in range(branches):
        pairs = zipf_pairs(
            size, domain, domain, exponent=skew, seed=seed + i, key_position=0
        )
        contents[f"R{i}"] = ((f"X", f"Y{i}"), pairs)
    return Database.from_dict(contents)


def free_connex_database(size: int, seed: int = 0) -> Database:
    """A database for ``Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)`` (Example 18)."""
    rng = random.Random(seed)
    domain = max(4, size // 3)
    r = [
        (rng.randrange(domain), rng.randrange(8), rng.randrange(8))
        for _ in range(size)
    ]
    s = [
        (rng.randrange(domain), rng.randrange(8), rng.randrange(16))
        for _ in range(size)
    ]
    t = [(rng.randrange(domain), rng.randrange(16)) for _ in range(size)]
    return Database.from_dict(
        {"R": (("A", "B", "C"), r), "S": (("A", "B", "D"), s), "T": (("A", "E"), t)}
    )


def example19_database(size: int, skew: float = 1.0, seed: int = 0) -> Database:
    """A database for the four-atom query of Example 19 with Zipf (A, B) keys."""
    rng = random.Random(seed)
    domain = max(4, size // 3)
    a_values = zipf_values(size, domain, skew, seed)
    b_domain = max(2, int(size ** 0.4))
    c_domain = max(2, int(size ** 0.4))

    def triples(seed_offset: int, second_domain: int) -> List[Tuple[int, int, int]]:
        local = random.Random(seed + seed_offset)
        return [
            (a, local.randrange(second_domain), local.randrange(16))
            for a in zipf_values(size, domain, skew, seed + seed_offset)
        ]

    return Database.from_dict(
        {
            "R": (("A", "B", "D"), triples(1, b_domain)),
            "S": (("A", "B", "E"), triples(2, b_domain)),
            "T": (("A", "C", "F"), triples(3, c_domain)),
            "U": (("A", "C", "G"), triples(4, c_domain)),
        }
    )


def bounded_degree_database(size: int, degree: int, seed: int = 0) -> Database:
    """A database for ``Q(A, C) = R(A, B), S(B, C)`` where every value has
    degree at most ``degree`` — the bounded-degree row of Figure 4."""
    rng = random.Random(seed)
    keys = size // max(1, degree)
    r = []
    s = []
    for key in range(max(1, keys)):
        for _ in range(degree):
            r.append((rng.randrange(size), key))
            s.append((key, rng.randrange(size)))
    return Database.from_dict({"R": (("A", "B"), r[:size]), "S": (("B", "C"), s[:size])})
