"""Domain-flavoured workloads used by the example applications.

The paper motivates hierarchical queries with analytics over evolving
relational data (streaming, probabilistic, and provenance settings all build
on them).  The scenarios below put concrete, realistic column names on the
query shapes that appear in the paper so the examples read like applications
rather than synthetic benchmarks:

* **retail** — orders and returns join on a shared product key: the
  δ₁-hierarchical pattern ``Q(customer, region) = Orders(customer, product),
  Returns(product, region)`` of Example 28;
* **social** — a messaging fan-out: users follow channels and channels emit
  posts, with per-channel activity following a Zipf law (a few channels are
  extremely hot — exactly the skew the heavy/light split targets);
* **sensors** — the free-connex aggregation pattern of Example 18 over
  device registrations, calibrations, and readings;
* **fraud** — a transaction-flagging fan-out: transfers, rule flags, and
  geo tags all meet on a transaction id with a few mule-account hubs of
  extreme degree (a δ₂-hierarchical star, the hardest dynamic shape here);
* **iot** — sliding-window churn: every arriving reading eventually expires,
  so the stream is a balanced insert/delete mix that keeps the database size
  stable while turning its contents over completely;
* **adversarial** — a heavy-key flip-flop that repeatedly pushes one join
  key across the ``N^ε`` heavy/light threshold and back, the worst case for
  minor rebalancing;
* **hot_shard** — many mid-degree hot keys whose degree sits between a
  shard's threshold and the global one, so a single engine pays
  ``O(degree)`` per update where a sharded engine pays ``O(1)`` (the
  workload behind ``benchmarks/bench_sharded_scaling.py``);
* **skewed_shard** — Zipf-skewed shard keys: one shard ends up holding most
  of the data and absorbing most of the traffic, the load-imbalance worst
  case for :mod:`repro.sharding`;
* **phase_shift** — alternating write bursts and read-heavy serving phases
  over hot join keys, so *every* fixed ε loses on some phase — the workload
  behind ``benchmarks/bench_adaptive.py`` and :mod:`repro.adaptive`;
* **read_burst** — a single regime change: a long write burst followed by
  read-only serving, the simplest case for adaptive ε retuning;
* **fraud_topk** — per-account extremum of transaction risk scores where
  retractions preferentially withdraw the *current maximum*, forcing the
  min/max ring to re-derive extrema from its support multiset;
* **iot_rolling_sum** — per-site rolling sums over the sliding-window churn:
  every expiring reading cancels exactly what its arrival added, the
  heavy-cancellation regime where a float sum would silently drift
  (the sum ring folds exactly and renders at the edge);
* **feed_counters** — per-user feed counters over Zipf-hot channels with
  post deletions, the counting-ring hot-key workload behind
  ``benchmarks/bench_aggregates.py``'s subscription measurements.

Every scenario is also registered in the :data:`SCENARIOS` matrix (a
name → :class:`Scenario` registry, extended by
:mod:`repro.workloads.matrix` with the matrix-multiplication encoding) so
the conformance fuzzer and the benchmark harness sample the same catalogue
of domains through one uniform interface.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.data.database import Database
from repro.data.update import Update, UpdateStream
from repro.workloads.generators import zipf_values


def retail_database(
    orders: int = 2000,
    returns: int = 1000,
    products: int = 400,
    customers: int = 500,
    regions: int = 20,
    skew: float = 1.1,
    seed: int = 0,
) -> Database:
    """Orders(customer, product) and Returns(product, region) with hot products."""
    rng = random.Random(seed)
    order_products = zipf_values(orders, products, skew, seed)
    return_products = zipf_values(returns, products, skew, seed + 1)
    order_rows = [
        (rng.randrange(customers), product) for product in order_products
    ]
    return_rows = [
        (product, rng.randrange(regions)) for product in return_products
    ]
    return Database.from_dict(
        {
            "Orders": (("customer", "product"), order_rows),
            "Returns": (("product", "region"), return_rows),
        }
    )


RETAIL_QUERY = "Q(A, C) = Orders(A, B), Returns(B, C)"
"""Customers paired with the regions their purchased products were returned from."""


def retail_update_stream(
    count: int,
    products: int = 400,
    customers: int = 500,
    regions: int = 20,
    skew: float = 1.1,
    insert_fraction: float = 0.8,
    seed: int = 7,
) -> UpdateStream:
    """A stream of new orders/returns (and occasional cancellations)."""
    rng = random.Random(seed)
    hot_products = zipf_values(count, products, skew, seed + 2)
    updates: List[Update] = []
    inserted: List[Update] = []
    for product in hot_products:
        if inserted and rng.random() > insert_fraction:
            victim = inserted.pop(rng.randrange(len(inserted)))
            updates.append(victim.inverted())
            continue
        if rng.random() < 0.6:
            update = Update("Orders", (rng.randrange(customers), product), 1)
        else:
            update = Update("Returns", (product, rng.randrange(regions)), 1)
        updates.append(update)
        inserted.append(update)
    return UpdateStream(updates)


def social_database(
    follows: int = 3000,
    posts: int = 3000,
    users: int = 800,
    channels: int = 300,
    skew: float = 1.2,
    seed: int = 0,
) -> Database:
    """Follows(user, channel) and Posts(channel, post) with hot channels."""
    rng = random.Random(seed)
    follow_channels = zipf_values(follows, channels, skew, seed)
    post_channels = zipf_values(posts, channels, skew, seed + 3)
    follow_rows = [(rng.randrange(users), channel) for channel in follow_channels]
    post_rows = [
        (channel, rng.randrange(10 * posts)) for channel in post_channels
    ]
    return Database.from_dict(
        {
            "Follows": (("user", "channel"), follow_rows),
            "Posts": (("channel", "post"), post_rows),
        }
    )


SOCIAL_QUERY = "Feed(U, P) = Follows(U, C), Posts(C, P)"
"""The feed: every (user, post) pair delivered through a followed channel."""


def social_post_stream(
    count: int, channels: int = 300, posts_base: int = 10_000_000, skew: float = 1.2, seed: int = 5
) -> UpdateStream:
    """New posts arriving on (mostly hot) channels."""
    channel_ids = zipf_values(count, channels, skew, seed)
    return UpdateStream(
        Update("Posts", (channel, posts_base + i), 1)
        for i, channel in enumerate(channel_ids)
    )


def sensor_database(
    devices: int = 200,
    registrations: int = 1500,
    calibrations: int = 1500,
    readings: int = 1500,
    seed: int = 0,
) -> Database:
    """The free-connex pattern of Example 18 with sensor-flavoured columns.

    ``Registrations(device, board, firmware)``, ``Calibrations(device, board,
    offset)``, ``Readings(device, value)``; the query asks, per device, for
    the calibration offsets and readings of registered boards.
    """
    rng = random.Random(seed)
    registration_rows = [
        (rng.randrange(devices), rng.randrange(8), rng.randrange(4))
        for _ in range(registrations)
    ]
    calibration_rows = [
        (rng.randrange(devices), rng.randrange(8), rng.randrange(50))
        for _ in range(calibrations)
    ]
    reading_rows = [
        (rng.randrange(devices), rng.randrange(1000)) for _ in range(readings)
    ]
    return Database.from_dict(
        {
            "Registrations": (("device", "board", "firmware"), registration_rows),
            "Calibrations": (("device", "board", "offset"), calibration_rows),
            "Readings": (("device", "value"), reading_rows),
        }
    )


SENSOR_QUERY = (
    "Q(A, D, E) = Registrations(A, B, C), Calibrations(A, B, D), Readings(A, E)"
)
"""Per device: calibration offsets of registered boards paired with readings."""


def sensor_reading_stream(count: int, devices: int = 200, seed: int = 3) -> UpdateStream:
    """A stream of new sensor readings."""
    rng = random.Random(seed)
    return UpdateStream(
        Update("Readings", (rng.randrange(devices), rng.randrange(1000)), 1)
        for _ in range(count)
    )


# ----------------------------------------------------------------------
# fraud: transaction-flagging fan-out (δ₂-hierarchical star)
# ----------------------------------------------------------------------
FRAUD_QUERY = "Suspicious(A, C, D) = Transfers(A, B), Flags(B, C), Geo(B, D)"
"""Accounts paired with the rules and regions flagging their transactions.

``A`` = account, ``B`` = transaction, ``C`` = rule, ``D`` = region.  The
three atoms meet on the bound transaction id with every leaf free — the
same δ₂-hierarchical star shape as ``star2`` in the test catalogue, so
updates genuinely exercise the ``O(N^{2ε})`` amortized bound."""


def fraud_database(
    transfers: int = 2000,
    flags: int = 800,
    geo: int = 800,
    accounts: int = 400,
    transactions: int = 600,
    rules: int = 12,
    regions: int = 30,
    skew: float = 1.2,
    seed: int = 0,
) -> Database:
    """Transfers/Flags/Geo joined on hot transaction hubs.

    Transaction ids follow a Zipf law in all three relations, modelling a
    few mule accounts whose transactions attract most of the rule flags.
    """
    rng = random.Random(seed)
    transfer_txns = zipf_values(transfers, transactions, skew, seed)
    flag_txns = zipf_values(flags, transactions, skew, seed + 1)
    geo_txns = zipf_values(geo, transactions, skew, seed + 2)
    transfer_rows = [(rng.randrange(accounts), txn) for txn in transfer_txns]
    flag_rows = [(txn, rng.randrange(rules)) for txn in flag_txns]
    geo_rows = [(txn, rng.randrange(regions)) for txn in geo_txns]
    return Database.from_dict(
        {
            "Transfers": (("account", "txn"), transfer_rows),
            "Flags": (("txn", "rule"), flag_rows),
            "Geo": (("txn", "region"), geo_rows),
        }
    )


def fraud_flag_stream(
    count: int,
    transactions: int = 600,
    rules: int = 12,
    skew: float = 1.2,
    clear_fraction: float = 0.4,
    seed: int = 11,
) -> UpdateStream:
    """Rule flags raised on (mostly hot) transactions and later cleared.

    Each event either raises a new flag or clears a previously raised one
    (``clear_fraction`` of the time once flags exist), so hot transactions
    see their flag sets flip-flop — the churn a streaming rule engine
    produces.
    """
    rng = random.Random(seed)
    txns = zipf_values(count, transactions, skew, seed + 1)
    raised: List[Update] = []
    updates: List[Update] = []
    for txn in txns:
        if raised and rng.random() < clear_fraction:
            victim = raised.pop(rng.randrange(len(raised)))
            updates.append(victim.inverted())
            continue
        update = Update("Flags", (txn, rng.randrange(rules)), 1)
        updates.append(update)
        raised.append(update)
    return UpdateStream(updates)


# ----------------------------------------------------------------------
# iot: sliding-window churn
# ----------------------------------------------------------------------
IOT_QUERY = "Q(S, V) = Devices(D, S), Readings(D, V)"
"""Per site: the readings currently inside the window, via device ownership."""


def iot_database(
    devices: int = 300,
    sites: int = 40,
    window: int = 1000,
    value_domain: int = 10_000,
    seed: int = 0,
) -> Database:
    """Device→site registrations plus an initial window of live readings."""
    rng = random.Random(seed)
    device_rows = [(device, rng.randrange(sites)) for device in range(devices)]
    reading_rows = [
        (rng.randrange(devices), rng.randrange(value_domain)) for _ in range(window)
    ]
    return Database.from_dict(
        {
            "Devices": (("device", "site"), device_rows),
            "Readings": (("device", "value"), reading_rows),
        }
    )


def iot_window_stream(
    count: int,
    database: Database,
    window: int = 1000,
    devices: int = 300,
    value_domain: int = 10_000,
    seed: int = 9,
) -> UpdateStream:
    """Sliding-window churn: every new reading eventually expires.

    Each event inserts a fresh reading; once more than ``window`` readings
    are live, the oldest one is deleted in the same breath — a FIFO window
    over the ``Readings`` relation, seeded with the readings already present
    in ``database`` (oldest first, in insertion order).  Roughly half the
    stream is deletes, which keeps the database size flat while its contents
    turn over completely — the regime where incremental maintenance has to
    win on update cost alone.
    """
    rng = random.Random(seed)
    live: List[Tuple[int, int]] = [
        tup
        for tup, mult in database.relation("Readings").items()
        for _ in range(mult)
    ]
    oldest = 0  # cursor instead of pop(0): keeps generation O(count)
    updates: List[Update] = []
    for _ in range(count):
        reading = (rng.randrange(devices), rng.randrange(value_domain))
        live.append(reading)
        updates.append(Update("Readings", reading, 1))
        if len(live) - oldest > window:
            updates.append(Update("Readings", live[oldest], -1))
            oldest += 1
    return UpdateStream(updates)


# ----------------------------------------------------------------------
# fraud_topk: per-account score extrema under max-targeting retractions
# ----------------------------------------------------------------------
FRAUD_TOPK_QUERY = "Alerts(A, S) = Transfers(A, B), Scores(B, S)"
"""Per account: the risk scores attached to its transactions.

``A`` = account, ``B`` = transaction, ``S`` = score.  The natural read is
not the enumeration but ``max(S) group by A`` — the per-account top risk —
which the max ring maintains in O(1) per update."""


def fraud_topk_database(
    transfers: int = 2000,
    scores: int = 900,
    accounts: int = 120,
    transactions: int = 500,
    score_domain: int = 1000,
    skew: float = 1.2,
    seed: int = 0,
) -> Database:
    """Transfers(account, txn) and Scores(txn, score) on hot transactions."""
    rng = random.Random(seed)
    transfer_txns = zipf_values(transfers, transactions, skew, seed)
    score_txns = zipf_values(scores, transactions, skew, seed + 1)
    transfer_rows = [(rng.randrange(accounts), txn) for txn in transfer_txns]
    score_rows = [(txn, rng.randrange(score_domain)) for txn in score_txns]
    return Database.from_dict(
        {
            "Transfers": (("account", "txn"), transfer_rows),
            "Scores": (("txn", "score"), score_rows),
        }
    )


def fraud_topk_stream(
    count: int,
    transactions: int = 500,
    score_domain: int = 1000,
    skew: float = 1.2,
    retract_fraction: float = 0.45,
    seed: int = 19,
) -> UpdateStream:
    """Scores posted on hot transactions and later withdrawn.

    Half of the retractions target the *highest* live score — the worst
    case for extremum maintenance, where the retracted value IS the current
    answer and the ring must re-derive the max from its remaining support
    multiset rather than patch the old answer.
    """
    rng = random.Random(seed)
    txns = zipf_values(count, transactions, skew, seed + 1)
    live: List[Update] = []
    updates: List[Update] = []
    for txn in txns:
        if live and rng.random() < retract_fraction:
            if rng.random() < 0.5:
                index = max(range(len(live)), key=lambda i: live[i].tuple[1])
            else:
                index = rng.randrange(len(live))
            updates.append(live.pop(index).inverted())
            continue
        update = Update("Scores", (txn, rng.randrange(score_domain)), 1)
        updates.append(update)
        live.append(update)
    return UpdateStream(updates)


# ----------------------------------------------------------------------
# feed_counters: per-user counters over churning hot channels
# ----------------------------------------------------------------------
def feed_counter_stream(
    count: int,
    channels: int = 300,
    posts_base: int = 20_000_000,
    skew: float = 1.2,
    delete_fraction: float = 0.35,
    seed: int = 29,
) -> UpdateStream:
    """Posts arriving on hot channels and later deleted (moderation/expiry).

    Unlike :func:`social_post_stream`, a third of the events delete a live
    post, so per-user feed counters genuinely move in both directions —
    the counting-ring support is doing real retraction work, not ticking a
    monotone counter.
    """
    rng = random.Random(seed)
    channel_ids = zipf_values(count, channels, skew, seed)
    live: List[Update] = []
    updates: List[Update] = []
    for i, channel in enumerate(channel_ids):
        if live and rng.random() < delete_fraction:
            updates.append(live.pop(rng.randrange(len(live))).inverted())
            continue
        update = Update("Posts", (channel, posts_base + i), 1)
        updates.append(update)
        live.append(update)
    return UpdateStream(updates)


# ----------------------------------------------------------------------
# adversarial: heavy-key flip-flop around the N^ε threshold
# ----------------------------------------------------------------------
ADVERSARIAL_QUERY = "Q(A, C) = R(A, B), S(B, C)"
"""The path query under an adversarial rebalancing workload."""


def adversarial_database(
    size: int = 1500,
    hot_key: int = 0,
    hot_degree: int = 8,
    domain_factor: float = 0.5,
    seed: int = 0,
) -> Database:
    """A mostly-uniform path database with one join key primed near the threshold.

    ``hot_key`` starts with ``hot_degree`` tuples in both relations, so a
    modest burst of inserts pushes it over ``N^ε`` for mid-range ε and a
    matching burst of deletes pulls it back — the flip-flop stream below
    does exactly that, repeatedly.
    """
    rng = random.Random(seed)
    domain = max(4, int(size * domain_factor))
    r = [(rng.randrange(domain), rng.randrange(2, domain)) for _ in range(size)]
    s = [(rng.randrange(2, domain), rng.randrange(domain)) for _ in range(size)]
    r += [(rng.randrange(domain), hot_key) for _ in range(hot_degree)]
    s += [(hot_key, rng.randrange(domain)) for _ in range(hot_degree)]
    return Database.from_dict({"R": (("A", "B"), r), "S": (("B", "C"), s)})


def heavy_flipflop_stream(
    cycles: int,
    burst: int = 40,
    hot_key: int = 0,
    value_domain: int = 100_000,
    seed: int = 4,
) -> UpdateStream:
    """Bursts that drive one join key heavy, then light again, ``cycles`` times.

    Each cycle inserts ``burst`` fresh ``R`` tuples sharing ``hot_key`` as
    join value and then deletes them in reverse order.  Every cycle forces
    the key across the heavy/light boundary in both directions, so minor
    rebalancing fires continuously instead of amortizing away — the
    adversarial schedule the loose thresholds of Definition 11 exist to
    survive.
    """
    rng = random.Random(seed)
    updates: List[Update] = []
    for _ in range(cycles):
        burst_tuples: List[Tuple[int, int]] = []
        for _ in range(burst):
            tup = (rng.randrange(value_domain), hot_key)
            burst_tuples.append(tup)
            updates.append(Update("R", tup, 1))
        for tup in reversed(burst_tuples):
            updates.append(Update("R", tup, -1))
    return UpdateStream(updates)


# ----------------------------------------------------------------------
# hot_shard: adversarial heavy keys straddling the per-shard threshold band
# ----------------------------------------------------------------------
HOT_SHARD_QUERY = "Q(A, C) = R(A, B), S(B, C)"
"""The path query under concentrated mid-degree heavy-key traffic."""

HOT_SHARD_KEY_BASE = 3_000_000
"""Join values at or above this base are the scenario's hot keys."""


def hot_shard_database(
    size: int = 2000,
    hot_keys: int = 16,
    hot_degree_fraction: float = 0.8,
    epsilon: float = 0.5,
    seed: int = 0,
) -> Database:
    """A path database whose hot keys sit just *below* the global threshold.

    ``size`` uniform filler tuples per relation are topped up with
    ``hot_keys`` join values of equal degree ``d`` in both relations, where
    ``d ≈ hot_degree_fraction · (2N)^epsilon`` (solved by fixed-point
    iteration since the hot tuples count towards ``N``).  At the stated
    ``epsilon`` a single engine classifies every hot key *light* — each
    update on it pays ``O(d)`` propagation into the materialized light join
    views — while an engine over a fraction of the data (a shard) sees a
    smaller threshold and classifies the same keys *heavy*, paying ``O(1)``
    per update.  This is the adversarial heavy-key regime where sharding
    wins on update time before any parallelism, and the workload behind
    ``benchmarks/bench_sharded_scaling.py``.
    """
    rng = random.Random(seed)
    filler_domain = max(4, 10 * size)
    r = [
        (rng.randrange(filler_domain), 1_000_000 + rng.randrange(filler_domain))
        for _ in range(size)
    ]
    s = [
        (1_000_000 + rng.randrange(filler_domain), rng.randrange(filler_domain))
        for _ in range(size)
    ]
    total = 2 * size
    degree = 1
    for _ in range(6):
        degree = max(2, int(hot_degree_fraction * (2 * total) ** epsilon))
        total = 2 * size + 2 * hot_keys * degree
    for key in range(HOT_SHARD_KEY_BASE, HOT_SHARD_KEY_BASE + hot_keys):
        for _ in range(degree):
            r.append((rng.randrange(filler_domain), key))
            s.append((key, rng.randrange(filler_domain)))
    return Database.from_dict({"R": (("A", "B"), r), "S": (("B", "C"), s)})


def hot_shard_key_count(database: Database) -> int:
    """How many hot keys (ids at/above the reserved base) the database holds.

    The stream generator must target exactly the keys the database primed
    near the threshold — a mismatch would silently degenerate the scenario
    into near-uniform churn on cold keys.
    """
    seen = {
        tup[0]
        for tup, _mult in database.relation("S").items()
        if tup[0] >= HOT_SHARD_KEY_BASE
    }
    return max(1, len(seen))


def hot_shard_stream(
    count: int,
    hot_keys: int = 16,
    delete_fraction: float = 0.5,
    value_domain: int = 1_000_000,
    seed: int = 13,
) -> UpdateStream:
    """Insert/delete churn concentrated on the database's hot keys.

    Every event touches one hot join value: an insert of a fresh ``R``
    tuple, or (``delete_fraction`` of the time once inserts exist) the
    deletion of a previously inserted one.  Net drift is near zero, so hot
    degrees stay inside the band between the per-shard and the global
    threshold for the whole stream — the single engine keeps paying the
    light-regime ``O(degree)`` per event while a sharded engine stays in
    the ``O(1)`` heavy regime.
    """
    rng = random.Random(seed)
    updates: List[Update] = []
    live: List[Update] = []
    for _ in range(count):
        if live and rng.random() < delete_fraction:
            updates.append(live.pop(rng.randrange(len(live))).inverted())
            continue
        key = HOT_SHARD_KEY_BASE + rng.randrange(hot_keys)
        update = Update("R", (rng.randrange(value_domain), key), 1)
        updates.append(update)
        live.append(update)
    return UpdateStream(updates)


# ----------------------------------------------------------------------
# skewed_shard: Zipf-skewed shard keys, one shard takes most of the traffic
# ----------------------------------------------------------------------
SKEWED_SHARD_QUERY = "Q(A, C) = R(A, B), S(B, C)"
"""The path query under a Zipf-skewed shard-key distribution."""


def skewed_shard_database(
    size: int = 2000,
    domain: int = 50,
    skew: float = 1.6,
    seed: int = 0,
) -> Database:
    """A path database whose join values follow a steep Zipf law.

    With a few dozen distinct join values and exponent ``skew``, the
    heaviest value takes a large constant fraction of all tuples — and
    since the shard key *is* the join value, whichever shard its hash lands
    on holds a matching fraction of the whole database.  The scenario
    exercises shard imbalance: routing, merging, and per-shard rebalancing
    must stay correct when one shard dwarfs the rest.
    """
    rng = random.Random(seed)
    r_keys = zipf_values(size, domain, skew, seed)
    s_keys = zipf_values(size, domain, skew, seed + 1)
    r = [(rng.randrange(10 * size), key) for key in r_keys]
    s = [(key, rng.randrange(10 * size)) for key in s_keys]
    return Database.from_dict({"R": (("A", "B"), r), "S": (("B", "C"), s)})


def skewed_shard_stream(
    count: int,
    domain: int = 50,
    skew: float = 1.6,
    delete_fraction: float = 0.35,
    seed: int = 17,
) -> UpdateStream:
    """Zipf-skewed insert/delete traffic over both relations.

    Updates draw their join value from the same Zipf law as the database,
    so the hot shard also absorbs most of the update traffic (the worst
    case for load balance, the common case in production key spaces).
    """
    rng = random.Random(seed)
    keys = zipf_values(count, domain, skew, seed + 2)
    updates: List[Update] = []
    live: List[Update] = []
    for key in keys:
        if live and rng.random() < delete_fraction:
            updates.append(live.pop(rng.randrange(len(live))).inverted())
            continue
        if rng.random() < 0.5:
            update = Update("R", (rng.randrange(100_000), key), 1)
        else:
            update = Update("S", (key, rng.randrange(100_000)), 1)
        updates.append(update)
        live.append(update)
    return UpdateStream(updates)


# ----------------------------------------------------------------------
# phase_shift / read_burst: mixed read/write traffic for adaptive ε
# ----------------------------------------------------------------------
PHASE_SHIFT_QUERY = "Q(A, C) = R(A, B), S(B, C)"
"""The path query under phase-alternating read/write traffic."""

PHASE_SHIFT_KEY_BASE = 7_000_000
"""Join values at or above this base are the phase-shift hot keys."""


def phase_shift_database(
    size: int = 1200,
    hot_keys: int = 8,
    hot_degree_fraction: float = 0.7,
    filler_domain: int = 100,
    value_domain: int = 100_000,
    seed: int = 0,
) -> Database:
    """A path database that makes every fixed ε lose on some phase.

    ``size`` filler tuples per relation draw their join value from a
    bounded ``filler_domain`` (so the all-heavy ε = 0 regime stays well
    inside recursion limits), topped up with ``hot_keys`` join values of
    degree ``d ≈ hot_degree_fraction · √M`` in both relations (fixed-point
    solved, ``M = 2N + 1``).  At every ε ≥ 0.5 the hot keys classify
    *light*, so each update on them pays ``O(d)`` propagation into the
    materialized join views — writes want ε = 0, where all keys are heavy
    and updates cost ``O(1)``.  Enumeration is the mirror image: the ε = 0
    heavy regime pays per-tuple lookups through every heavy key while
    large ε enumerates straight off the views — reads want ε = 1.  A
    workload that alternates write bursts with read-heavy serving phases
    therefore has no good fixed ε, which is exactly what
    ``benchmarks/bench_adaptive.py`` exploits.
    """
    rng = random.Random(seed)
    r = [
        (rng.randrange(value_domain), 1_000_000 + rng.randrange(filler_domain))
        for _ in range(size)
    ]
    s = [
        (1_000_000 + rng.randrange(filler_domain), rng.randrange(value_domain))
        for _ in range(size)
    ]
    total = 2 * size
    degree = 2
    for _ in range(6):
        degree = max(2, int(hot_degree_fraction * (2 * total + 1) ** 0.5))
        total = 2 * size + 2 * hot_keys * degree
    for key in range(PHASE_SHIFT_KEY_BASE, PHASE_SHIFT_KEY_BASE + hot_keys):
        for _ in range(degree):
            r.append((rng.randrange(value_domain), key))
            s.append((key, rng.randrange(value_domain)))
    return Database.from_dict({"R": (("A", "B"), r), "S": (("B", "C"), s)})


def phase_shift_key_count(database: Database) -> int:
    """How many hot keys (ids at/above the reserved base) the database holds."""
    seen = {
        tup[0]
        for tup, _mult in database.relation("S").items()
        if tup[0] >= PHASE_SHIFT_KEY_BASE
    }
    return max(1, len(seen))


def phase_shift_write_stream(
    count: int,
    hot_keys: int = 8,
    delete_fraction: float = 0.5,
    value_domain: int = 100_000,
    seed: int = 23,
) -> UpdateStream:
    """Insert/delete churn concentrated on the phase-shift hot keys.

    Near-zero net drift keeps the hot degrees in the light band for every
    ε ≥ 0.5 — each event stays ``O(degree)`` there and ``O(1)`` at ε = 0 —
    so the write-phase cost gap between small and large ε persists for the
    whole stream.
    """
    rng = random.Random(seed)
    updates: List[Update] = []
    live: List[Update] = []
    for _ in range(count):
        if live and rng.random() < delete_fraction:
            updates.append(live.pop(rng.randrange(len(live))).inverted())
            continue
        key = PHASE_SHIFT_KEY_BASE + rng.randrange(hot_keys)
        update = Update("R", (rng.randrange(value_domain), key), 1)
        updates.append(update)
        live.append(update)
    return UpdateStream(updates)


OpEvent = Tuple[str, object]
"""One mixed-workload event: ``("write", Update)`` or ``("read", limit)``."""


def phase_shift_ops(
    database: Database,
    phases: int = 4,
    writes_per_phase: int = 3000,
    reads_per_phase: int = 25,
    trickle_writes: int = 20,
    read_limit: int = 200,
    seed: int = 31,
) -> List[OpEvent]:
    """The phase-shift op sequence: alternating write and read phases.

    Odd phases are write bursts (``writes_per_phase`` hot-key updates, no
    reads); even phases are read-heavy serving (``reads_per_phase`` page
    reads of ``read_limit`` tuples each, with ``trickle_writes`` updates
    sprinkled in so the engine is never fully quiescent).  A ``("read",
    limit)`` event means "enumerate the first ``limit`` result tuples" —
    the paper's constant-delay page-read model, matching
    :meth:`repro.core.serving.EngineServer.read`.
    """
    hot = phase_shift_key_count(database)
    ops: List[OpEvent] = []
    for phase in range(phases):
        if phase % 2 == 0:
            stream = phase_shift_write_stream(
                writes_per_phase, hot_keys=hot, seed=seed + 13 * phase
            )
            ops.extend(("write", update) for update in stream)
        else:
            stream = list(
                phase_shift_write_stream(
                    trickle_writes, hot_keys=hot, seed=seed + 13 * phase
                )
            )
            # interleave the trickle writes at random positions among the
            # reads WITHOUT permuting the writes themselves — a delete must
            # never overtake the insert it cancels
            rng = random.Random(seed + 7 * phase)
            slots: List[str] = ["read"] * reads_per_phase
            for _ in stream:
                slots.insert(rng.randrange(len(slots) + 1), "write")
            writes_in_order = iter(stream)
            ops.extend(
                ("write", next(writes_in_order))
                if slot == "write"
                else ("read", read_limit)
                for slot in slots
            )
    return ops


def read_burst_ops(
    database: Database,
    writes: int = 2000,
    reads: int = 60,
    read_limit: int = 300,
    seed: int = 37,
) -> List[OpEvent]:
    """A single regime change: one long write burst, then a pure read burst.

    The simplest adaptive story — an engine tuned for ingestion must notice
    that traffic turned read-only and pay one retune instead of serving
    every read through the slow regime.
    """
    hot = phase_shift_key_count(database)
    ops: List[OpEvent] = [
        ("write", update)
        for update in phase_shift_write_stream(writes, hot_keys=hot, seed=seed)
    ]
    ops.extend([("read", read_limit)] * reads)
    return ops


# ----------------------------------------------------------------------
# the scenario matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One row of the scenario matrix: a query plus workload factories.

    ``make_database(seed, scale)`` builds the initial database (``scale``
    multiplies the row counts) and ``make_stream(database, count, seed)``
    builds an update stream that is valid against that database.  Both the
    conformance fuzzer (:mod:`repro.conformance`) and the benchmark harness
    sample scenarios through this interface, so every new domain
    automatically becomes both a correctness workload and a benchmark
    workload.
    """

    name: str
    query: str
    description: str
    make_database: Callable[[int, float], Database]
    make_stream: Callable[[Database, int, int], UpdateStream]
    #: The scenario's natural aggregates as ``(ring name, value selector,
    #: group_by)`` triples — plain data rather than
    #: :class:`~repro.rings.spec.AggregateSpec` instances so the workload
    #: layer stays import-independent of the ring layer.  The conformance
    #: checks fold these alongside their generic spec set; an empty tuple
    #: means the generic set alone.
    aggregates: Tuple[Tuple[str, object, Tuple], ...] = ()


SCENARIOS: Dict[str, Scenario] = {}
"""The scenario matrix, keyed by scenario name."""


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the matrix (last registration wins on name clashes)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error on typos."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def _scaled(count: int, scale: float) -> int:
    return max(1, int(count * scale))


register_scenario(
    Scenario(
        name="retail",
        query=RETAIL_QUERY,
        description="orders/returns on hot products (δ₁ path, Example 28)",
        make_database=lambda seed, scale: retail_database(
            orders=_scaled(2000, scale), returns=_scaled(1000, scale), seed=seed
        ),
        make_stream=lambda database, count, seed: retail_update_stream(
            count, seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="social",
        query=SOCIAL_QUERY,
        description="feed fan-out over Zipf-hot channels",
        make_database=lambda seed, scale: social_database(
            follows=_scaled(3000, scale), posts=_scaled(3000, scale), seed=seed
        ),
        make_stream=lambda database, count, seed: social_post_stream(
            count, seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="sensors",
        query=SENSOR_QUERY,
        description="free-connex device/calibration/reading join (Example 18)",
        make_database=lambda seed, scale: sensor_database(
            registrations=_scaled(1500, scale),
            calibrations=_scaled(1500, scale),
            readings=_scaled(1500, scale),
            seed=seed,
        ),
        make_stream=lambda database, count, seed: sensor_reading_stream(
            count, seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="fraud",
        query=FRAUD_QUERY,
        description="δ₂ star: transfers/flags/geo on mule-transaction hubs",
        make_database=lambda seed, scale: fraud_database(
            transfers=_scaled(2000, scale),
            flags=_scaled(800, scale),
            geo=_scaled(800, scale),
            seed=seed,
        ),
        make_stream=lambda database, count, seed: fraud_flag_stream(
            count, seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="iot",
        query=IOT_QUERY,
        description="sliding-window churn: every reading eventually expires",
        make_database=lambda seed, scale: iot_database(
            window=_scaled(1000, scale), seed=seed
        ),
        make_stream=lambda database, count, seed: iot_window_stream(
            count,
            database,
            window=database.relation("Readings").total_multiplicity(),
            seed=seed,
        ),
    )
)

register_scenario(
    Scenario(
        name="hot_shard",
        query=HOT_SHARD_QUERY,
        description="mid-degree heavy keys between the per-shard and global thresholds",
        make_database=lambda seed, scale: hot_shard_database(
            size=_scaled(2000, scale), hot_keys=max(4, _scaled(16, scale)), seed=seed
        ),
        make_stream=lambda database, count, seed: hot_shard_stream(
            count, hot_keys=hot_shard_key_count(database), seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="skewed_shard",
        query=SKEWED_SHARD_QUERY,
        description="Zipf-skewed shard keys: one shard takes most data and traffic",
        make_database=lambda seed, scale: skewed_shard_database(
            size=_scaled(2000, scale), seed=seed
        ),
        make_stream=lambda database, count, seed: skewed_shard_stream(
            count, seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="phase_shift",
        query=PHASE_SHIFT_QUERY,
        description="alternating write bursts and read-heavy phases (adaptive ε)",
        make_database=lambda seed, scale: phase_shift_database(
            size=_scaled(1200, scale), seed=seed
        ),
        # the matrix interface carries the write traffic; the read phases
        # live in phase_shift_ops, consumed by benchmarks/bench_adaptive.py
        make_stream=lambda database, count, seed: phase_shift_write_stream(
            count, hot_keys=phase_shift_key_count(database), seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="read_burst",
        query=PHASE_SHIFT_QUERY,
        description="one regime change: a write burst, then read-only serving",
        make_database=lambda seed, scale: phase_shift_database(
            size=_scaled(1200, scale), seed=seed
        ),
        make_stream=lambda database, count, seed: phase_shift_write_stream(
            count, hot_keys=phase_shift_key_count(database), seed=seed
        ),
    )
)

register_scenario(
    Scenario(
        name="fraud_topk",
        query=FRAUD_TOPK_QUERY,
        description="per-account max risk score under max-targeting retractions",
        make_database=lambda seed, scale: fraud_topk_database(
            transfers=_scaled(2000, scale), scores=_scaled(900, scale), seed=seed
        ),
        make_stream=lambda database, count, seed: fraud_topk_stream(
            count, seed=seed
        ),
        aggregates=(
            ("max", "S", ("A",)),
            ("min", "S", ("A",)),
        ),
    )
)

register_scenario(
    Scenario(
        name="iot_rolling_sum",
        query=IOT_QUERY,
        description="per-site rolling sums over sliding-window churn",
        make_database=lambda seed, scale: iot_database(
            window=_scaled(600, scale), sites=24, seed=seed
        ),
        make_stream=lambda database, count, seed: iot_window_stream(
            count,
            database,
            window=database.relation("Readings").total_multiplicity(),
            seed=seed,
        ),
        aggregates=(
            ("sum", "V", ("S",)),
            ("counting", None, ("S",)),
        ),
    )
)

register_scenario(
    Scenario(
        name="feed_counters",
        query=SOCIAL_QUERY,
        description="per-user feed counters over churning hot channels",
        make_database=lambda seed, scale: social_database(
            follows=_scaled(3000, scale), posts=_scaled(3000, scale), seed=seed
        ),
        make_stream=lambda database, count, seed: feed_counter_stream(
            count, seed=seed
        ),
        aggregates=(
            ("counting", None, ("U",)),
            ("sum", "P", ("U",)),
        ),
    )
)

register_scenario(
    Scenario(
        name="adversarial",
        query=ADVERSARIAL_QUERY,
        description="heavy-key flip-flop across the N^ε threshold",
        make_database=lambda seed, scale: adversarial_database(
            size=_scaled(1500, scale), seed=seed
        ),
        # burst ≈ 2.5·M^0.5 clears the 3θ/2 move-to-heavy bound at ε = 0.5
        # (θ = M^ε with M = 2N+1), so every cycle crosses the border twice.
        make_stream=lambda database, count, seed: heavy_flipflop_stream(
            cycles=max(2, count // 80),
            burst=max(20, int(2.5 * (2 * database.size + 1) ** 0.5)),
            seed=seed,
        ),
    )
)
