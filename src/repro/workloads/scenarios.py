"""Domain-flavoured workloads used by the example applications.

The paper motivates hierarchical queries with analytics over evolving
relational data (streaming, probabilistic, and provenance settings all build
on them).  The scenarios below put concrete, realistic column names on the
query shapes that appear in the paper so the examples read like applications
rather than synthetic benchmarks:

* **retail** — orders and returns join on a shared product key: the
  δ₁-hierarchical pattern ``Q(customer, region) = Orders(customer, product),
  Returns(product, region)`` of Example 28;
* **social** — a messaging fan-out: users follow channels and channels emit
  posts, with per-channel activity following a Zipf law (a few channels are
  extremely hot — exactly the skew the heavy/light split targets);
* **sensors** — the free-connex aggregation pattern of Example 18 over
  device registrations, calibrations, and readings.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.data.database import Database
from repro.data.update import Update, UpdateStream
from repro.workloads.generators import zipf_values


def retail_database(
    orders: int = 2000,
    returns: int = 1000,
    products: int = 400,
    customers: int = 500,
    regions: int = 20,
    skew: float = 1.1,
    seed: int = 0,
) -> Database:
    """Orders(customer, product) and Returns(product, region) with hot products."""
    rng = random.Random(seed)
    order_products = zipf_values(orders, products, skew, seed)
    return_products = zipf_values(returns, products, skew, seed + 1)
    order_rows = [
        (rng.randrange(customers), product) for product in order_products
    ]
    return_rows = [
        (product, rng.randrange(regions)) for product in return_products
    ]
    return Database.from_dict(
        {
            "Orders": (("customer", "product"), order_rows),
            "Returns": (("product", "region"), return_rows),
        }
    )


RETAIL_QUERY = "Q(A, C) = Orders(A, B), Returns(B, C)"
"""Customers paired with the regions their purchased products were returned from."""


def retail_update_stream(
    count: int,
    products: int = 400,
    customers: int = 500,
    regions: int = 20,
    skew: float = 1.1,
    insert_fraction: float = 0.8,
    seed: int = 7,
) -> UpdateStream:
    """A stream of new orders/returns (and occasional cancellations)."""
    rng = random.Random(seed)
    hot_products = zipf_values(count, products, skew, seed + 2)
    updates: List[Update] = []
    inserted: List[Update] = []
    for product in hot_products:
        if inserted and rng.random() > insert_fraction:
            victim = inserted.pop(rng.randrange(len(inserted)))
            updates.append(victim.inverted())
            continue
        if rng.random() < 0.6:
            update = Update("Orders", (rng.randrange(customers), product), 1)
        else:
            update = Update("Returns", (product, rng.randrange(regions)), 1)
        updates.append(update)
        inserted.append(update)
    return UpdateStream(updates)


def social_database(
    follows: int = 3000,
    posts: int = 3000,
    users: int = 800,
    channels: int = 300,
    skew: float = 1.2,
    seed: int = 0,
) -> Database:
    """Follows(user, channel) and Posts(channel, post) with hot channels."""
    rng = random.Random(seed)
    follow_channels = zipf_values(follows, channels, skew, seed)
    post_channels = zipf_values(posts, channels, skew, seed + 3)
    follow_rows = [(rng.randrange(users), channel) for channel in follow_channels]
    post_rows = [
        (channel, rng.randrange(10 * posts)) for channel in post_channels
    ]
    return Database.from_dict(
        {
            "Follows": (("user", "channel"), follow_rows),
            "Posts": (("channel", "post"), post_rows),
        }
    )


SOCIAL_QUERY = "Feed(U, P) = Follows(U, C), Posts(C, P)"
"""The feed: every (user, post) pair delivered through a followed channel."""


def social_post_stream(
    count: int, channels: int = 300, posts_base: int = 10_000_000, skew: float = 1.2, seed: int = 5
) -> UpdateStream:
    """New posts arriving on (mostly hot) channels."""
    channel_ids = zipf_values(count, channels, skew, seed)
    return UpdateStream(
        Update("Posts", (channel, posts_base + i), 1)
        for i, channel in enumerate(channel_ids)
    )


def sensor_database(
    devices: int = 200,
    registrations: int = 1500,
    calibrations: int = 1500,
    readings: int = 1500,
    seed: int = 0,
) -> Database:
    """The free-connex pattern of Example 18 with sensor-flavoured columns.

    ``Registrations(device, board, firmware)``, ``Calibrations(device, board,
    offset)``, ``Readings(device, value)``; the query asks, per device, for
    the calibration offsets and readings of registered boards.
    """
    rng = random.Random(seed)
    registration_rows = [
        (rng.randrange(devices), rng.randrange(8), rng.randrange(4))
        for _ in range(registrations)
    ]
    calibration_rows = [
        (rng.randrange(devices), rng.randrange(8), rng.randrange(50))
        for _ in range(calibrations)
    ]
    reading_rows = [
        (rng.randrange(devices), rng.randrange(1000)) for _ in range(readings)
    ]
    return Database.from_dict(
        {
            "Registrations": (("device", "board", "firmware"), registration_rows),
            "Calibrations": (("device", "board", "offset"), calibration_rows),
            "Readings": (("device", "value"), reading_rows),
        }
    )


SENSOR_QUERY = (
    "Q(A, D, E) = Registrations(A, B, C), Calibrations(A, B, D), Readings(A, E)"
)
"""Per device: calibration offsets of registered boards paired with readings."""


def sensor_reading_stream(count: int, devices: int = 200, seed: int = 3) -> UpdateStream:
    """A stream of new sensor readings."""
    rng = random.Random(seed)
    return UpdateStream(
        Update("Readings", (rng.randrange(devices), rng.randrange(1000)), 1)
        for _ in range(count)
    )
