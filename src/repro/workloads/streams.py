"""Update-stream generators.

The dynamic benchmarks and the property-based maintenance tests need
reproducible sequences of single-tuple inserts and deletes with controllable
characteristics: pure insert streams (for the "preprocessing = N inserts"
experiments), mixed insert/delete streams that keep the database size
roughly stable, skew-shifting streams that force minor rebalancing, and
growth streams that force major rebalancing.

Every generator returns an :class:`~repro.data.update.UpdateStream`, so its
output can be consumed either one tuple at a time (``engine.apply_stream``)
or in consolidated batches (``stream.batches(size)`` →
``engine.apply_batch``); the batched benchmarks replay the exact same
streams as the single-update ones.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateStream
from repro.workloads.generators import zipf_values


def insert_stream_from_database(database: Database, seed: int = 0) -> UpdateStream:
    """All tuples of a database as unit inserts, in shuffled order."""
    rng = random.Random(seed)
    updates: List[Update] = []
    for relation in database:
        for tup, mult in relation.items():
            updates.append(Update(relation.name, tup, mult))
    rng.shuffle(updates)
    return UpdateStream(updates)


def mixed_stream(
    database: Database,
    count: int,
    delete_fraction: float = 0.3,
    domain: int = 64,
    seed: int = 0,
) -> UpdateStream:
    """A stream of random inserts and deletes against an evolving shadow copy.

    Deletes always target tuples that exist at that point of the stream, so
    the stream can be replayed against any engine without rejections; the
    shadow copy passed in is *not* modified.
    """
    rng = random.Random(seed)
    shadow = database.copy()
    names = list(shadow.names())
    updates: List[Update] = []
    for _ in range(count):
        name = rng.choice(names)
        relation = shadow.relation(name)
        if len(relation) > 0 and rng.random() < delete_fraction:
            tup = rng.choice(list(relation.tuples()))
            updates.append(Update(name, tup, -1))
            relation.apply_delta(tup, -1)
        else:
            tup = tuple(rng.randrange(domain) for _ in relation.schema)
            updates.append(Update(name, tup, 1))
            relation.apply_delta(tup, 1)
    return UpdateStream(updates)


def skew_shift_stream(
    relation_name: str,
    arity: int,
    count: int,
    hot_key: int,
    key_position: int = 1,
    value_domain: int = 1024,
    seed: int = 0,
) -> UpdateStream:
    """Inserts that pile onto one join key, then remove them again.

    The first half of the stream inserts ``count // 2`` tuples sharing the
    same join key (driving the key from light to heavy — minor rebalancing
    must move it out of the light part); the second half deletes them in
    reverse order (driving it back to light).
    """
    rng = random.Random(seed)
    inserted: List[ValueTuple] = []
    updates: List[Update] = []
    for _ in range(count // 2):
        tup = [rng.randrange(value_domain) for _ in range(arity)]
        tup[key_position] = hot_key
        tup_t = tuple(tup)
        inserted.append(tup_t)
        updates.append(Update(relation_name, tup_t, 1))
    for tup_t in reversed(inserted):
        updates.append(Update(relation_name, tup_t, -1))
    return UpdateStream(updates)


def growth_stream(
    relation_name: str,
    arity: int,
    count: int,
    domain: int = 4096,
    seed: int = 0,
) -> UpdateStream:
    """A pure-insert stream that grows one relation (forces major rebalancing)."""
    rng = random.Random(seed)
    return UpdateStream(
        Update(relation_name, tuple(rng.randrange(domain) for _ in range(arity)), 1)
        for _ in range(count)
    )


def shrink_stream(database: Database, relation_name: str, count: int, seed: int = 0) -> UpdateStream:
    """Deletes existing tuples of one relation (forces shrink-side rebalancing)."""
    rng = random.Random(seed)
    tuples = list(database.relation(relation_name).tuples())
    rng.shuffle(tuples)
    return UpdateStream(Update(relation_name, tup, -1) for tup in tuples[:count])


def zipf_insert_stream(
    relation_name: str,
    count: int,
    key_domain: int,
    value_domain: int,
    exponent: float = 1.0,
    key_position: int = 1,
    seed: int = 0,
) -> UpdateStream:
    """Inserts whose join-key column follows a Zipf distribution."""
    rng = random.Random(seed + 13)
    keys = zipf_values(count, key_domain, exponent, seed)
    updates = []
    for key in keys:
        other = rng.randrange(value_domain)
        tup = (key, other) if key_position == 0 else (other, key)
        updates.append(Update(relation_name, tup, 1))
    return UpdateStream(updates)
