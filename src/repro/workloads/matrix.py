"""Matrix encodings: Example 28 and the OMv-style workload of Proposition 10.

The query ``Q(A, C) = R(A, B), S(B, C)`` evaluated on relations encoding
Boolean ``n × n`` matrices *is* Boolean matrix multiplication: ``(a, c)`` is
in the result iff row ``a`` of ``R`` and column ``c`` of ``S`` share a ``B``.
With ``ε = ½`` the paper's approach spends ``O(N^{3/2})`` preprocessing and
answers with ``O(N^{1/2})`` delay, where ``N = n²`` — the "weakly Pareto
optimal" point of Figure 3.

The Online Matrix-Vector (OMv) encoding of Proposition 10 is also provided:
a fixed matrix in ``R`` and a stream of vectors, each delivered as ``O(n)``
single-tuple updates to ``S`` followed by an enumeration round.

The matrix encoding is registered as the ``matmul`` row of the scenario
matrix (:data:`repro.workloads.scenarios.SCENARIOS`), with a cell-churn
update stream, so the conformance fuzzer and the benchmarks sample it
alongside the domain scenarios.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.update import Update, UpdateStream
from repro.workloads.scenarios import Scenario, register_scenario


def random_boolean_matrix(n: int, density: float = 0.2, seed: int = 0) -> np.ndarray:
    """A random ``n × n`` Boolean matrix with the given density."""
    rng = np.random.default_rng(seed)
    return (rng.random((n, n)) < density).astype(np.int64)


def matrix_to_pairs(matrix: np.ndarray) -> List[Tuple[int, int]]:
    """The non-zero positions of a matrix as ``(row, column)`` pairs."""
    rows, cols = np.nonzero(matrix)
    return [(int(r), int(c)) for r, c in zip(rows, cols)]


def matmul_database(
    n: int, density: float = 0.2, seed: int = 0
) -> Tuple[Database, np.ndarray, np.ndarray]:
    """Database encoding two Boolean matrices for ``Q(A, C) = R(A, B), S(B, C)``.

    Returns ``(database, left_matrix, right_matrix)`` so callers can verify
    the enumerated result against ``left @ right``.
    """
    left = random_boolean_matrix(n, density, seed)
    right = random_boolean_matrix(n, density, seed + 1)
    database = Database.from_dict(
        {
            "R": (("A", "B"), matrix_to_pairs(left)),
            "S": (("B", "C"), matrix_to_pairs(right)),
        }
    )
    return database, left, right


def expected_product_support(left: np.ndarray, right: np.ndarray) -> set:
    """The Boolean support of ``left @ right`` as a set of ``(row, col)`` pairs."""
    product = (left @ right) > 0
    rows, cols = np.nonzero(product)
    return {(int(r), int(c)) for r, c in zip(rows, cols)}


def omv_matrix_database(n: int, density: float = 0.3, seed: int = 0):
    """The OMv reduction setup of Proposition 10 for ``Q(A) = R(A, B), S(B)``.

    Returns ``(database, matrix)`` where the database holds the matrix in
    ``R`` and an empty vector relation ``S``.
    """
    matrix = random_boolean_matrix(n, density, seed)
    database = Database.from_dict(
        {"R": (("A", "B"), matrix_to_pairs(matrix)), "S": (("B",), [])}
    )
    return database, matrix


def omv_vector_rounds(
    n: int, rounds: int, density: float = 0.4, seed: int = 0
) -> List[Tuple[UpdateStream, UpdateStream, np.ndarray]]:
    """Per-round update streams encoding the OMv vector arrivals.

    Each round is a triple ``(inserts, deletes, vector)``: the inserts load
    the next Boolean vector into ``S`` one tuple at a time, the deletes clear
    it again after the enumeration phase, and ``vector`` is the dense ground
    truth used to check ``M·v``.
    """
    rng = np.random.default_rng(seed)
    result = []
    for _ in range(rounds):
        vector = (rng.random(n) < density).astype(np.int64)
        positions = [int(i) for i in np.nonzero(vector)[0]]
        inserts = UpdateStream(Update("S", (i,), 1) for i in positions)
        deletes = UpdateStream(Update("S", (i,), -1) for i in positions)
        result.append((inserts, deletes, vector))
    return result


def matrix_cell_stream(
    database: Database, count: int, n: int, seed: int = 0
) -> UpdateStream:
    """Cell churn on the matrix encoding: flip 0-cells on and 1-cells off.

    Each event picks ``R`` or ``S`` and either inserts a random absent cell
    or deletes a random present one (tracked against a shadow copy, so the
    stream replays without rejections on any engine).
    """
    rng = random.Random(seed)
    shadow = database.copy()
    updates: List[Update] = []
    for _ in range(count):
        name = rng.choice(("R", "S"))
        relation = shadow.relation(name)
        if len(relation) > 0 and rng.random() < 0.5:
            tup = rng.choice(list(relation.tuples()))
            updates.append(Update(name, tup, -1))
            relation.apply_delta(tup, -1)
        else:
            tup = (rng.randrange(n), rng.randrange(n))
            if relation.multiplicity(tup) == 0:
                updates.append(Update(name, tup, 1))
                relation.apply_delta(tup, 1)
    return UpdateStream(updates)


def _matmul_scenario_database(seed: int, scale: float) -> Database:
    n = max(4, int(24 * scale))
    return matmul_database(n, seed=seed)[0]


register_scenario(
    Scenario(
        name="matmul",
        query="Q(A, C) = R(A, B), S(B, C)",
        description="Boolean matrix multiplication encoding (Example 28)",
        make_database=_matmul_scenario_database,
        make_stream=lambda database, count, seed: matrix_cell_stream(
            database,
            count,
            max((tup[0] for rel in database for tup in rel.tuples()), default=4) + 1,
            seed=seed,
        ),
    )
)
