"""Shard executors: serial, thread-pool, and multiprocessing backends.

The sharded engine talks to its shards through a tiny command set —
``load``, ``update``, ``batch``, ``result``, ``enumerate`` (sorted),
``check`` (engine invariants + placement), ``stats``, ``view_size``,
``size``, ``threshold``, ``retune`` (shard-local ε switch), ``version``,
the aggregate pair ``register_aggregate`` / ``aggregate`` (per-shard
partial aggregates as wire-form supports and ring elements, merged at the
facade with :func:`repro.enumeration.union.merge_shard_aggregates`),
plus the snapshot quartet
``snapshot`` / ``snap_enumerate`` / ``snap_lookup`` / ``snap_release``
(shard-local :class:`repro.snapshot.Snapshot` handles held in a per-worker
registry and addressed by integer id, so they work identically in-process
and across a worker pipe) — so the same facade drives three deployments:

* :class:`SerialExecutor` — per-shard engines in-process, commands run in a
  loop.  Zero overhead, no parallelism; the default for small databases and
  the conformance harness (where determinism and cheap setup matter more
  than wall-clock).
* :class:`ThreadExecutor` — the same in-process engines behind a
  ``ThreadPoolExecutor``.  Pure-Python maintenance holds the GIL, so this
  buys overlap only around any C-level work, but it exercises the
  concurrent dispatch path with none of the serialization cost.
* :class:`ProcessExecutor` — one long-lived worker process per shard, each
  owning its engine for the whole session; commands and replies cross
  ``multiprocessing`` pipes as plain tuples.  This is the scale-out
  backend: per-shard maintenance runs on separate interpreters (and
  separate cores when the host has them).

Every executor is deterministic from the engine's point of view: shard
state depends only on the sub-stream routed to that shard, and enumeration
merges per-shard results sorted by the canonical order, so scheduling can
never leak into results.
"""

from __future__ import annotations

import builtins
import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import repro.exceptions as repro_exceptions
from repro.core.api import HierarchicalEngine
from repro.data.database import Database
from repro.durability.crashpoints import (
    SimulatedCrashError,
    _injector_from_env,
    install_injector,
)
from repro.durability.manager import DurabilityConfig
from repro.enumeration.union import sort_shard_result
from repro.exceptions import WorkerDiedError
from repro.ivm.rebalance import RebalanceStats
from repro.rings.spec import AggregateSpec
from repro.sharding.router import ShardRouter

DatabasePayload = Dict[str, Tuple[Tuple[str, ...], List[Tuple[Tuple, int]]]]


def database_to_payload(database: Database) -> DatabasePayload:
    """Flatten a database into picklable primitives for a worker pipe."""
    return {
        relation.name: (
            tuple(relation.schema),
            [(tup, mult) for tup, mult in relation.items()],
        )
        for relation in database
    }


def database_from_payload(payload: DatabasePayload) -> Database:
    """Rebuild a database from :func:`database_to_payload` output."""
    database = Database()
    for name, (schema, rows) in payload.items():
        relation = database.create_relation(name, schema)
        for tup, mult in rows:
            relation.apply_delta(tuple(tup), mult)
    return database


class _ShardServer:
    """Executes shard commands against one engine (shared by all backends)."""

    def __init__(
        self,
        query_text: str,
        engine_kwargs: Dict[str, Any],
        shard_index: int,
        shard_count: int,
        shard_key: Optional[str] = None,
        engine: Optional[HierarchicalEngine] = None,
    ) -> None:
        # recovery hands over an already-rebuilt engine; the normal path
        # constructs a fresh one from the facade's kwargs
        self.engine = engine or HierarchicalEngine(query_text, **engine_kwargs)
        self.router = ShardRouter(self.engine.query, shard_count, shard_key)
        self.shard_index = shard_index
        # Shard-local snapshot registry: handles cannot cross a process
        # pipe, so the facade holds integer ids and reads through the
        # snap_* commands below.  Entries are ``[snapshot, sorted_result]``
        # — snapshots are immutable, so the canonical enumeration is
        # computed once and replayed on every later read of the same id.
        self._snapshots: Dict[int, List[Any]] = {}
        self._snapshot_seq = 0

    def handle(self, command: str, payload: Any) -> Any:
        if command == "update":
            relation, tup, mult = payload
            self.engine.update(relation, tuple(tup), mult)
            return None
        if command == "validate":
            # dry-run over-delete check: the first phase of the sharded
            # engine's two-phase (validate, then apply) batch ingestion.
            # The payload is an UpdateBatch — in-process executors hand it
            # over as-is, the process executor pickles it across the pipe.
            # (Relation membership needs no re-check here: routing already
            # rejected updates to relations outside the query.)
            self.engine._require_dynamic()
            payload.validate_against(self.engine.database)
            return None
        if command == "batch":
            batch, validated = payload
            self.engine._require_dynamic()
            self.engine._driver.on_batch(batch, validated=validated)
            # Mirror HierarchicalEngine.apply_batch's commit hook: this
            # path bypasses the facade (pre-validated two-phase ingest),
            # so a durable shard must log the sub-batch itself or lose it
            # on the next crash.
            if self.engine._durability is not None:
                self.engine._durability.commit_batch(batch, self.engine.version)
            return None
        if command == "enumerate":
            return sort_shard_result(self.engine.enumerate())
        if command == "export":
            # Reshard cut: the shard's full base data as a picklable
            # payload.  The caller stops routing writes to this fleet
            # before exporting, so the payload is a consistent cut.
            return database_to_payload(self.engine.database)
        if command == "snapshot":
            self._snapshot_seq += 1
            self._snapshots[self._snapshot_seq] = [self.engine.snapshot(), None]
            return (self._snapshot_seq, self.engine.version)
        if command == "snap_enumerate":
            entry = self._snapshot(payload)
            if entry[1] is None:
                entry[1] = sort_shard_result(entry[0].enumerate())
            return entry[1]
        if command == "snap_lookup":
            snapshot_id, tup = payload
            return self._snapshot(snapshot_id)[0].lookup(tuple(tup))
        if command == "snap_release":
            entry = self._snapshots.pop(payload, None)
            if entry is not None:
                entry[0].close()
            return None
        if command == "retune":
            # the facade's live ε switch: every shard re-anchors its own
            # threshold base and strictly rematerializes, exactly like a
            # shard-local HierarchicalEngine.retune
            self.engine.retune(payload)
            return None
        if command == "set_delta_capture":
            self.engine.set_delta_capture(bool(payload))
            return None
        if command == "drain_delta":
            # per-shard net result delta since the last drain; the facade
            # sums the shard dicts (shard results are disjoint up to
            # shard-key collisions, which summing handles like the k-way
            # merge does)
            return list(self.engine.drain_result_delta().items())
        if command == "register_aggregate":
            # Install the maintained state for one spec on this shard; the
            # facade re-broadcasts its registry on load/recover/reshard so
            # rebuilt workers maintain the same aggregates.
            self.engine.register_aggregate(AggregateSpec.from_wire(payload))
            return None
        if command == "aggregate":
            # One shard's partial aggregate in wire form: supports and ring
            # elements, NOT answers — partials from different shards must
            # still combine at the facade (min of mins is lawful, but only
            # the ring knows that; answers in general do not compose).
            spec_wire, maintained = payload
            spec = AggregateSpec.from_wire(spec_wire)
            ring = spec.ring
            elements = self.engine.aggregate_elements(spec, maintained=maintained)
            return [
                [list(group), support, ring.to_wire(element)]
                for group, (support, element) in elements.items()
            ]
        if command == "version":
            return self.engine.version
        if command == "check":
            self.engine.check_invariants()
            self.router.check_placement(self.engine.database, self.shard_index)
            return None
        if command == "stats":
            stats = self.engine.rebalance_stats
            return stats.as_dict() if stats is not None else None
        if command == "view_size":
            return self.engine.view_size()
        if command == "size":
            return self.engine.database.size
        if command == "threshold":
            return self.engine.threshold
        raise ValueError(f"unknown shard command {command!r}")

    def _snapshot(self, snapshot_id: int):
        try:
            return self._snapshots[snapshot_id]
        except KeyError as exc:
            raise repro_exceptions.StaleStateError(
                f"shard {self.shard_index} holds no snapshot {snapshot_id} "
                "(released, or the engine was re-loaded)"
            ) from exc


def _load_server(
    query_text: str,
    engine_kwargs: Dict[str, Any],
    shard_index: int,
    shard_count: int,
    shard_key: Optional[str],
    database: Optional[Database],
    durability: Optional[DurabilityConfig] = None,
) -> _ShardServer:
    """Build one shard server — fresh from ``database``, or recovered.

    ``database=None`` is recovery mode: the shard engine is rebuilt from
    its own per-shard durability directory (checkpoint + WAL tail) and
    resumes committing there.  A fresh load with durability starts a new
    durable history in that directory instead.
    """
    shard_config = (
        durability.for_shard(shard_index) if durability is not None else None
    )
    if database is None:
        if shard_config is None:
            raise repro_exceptions.DurabilityError(
                f"shard {shard_index} cannot recover without a durability "
                "directory"
            )
        from repro.durability.recovery import recover_engine

        engine, _report = recover_engine(shard_config.directory, shard_config)
        return _ShardServer(
            query_text,
            engine_kwargs,
            shard_index,
            shard_count,
            shard_key,
            engine=engine,
        )
    kwargs = dict(engine_kwargs)
    if shard_config is not None:
        kwargs["durability"] = shard_config
    server = _ShardServer(
        query_text, kwargs, shard_index, shard_count, shard_key
    )
    server.engine.load(database)
    return server


def _worker_main(
    connection,
    query_text: str,
    engine_kwargs: Dict[str, Any],
    shard_index: int,
    shard_count: int,
    shard_key: Optional[str],
    payload: Optional[DatabasePayload],
    durability: Optional[DurabilityConfig] = None,
) -> None:
    """Entry point of one shard worker process: a command loop over a pipe.

    ``payload=None`` starts the worker in recovery mode (see
    :func:`_load_server`).  A :class:`SimulatedCrashError` escaping a
    command kills the process for real (``os._exit``) — fault-injection
    tests arm ``REPRO_CRASH_POINT`` and get a genuine worker death at an
    exact durability site, ack unsent, pipe broken.
    """
    # Re-arm fault injection from the environment here rather than relying
    # on the import-time hook: forked workers inherit the parent's already-
    # imported modules, where the env var was not yet set.
    env_injector = _injector_from_env()
    if env_injector is not None:
        install_injector(env_injector)
    try:
        server = _load_server(
            query_text,
            engine_kwargs,
            shard_index,
            shard_count,
            shard_key,
            None if payload is None else database_from_payload(payload),
            durability,
        )
        connection.send(("ok", None))
    except Exception as exc:  # noqa: BLE001 - shipped to the coordinator
        connection.send(("error", type(exc).__name__, str(exc)))
        connection.close()
        return
    while True:
        try:
            command, command_payload = connection.recv()
        except EOFError:
            break
        if command == "close":
            connection.send(("ok", None))
            break
        try:
            connection.send(("ok", server.handle(command, command_payload)))
        except SimulatedCrashError:  # pragma: no cover - dies in the child
            os._exit(1)
        except Exception as exc:  # noqa: BLE001 - shipped to the coordinator
            connection.send(("error", type(exc).__name__, str(exc)))
    connection.close()


def _raise_remote(name: str, message: str) -> None:
    """Re-raise a worker-side failure as its original exception type."""
    exc_type = getattr(repro_exceptions, name, None) or getattr(
        builtins, name, None
    )
    if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
        exc_type = repro_exceptions.ReproError
        message = f"{name}: {message}"
    raise exc_type(message)


class ShardExecutor:
    """Common interface: run one command on one shard or on many shards."""

    shard_count: int = 0

    def start(
        self,
        query_text: str,
        engine_kwargs: Dict[str, Any],
        databases: Sequence[Optional[Database]],
        shard_key: Optional[str] = None,
        durability: Optional[DurabilityConfig] = None,
    ) -> None:
        raise NotImplementedError

    def call(self, shard_index: int, command: str, payload: Any = None) -> Any:
        raise NotImplementedError

    def restart_shard(self, shard_index: int) -> None:
        """Replace one shard's worker with a fresh one recovered from disk.

        Only meaningful when the executor was started with a durability
        config — the replacement worker rebuilds its engine from the
        shard's checkpoint + WAL instead of a database payload.  Other
        shards are untouched and keep serving throughout.
        """
        raise NotImplementedError

    def dead_shards(self) -> List[int]:
        """Shards whose workers are known dead (always live in-process)."""
        return []

    def map(
        self, commands: Dict[int, Tuple[str, Any]]
    ) -> Dict[int, Any]:
        """Run ``{shard: (command, payload)}``, one command per shard."""
        raise NotImplementedError

    def broadcast(self, command: str, payload: Any = None) -> List[Any]:
        """Run the same command on every shard; results in shard order."""
        results = self.map(
            {index: (command, payload) for index in range(self.shard_count)}
        )
        return [results[index] for index in range(self.shard_count)]

    def close(self) -> None:
        raise NotImplementedError

    def stats(self) -> List[Optional[RebalanceStats]]:
        return [
            None if raw is None else RebalanceStats.from_dict(raw)
            for raw in self.broadcast("stats")
        ]


class SerialExecutor(ShardExecutor):
    """In-process shard engines, commands executed in a plain loop."""

    name = "serial"

    def start(
        self, query_text, engine_kwargs, databases, shard_key=None, durability=None
    ) -> None:
        self.shard_count = len(databases)
        self._start_args = (query_text, dict(engine_kwargs), shard_key, durability)
        # in-process executors take the split databases as-is:
        # split_database already produced private copies, so no
        # payload round-trip is needed
        self._servers = [
            _load_server(
                query_text,
                engine_kwargs,
                index,
                self.shard_count,
                shard_key,
                database,
                durability,
            )
            for index, database in enumerate(databases)
        ]

    def restart_shard(self, shard_index: int) -> None:
        # in-process workers cannot die on their own; this path exists so
        # recovery-mode reload is testable without a process executor
        query_text, engine_kwargs, shard_key, durability = self._start_args
        self._servers[shard_index] = _load_server(
            query_text,
            engine_kwargs,
            shard_index,
            self.shard_count,
            shard_key,
            None,
            durability,
        )

    def call(self, shard_index, command, payload=None):
        return self._servers[shard_index].handle(command, payload)

    def map(self, commands):
        return {
            index: self.call(index, command, payload)
            for index, (command, payload) in commands.items()
        }

    def close(self) -> None:
        self._servers = []


class ThreadExecutor(SerialExecutor):
    """In-process shard engines dispatched through a thread pool."""

    name = "thread"

    def start(
        self, query_text, engine_kwargs, databases, shard_key=None, durability=None
    ) -> None:
        super().start(query_text, engine_kwargs, databases, shard_key, durability)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.shard_count),
            thread_name_prefix="repro-shard",
        )

    def map(self, commands):
        futures = {
            index: self._pool.submit(self.call, index, command, payload)
            for index, (command, payload) in commands.items()
        }
        return {index: future.result() for index, future in futures.items()}

    def close(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None
        super().close()


class ProcessExecutor(ShardExecutor):
    """One persistent worker process per shard, commands over pipes.

    Workers are forked (or spawned, per the platform's default start
    method) once at ``start`` with their shard's database payload, then
    serve commands until ``close``.  ``map`` sends every command before
    collecting any reply, so per-shard work genuinely overlaps.
    """

    name = "process"

    def start(
        self, query_text, engine_kwargs, databases, shard_key=None, durability=None
    ) -> None:
        self.shard_count = len(databases)
        self._context = multiprocessing.get_context()
        self._start_args = (query_text, dict(engine_kwargs), shard_key, durability)
        self._connections = []
        self._processes = []
        # One lock per pipe: concurrent reader sessions (snapshot reads) and
        # the writer would otherwise interleave send/recv pairs on the same
        # connection and desynchronize it.  ``map`` acquires locks in sorted
        # shard order, so overlapping multi-shard commands cannot deadlock.
        self._conn_locks = [threading.Lock() for _ in databases]
        for index, database in enumerate(databases):
            connection, process = self._spawn_worker(
                index, None if database is None else database_to_payload(database)
            )
            self._connections.append(connection)
            self._processes.append(process)
        for connection in self._connections:
            self._receive(connection)

    def _spawn_worker(self, index: int, payload: Optional[DatabasePayload]):
        """Fork one shard worker (``payload=None`` → recovery mode)."""
        query_text, engine_kwargs, shard_key, durability = self._start_args
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_end,
                query_text,
                dict(engine_kwargs),
                index,
                self.shard_count,
                shard_key,
                payload,
                durability,
            ),
            daemon=True,
        )
        process.start()
        child_end.close()
        return parent_end, process

    def restart_shard(self, shard_index: int) -> None:
        process = self._processes[shard_index]
        if process.is_alive():  # pragma: no cover - defensive: forced restart
            process.terminate()
        process.join(timeout=5)
        try:
            self._connections[shard_index].close()
        except OSError:  # pragma: no cover - already torn down
            pass
        with self._conn_locks[shard_index]:
            connection, process = self._spawn_worker(shard_index, None)
            self._connections[shard_index] = connection
            self._processes[shard_index] = process
            self._receive(connection)

    def dead_shards(self) -> List[int]:
        return [
            index
            for index, process in enumerate(self._processes)
            if not process.is_alive()
        ]

    def _receive(self, connection) -> Any:
        reply = connection.recv()
        if reply[0] == "error":
            _raise_remote(reply[1], reply[2])
        return reply[1]

    def call(self, shard_index, command, payload=None):
        with self._conn_locks[shard_index]:
            connection = self._connections[shard_index]
            try:
                connection.send((command, payload))
                reply = connection.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise WorkerDiedError([shard_index]) from exc
        if reply[0] == "error":
            _raise_remote(reply[1], reply[2])
        return reply[1]

    def map(self, commands):
        ordered = sorted(commands)
        held = set()
        results: Dict[int, Any] = {}
        first_error: Optional[Tuple[str, str]] = None
        dead: List[int] = []
        # Every acquired lock is released exactly once even when a pipe
        # dies mid-round (BrokenPipeError on send, EOFError on recv): a
        # leaked lock would deadlock every later command on that shard
        # instead of surfacing the worker failure.
        try:
            for index in ordered:
                command, payload = commands[index]
                self._conn_locks[index].acquire()
                held.add(index)
                try:
                    self._connections[index].send((command, payload))
                except (BrokenPipeError, OSError):
                    dead.append(index)
            # Drain every reply before raising: leaving a queued reply
            # behind would desynchronize that shard's pipe and corrupt
            # every later command on it.  A dead pipe mid-drain must not
            # abort the round either — the remaining shards' replies are
            # still queued, and skipping them would desynchronize every
            # *surviving* pipe.  Worker deaths collect into one
            # WorkerDiedError so a supervisor can restart exactly the
            # affected shards; a worker-side error is re-raised only when
            # every worker survived.
            for index in ordered:
                if index in dead:
                    self._conn_locks[index].release()
                    held.discard(index)
                    continue
                reply = None
                try:
                    reply = self._connections[index].recv()
                except (EOFError, OSError):
                    dead.append(index)
                finally:
                    self._conn_locks[index].release()
                    held.discard(index)
                if reply is None:
                    continue
                if reply[0] == "error":
                    if first_error is None:
                        first_error = (reply[1], reply[2])
                else:
                    results[index] = reply[1]
        finally:
            for index in held:
                self._conn_locks[index].release()
        if dead:
            raise WorkerDiedError(dead)
        if first_error is not None:
            _raise_remote(*first_error)
        return results

    def close(self) -> None:
        for connection in getattr(self, "_connections", []):
            try:
                connection.send(("close", None))
                connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            connection.close()
        for process in getattr(self, "_processes", []):
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
        self._connections = []
        self._processes = []


EXECUTORS: Dict[str, Callable[[], ShardExecutor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}
