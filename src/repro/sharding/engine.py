"""The sharded maintenance engine: hash-partitioned IVM^ε.

:class:`ShardedEngine` mirrors the :class:`~repro.core.api.HierarchicalEngine`
facade over a fleet of per-shard engines:

* **routing** — base relations are hash-partitioned on the planner-chosen
  shard key (a variable occurring in every atom, see
  :func:`repro.core.planner.choose_shard_key`), so joins, delta propagation,
  and minor/major rebalancing are shard-local by construction;
* **updates** — ``apply_update`` routes one update to its shard;
  ``apply_batch`` splits a batch (or folds a raw stream) into per-shard
  sub-batches and dispatches them through the executor in one round;
* **enumeration** — every shard enumerates its result in the canonical
  order and :func:`repro.enumeration.union.merge_shards` performs an
  order-preserving k-way merge, summing multiplicities of tuples produced
  by several shards (possible only when the shard key is bound);
* **invariants** — ``check_invariants`` runs every shard's deep probe plus
  the cross-shard placement check (every stored tuple hashes to the shard
  holding it);
* **snapshots** — ``snapshot`` captures every shard at a consistent
  version in one executor round and answers reads through the same k-way
  merge, so maintenance keeps flowing while readers enumerate an immutable
  :class:`ShardedSnapshot` (see :mod:`repro.snapshot`);
* **resharding** — ``reshard(new_count)`` changes the shard count online:
  a snapshot-consistent cut is exported, re-routed into a fresh fleet at
  the new count, the tail of updates committed since the cut is replayed,
  and the fleet swaps atomically — live snapshots stay pinned on the old
  fleet, and durable deployments write a barrier record so ``recover()``
  comes back at the new count (see ``docs/architecture.md`` §14).

Why shard at all?  Each shard plans against its own (four-times-smaller, at
four shards) database, so its heavy/light threshold ``M_shard^ε`` drops:
join keys whose degree sits between the per-shard and the global threshold
flip from the light regime (every update pays ``O(degree)`` propagation
into materialized join views) to the heavy regime (updates cost ``O(1)``;
the work is deferred to enumeration).  On skewed update traffic this is a
superlinear win per shard *before* any parallelism — and the process
executor adds real parallelism on multi-core hosts.  The flip side: more
heavy keys means more enumeration-time work and the merge gives up the
single engine's native enumeration order for the canonical one; see
``docs/architecture.md`` §9 for when shard count > 1 loses.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.adaptive.telemetry import WorkloadTelemetry
from repro.core.planner import QueryPlan, coerce_query, plan_query
from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateBatch, validate_batch_size
from repro.durability.crashpoints import SimulatedCrashError, crash_point
from repro.durability.manager import (
    FLEET_META_NAME,
    DurabilityConfig,
    coerce_config,
    read_fleet_meta,
    write_fleet_meta,
)
from repro.enumeration.union import merge_shard_aggregates, merge_shards
from repro.exceptions import (
    DurabilityError,
    ReproError,
    StaleStateError,
    UnsupportedQueryError,
)
from repro.ivm.rebalance import RebalanceStats
from repro.rings.base import Ring
from repro.rings.spec import AggregateSpec, answer_map, fold_result
from repro.sharding.executor import EXECUTORS, ShardExecutor
from repro.sharding.router import ShardRouter
from repro.views.build import DYNAMIC_MODE

# Below this database size the automatic executor stays in-process: the
# per-update pipe/pickle overhead of worker processes only amortizes once
# shards hold enough data for maintenance work to dominate dispatch.
SMALL_N_THRESHOLD = 50_000


class ShardMergeEnumerator:
    """Iterable over the merged shard enumerations (mirrors ResultEnumerator)."""

    def __init__(self, engine: "ShardedEngine") -> None:
        self._engine = engine
        self._generation = engine._generation

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        self._engine._check_generation(self._generation)
        # Facade-level read telemetry: the clock covers the per-shard
        # enumeration broadcast AND the k-way merge, partial (page) reads
        # included.  Like ResultEnumerator, the shard work is deferred to
        # the first next() of the generator.
        telemetry = self._engine.telemetry
        if telemetry is None:
            return self._merged()
        return telemetry.recorded_read(self._merged())

    def _merged(self) -> Iterator[Tuple[ValueTuple, int]]:
        yield from merge_shards(self._engine._sorted_shard_results())

    def to_dict(self) -> Dict[ValueTuple, int]:
        """Materialize the merged enumeration into ``{tuple: multiplicity}``."""
        return {tup: mult for tup, mult in self}

    def count_distinct(self) -> int:
        """Number of distinct result tuples across all shards."""
        return sum(1 for _ in self)


class _FleetHandle:
    """One shard fleet (executor + router) with pin-based retirement.

    Mirrors the serving layer's ``_PublishedVersion`` close-once idiom: a
    reshard retires the old fleet, but :class:`ShardedSnapshot`\\ s captured
    before the swap hold pins and keep reading their per-shard
    copy-on-write captures through the old executor; the executor shuts
    down when the last pin drains.  ``load()``/``close()`` force-close
    regardless of pins — snapshots from a replaced *load* already raise
    :class:`StaleStateError` by generation, exactly as before resharding
    existed.
    """

    __slots__ = (
        "executor",
        "router",
        "executor_name",
        "epoch",
        "_lock",
        "_pins",
        "_retired",
        "_closed",
    )

    def __init__(
        self,
        executor: ShardExecutor,
        router: ShardRouter,
        executor_name: str,
        epoch: int,
    ) -> None:
        self.executor = executor
        self.router = router
        self.executor_name = executor_name
        self.epoch = epoch
        self._lock = threading.Lock()
        self._pins = 0
        self._retired = False
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def pin(self) -> None:
        with self._lock:
            self._pins += 1

    def unpin(self) -> None:
        with self._lock:
            self._pins -= 1
            should_close = self._retired and self._pins <= 0 and not self._closed
            if should_close:
                self._closed = True
        if should_close:
            self.executor.close()

    def retire(self) -> None:
        """No new pins will arrive; close as soon as the held ones drain."""
        with self._lock:
            self._retired = True
            should_close = self._pins <= 0 and not self._closed
            if should_close:
                self._closed = True
        if should_close:
            self.executor.close()

    def force_close(self) -> None:
        """Close now, pins or not (load()/close() semantics)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.executor.close()


class _ReshardPlan:
    """In-flight state of one reshard, threaded through the three phases.

    Created by :meth:`ShardedEngine.begin_reshard` (the cut), filled in
    by :meth:`ShardedEngine.build_reshard` (the new fleet), consumed by
    :meth:`ShardedEngine.finish_reshard` (tail replay + barrier + swap).
    """

    __slots__ = ("new_count", "cut_version", "cut_epsilon", "payloads", "router", "fleet", "epoch")

    def __init__(
        self, new_count: int, cut_version: int, cut_epsilon: float, payloads: List[Any]
    ) -> None:
        self.new_count = new_count
        self.cut_version = cut_version
        self.cut_epsilon = cut_epsilon
        self.payloads = payloads
        self.router: Optional[ShardRouter] = None
        self.fleet: Optional[_FleetHandle] = None
        self.epoch = 0


class ShardedSnapshot:
    """An immutable handle onto one version of a sharded deployment.

    Capture takes one shard-local :class:`repro.snapshot.Snapshot` per shard
    in a single executor round (cheap: no view content is copied); reads
    fetch each shard snapshot's canonical enumeration and run them through
    the same order-preserving k-way merge as live sharded enumeration, so
    the sequence is exactly what ``engine.enumerate()`` produced at the
    captured version.  ``version`` counts the facade's ingestion events
    (one per ``apply`` / ``apply_batch`` / ``apply_stream`` chunk), and
    ``shard_versions`` records each shard's own event counter at capture.
    """

    def __init__(
        self,
        engine: "ShardedEngine",
        fleet: _FleetHandle,
        snapshot_ids: Dict[int, int],
        shard_versions: Tuple[int, ...],
        version: int,
    ) -> None:
        self._engine = engine
        self._generation = engine._generation
        # Pin the fleet the capture was taken on: a later reshard retires
        # the fleet but cannot close it while this snapshot reads through
        # it — the executor shuts down when the last pre-reshard snapshot
        # closes (the COW/pin retirement contract).
        self._fleet = fleet
        fleet.pin()
        self._snapshot_ids = dict(snapshot_ids)
        self.shard_versions = shard_versions
        self.version = version
        self._closed = False

    # ------------------------------------------------------------------
    def _executor(self) -> ShardExecutor:
        if self._closed:
            raise StaleStateError("this sharded snapshot has been closed")
        self._engine._check_generation(self._generation)
        if self._fleet.closed:
            raise StaleStateError(
                "the shard fleet this snapshot was captured on has shut down"
            )
        return self._fleet.executor

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:
        """Merged canonical enumeration of the captured per-shard results."""
        executor = self._executor()
        results = executor.map(
            {
                shard: ("snap_enumerate", snapshot_id)
                for shard, snapshot_id in self._snapshot_ids.items()
            }
        )
        return merge_shards([results[shard] for shard in sorted(results)])

    def result(self) -> Dict[ValueTuple, int]:
        """Materialize the captured result as ``{tuple: multiplicity}``."""
        return {tup: mult for tup, mult in self.enumerate()}

    def count_distinct(self) -> int:
        """Number of distinct result tuples in the captured version."""
        return sum(1 for _ in self.enumerate())

    def aggregate(self, ring, value=None, group_by=None) -> Dict[ValueTuple, Any]:
        """Aggregate the captured merged result as ``{group: answer}``.

        Folds over this snapshot's own merged enumeration (the same
        fold as :meth:`HierarchicalEngine.aggregate` with
        ``maintained=False``), so the answer is frozen at the captured
        version regardless of how far the live fleet has moved on.
        """
        spec = (
            ring
            if isinstance(ring, AggregateSpec)
            else AggregateSpec(ring, value, group_by)
        )
        head = tuple(self._engine.query.head)
        return answer_map(spec, fold_result(spec, head, self.enumerate()))

    def lookup(self, tup: ValueTuple) -> int:
        """Multiplicity of one full result tuple (summed across shards)."""
        executor = self._executor()
        tup = tuple(tup)
        results = executor.map(
            {
                shard: ("snap_lookup", (snapshot_id, tup))
                for shard, snapshot_id in self._snapshot_ids.items()
            }
        )
        return sum(results.values())

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        return self.enumerate()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the per-shard snapshots (idempotent; survives re-loads)."""
        if self._closed:
            return
        self._closed = True
        fleet = self._fleet
        try:
            if self._engine._generation == self._generation and not fleet.closed:
                fleet.executor.map(
                    {
                        shard: ("snap_release", snapshot_id)
                        for shard, snapshot_id in self._snapshot_ids.items()
                    }
                )
        finally:
            # Always drop the pin — when this was the last pre-reshard
            # snapshot on a retired fleet, the old executor closes here.
            fleet.unpin()

    def __enter__(self) -> "ShardedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedEngine:
    """Hash-partitioned evaluation of one hierarchical query over k shards."""

    def __init__(
        self,
        query,
        shards: int = 4,
        epsilon: float = 0.5,
        mode: str = DYNAMIC_MODE,
        enable_rebalancing: bool = True,
        executor: str = "auto",
        shard_key: Optional[str] = None,
        telemetry: Union[WorkloadTelemetry, bool, None] = None,
        durability: Union[DurabilityConfig, str, Path, None] = None,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shard count must be positive, got {shards}")
        if not 0.0 <= epsilon <= 1.0:
            # fail here like the single-engine facade, not later inside a
            # worker process
            raise ValueError("epsilon must lie in [0, 1]")
        if executor not in ("auto", *EXECUTORS):
            raise ValueError(
                f"unknown executor {executor!r}; choose one of "
                f"{('auto', *EXECUTORS)}"
            )
        self.plan: QueryPlan = plan_query(coerce_query(query), mode)
        self.query = self.plan.query
        self.shards = shards
        self.epsilon = epsilon
        self.mode = mode
        self.enable_rebalancing = enable_rebalancing
        self.executor_choice = executor
        # Facade-level workload telemetry: ingestion and merged-enumeration
        # events are recorded here (per-shard engines keep their own), so
        # an AdaptiveController can drive the whole deployment.  Pass
        # ``telemetry=False`` to opt out, as on HierarchicalEngine.
        if telemetry is False:
            self.telemetry: Optional[WorkloadTelemetry] = None
        elif telemetry is None or telemetry is True:
            self.telemetry = WorkloadTelemetry()
        else:
            self.telemetry = telemetry
        if durability is not None and mode != DYNAMIC_MODE:
            raise DurabilityError(
                "durability requires the dynamic engine (the WAL is keyed "
                f"by the maintenance version); mode is {mode!r}"
            )
        # Per-shard durability: shard i logs and checkpoints under
        # ``<directory>/shard-<i>`` (see DurabilityConfig.for_shard), so a
        # dead worker's state survives the process and ShardSupervisor can
        # restart-and-recover exactly that shard.
        self.durability: Optional[DurabilityConfig] = (
            None if durability is None else coerce_config(durability)
        )
        # the shard-aware planner gate: raises for unshardable queries
        self.router = ShardRouter(self.query, shards, shard_key)
        self.shard_key = self.router.shard_key
        # The caller's shard-key choice (None = planner-chosen), kept so a
        # reshard builds its new router from the same constraint.
        self._shard_key_choice = shard_key
        self._executor: Optional[ShardExecutor] = None
        # The current fleet handle (executor + router + retirement pins)
        # and the fleet epoch: 0 at load, +1 per completed reshard.  The
        # epoch keys the durability directory layout (see
        # DurabilityConfig.for_epoch) so a mid-reshard crash recovers at
        # exactly the old or the new fleet, never a hybrid.
        self._fleet: Optional[_FleetHandle] = None
        self._epoch = 0
        # While a reshard is in flight (between begin_reshard and
        # finish_reshard) every mutating call is buffered here, after it
        # applied to the current fleet, for tail replay onto the new one.
        self._reshard_tail: Optional[List[Tuple[str, Any]]] = None
        # Fleets retired by reshard but still pinned by live snapshots;
        # close() force-closes them so worker processes never outlive the
        # deployment.
        self._retired_fleets: List[_FleetHandle] = []
        # Bumped by every load(); snapshots and enumerators created against
        # an earlier load raise StaleStateError instead of silently reading
        # the replaced deployment.
        self._generation = 0
        # Facade-level ingestion counter: one tick per apply / apply_batch
        # (and per apply_stream chunk), mirroring the single engine's
        # MaintenanceDriver.version.
        self._version = 0
        # Result-delta capture flag, re-broadcast to the shards on every
        # load()/recover() so a serving layer that enabled it keeps
        # receiving per-commit deltas across reloads.
        self._capture_deltas = False
        # Registered aggregate specs, keyed by AggregateSpec.key().  Like
        # the capture flag, the registry lives on the facade and is
        # re-broadcast whenever a fleet is (re)built — load, recover, and
        # reshard — so every worker maintains the same aggregate states.
        self._agg_specs: Dict[Tuple, AggregateSpec] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _resolve_executor(self, database_size: int) -> str:
        if self.executor_choice != "auto":
            return self.executor_choice
        cores = os.cpu_count() or 1
        if (
            self.shards > 1
            and cores > 1
            and database_size >= SMALL_N_THRESHOLD
        ):
            return "process"
        # threaded fallback for small N (and single-core hosts): same
        # concurrent dispatch path, none of the pipe/pickle overhead
        return "thread" if self.shards > 1 else "serial"

    def load(self, database: Database) -> "ShardedEngine":
        """Split ``database`` across the shards and preprocess each shard.

        Splitting always copies, so the caller's relations are never shared
        with (or mutated by) the shard engines.
        """
        if self._executor is not None:
            self.close()
        self._generation += 1
        self._version = 0
        self._epoch = 0
        self._reshard_tail = None
        if self.durability is not None:
            self._wipe_fleet_history()
        shard_databases = self.router.split_database(database)
        self.executor_name = self._resolve_executor(database.size)
        self._executor = EXECUTORS[self.executor_name]()
        self._executor.start(
            str(self.query),
            {
                "epsilon": self.epsilon,
                "mode": self.mode,
                "enable_rebalancing": self.enable_rebalancing,
                "copy_database": False,
            },
            shard_databases,
            self.router.shard_key,
            self.durability,
        )
        self._fleet = _FleetHandle(
            self._executor, self.router, self.executor_name, 0
        )
        if self._capture_deltas:
            self._executor.broadcast("set_delta_capture", True)
        self._broadcast_aggregates(self._executor)
        return self

    def recover(self) -> "ShardedEngine":
        """Restart every shard from its own durability directory.

        The deployment must have been constructed with the same query and
        ``durability`` directory as the one that wrote the shards' WALs
        and checkpoints.  When a fleet barrier record exists (written by
        :meth:`finish_reshard`), recovery comes back at the *recorded*
        shard count and epoch — the constructed count is only the
        fallback for never-resharded deployments — so a reshard survives
        the crash of every process that knew about it.  Each worker
        recovers independently (newest valid checkpoint + WAL-tail
        replay, see :func:`repro.durability.recovery.recover_engine`);
        the facade's ingestion counter resumes at the barrier version
        plus the maximum per-shard progress since the barrier — an exact
        count when all shards die together (every facade event ticks
        every involved shard at most once), and a lower bound otherwise.
        """
        if self.durability is None:
            raise DurabilityError(
                "this deployment has no durability directory to recover from"
            )
        if self._executor is not None:
            self.close()
        self._generation += 1
        self._reshard_tail = None
        meta = read_fleet_meta(self.durability.directory)
        baselines: Optional[List[int]] = None
        meta_version = 0
        if meta is None:
            self._epoch = 0
        else:
            count = int(meta["shards"])
            self._epoch = int(meta.get("epoch", 0))
            meta_version = int(meta.get("version", 0))
            if count != self.shards:
                self.router = ShardRouter(self.query, count, self._shard_key_choice)
                self.shards = count
                self.shard_key = self.router.shard_key
            raw = meta.get("shard_versions")
            if isinstance(raw, list) and len(raw) == count:
                baselines = [int(value) for value in raw]
        self.executor_name = (
            self._resolve_executor(SMALL_N_THRESHOLD)
            if self.executor_choice == "auto"
            else self.executor_choice
        )
        self._executor = EXECUTORS[self.executor_name]()
        self._executor.start(
            str(self.query),
            {
                "epsilon": self.epsilon,
                "mode": self.mode,
                "enable_rebalancing": self.enable_rebalancing,
                "copy_database": False,
            },
            [None] * self.shards,
            self.router.shard_key,
            self.durability.for_epoch(self._epoch),
        )
        self._fleet = _FleetHandle(
            self._executor, self.router, self.executor_name, self._epoch
        )
        if self._capture_deltas:
            self._executor.broadcast("set_delta_capture", True)
        self._broadcast_aggregates(self._executor)
        shard_versions = self.shard_versions()
        if meta is None:
            self._version = max(shard_versions)
        elif baselines is not None:
            progress = max(
                (version - base for version, base in zip(shard_versions, baselines)),
                default=0,
            )
            self._version = meta_version + max(0, progress)
        else:
            self._version = max(meta_version, max(shard_versions))
        return self

    def close(self) -> None:
        """Shut down the executor (terminates worker processes, if any).

        Force-closes the current fleet regardless of snapshot pins (their
        handles raise :class:`StaleStateError` afterwards), closes any
        fleets retired by reshard but still pinned, and drops an
        in-flight reshard tail.
        """
        if self._fleet is not None:
            self._fleet.force_close()
            self._fleet = None
        elif self._executor is not None:
            self._executor.close()
        self._executor = None
        for fleet in self._retired_fleets:
            fleet.force_close()
        self._retired_fleets = []
        self._reshard_tail = None

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def _require_loaded(self) -> ShardExecutor:
        if self._executor is None:
            raise ReproError("the engine has no database; call load() first")
        return self._executor

    def _check_generation(self, generation: int) -> None:
        if self._generation != generation:
            raise StaleStateError(
                "the sharded deployment was replaced by load() after this "
                "snapshot/enumerator was created; capture a new one"
            )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        """Apply a single-tuple update ``δR = {tup → multiplicity}``."""
        self.apply(Update(relation, tuple(tup), multiplicity))

    def insert(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        """Insert ``multiplicity`` copies of ``tup`` into ``relation``."""
        self.update(relation, tup, abs(multiplicity))

    def delete(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        """Delete ``multiplicity`` copies of ``tup`` from ``relation``."""
        self.update(relation, tup, -abs(multiplicity))

    def apply(self, update: Update) -> None:
        """Route one update to its shard and apply it there."""
        executor = self._require_loaded()
        started = time.perf_counter() if self.telemetry is not None else 0.0
        executor.call(
            self.router.shard_of_update(update),
            "update",
            (update.relation, update.tuple, update.multiplicity),
        )
        if self._reshard_tail is not None:
            self._reshard_tail.append(("update", update))
        self._version += 1
        if self.telemetry is not None:
            self.telemetry.record_update(1, time.perf_counter() - started)

    apply_update = apply

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[Update]]) -> None:
        """Split a batch by shard and ingest every sub-batch in one round.

        Raw iterables and streams are routed *before* consolidation so each
        shard's ``source_count`` accounting is exact (a shard whose updates
        all cancel still receives its empty-net batch, mirroring the
        unsharded driver's bookkeeping).  An already-consolidated
        :class:`UpdateBatch` splits by net entry; if its net effect is
        empty, no shard receives any work at all.

        Ingestion is all-or-nothing across shards, like the single engine's
        batch path: when a batch spans several shards, a validation round
        (dry-run over-delete checks on every involved shard) runs before
        any shard applies anything, so a rejected sub-batch raises with no
        shard modified.
        """
        executor = self._require_loaded()
        started = time.perf_counter() if self.telemetry is not None else 0.0
        if isinstance(updates, UpdateBatch):
            sub_batches = self.router.split_batch(updates)
            tail_event: Tuple[str, Any] = ("batch", updates)
        else:
            if self._reshard_tail is not None:
                # Materialize the iterable: it must be routed twice (now,
                # and again through the new router at tail replay).
                updates = list(updates)
            sub_batches = self.router.split_updates(updates)
            tail_event = ("updates", updates)
        source_count = sum(batch.source_count for batch in sub_batches.values())
        if not sub_batches:
            if self._reshard_tail is not None:
                self._reshard_tail.append(tail_event)
            self._version += 1
            if self.telemetry is not None:
                self.telemetry.record_update(0, time.perf_counter() - started)
            return
        pre_validated = len(sub_batches) > 1
        if pre_validated:
            executor.map(
                {shard: ("validate", batch) for shard, batch in sub_batches.items()}
            )
        executor.map(
            {
                shard: ("batch", (batch, pre_validated))
                for shard, batch in sub_batches.items()
            }
        )
        if self._reshard_tail is not None:
            # Buffer only what the current fleet accepted: a rejected
            # over-delete raised above and must not replay either.
            self._reshard_tail.append(tail_event)
        self._version += 1
        if self.telemetry is not None:
            self.telemetry.record_update(
                source_count, time.perf_counter() - started
            )

    def apply_stream(
        self, updates: Iterable[Update], batch_size: Optional[int] = None
    ) -> None:
        """Apply a sequence of updates, optionally chunked into batches.

        Chunks are routed as *raw* update lists (consolidation happens per
        shard), so every shard's ``source_count`` accounting matches the
        unsharded driver exactly — unlike pre-consolidated batches, whose
        original update counts are no longer reconstructible.
        """
        if batch_size is not None:
            validate_batch_size(batch_size)
            chunk: List[Update] = []
            for update in updates:
                chunk.append(update)
                if len(chunk) >= batch_size:
                    self.apply_batch(chunk)
                    chunk = []
            if chunk:
                self.apply_batch(chunk)
            return
        for update in updates:
            self.apply(update)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def _sorted_shard_results(self) -> List[List[Tuple[ValueTuple, int]]]:
        return self._require_loaded().broadcast("enumerate")

    def enumerate(self) -> ShardMergeEnumerator:
        """Enumerate distinct result tuples in canonical order.

        The merged sequence contains exactly the single-engine result —
        same tuples, same multiplicities — ordered by
        :func:`repro.enumeration.union.canonical_sort_key` instead of the
        single engine's tree order.
        """
        self._require_loaded()
        return ShardMergeEnumerator(self)

    def result(self) -> Dict[ValueTuple, int]:
        """Materialize the full result as ``{tuple: multiplicity}``."""
        return self.enumerate().to_dict()

    def count_distinct(self) -> int:
        """Number of distinct result tuples."""
        return self.enumerate().count_distinct()

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        return iter(self.enumerate())

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Facade-level ingestion counter (ticks per apply / apply_batch)."""
        self._require_loaded()
        return self._version

    def shard_versions(self) -> Tuple[int, ...]:
        """Every shard's own ingestion-event counter, in shard order."""
        return tuple(self._require_loaded().broadcast("version"))

    def snapshot(self) -> ShardedSnapshot:
        """Capture every shard at a consistent version in one round.

        Each shard takes a local :meth:`HierarchicalEngine.snapshot` (no
        view content is copied) and the facade records the handle ids;
        reads merge the per-shard captures through the canonical k-way
        merge, so the snapshot enumerates exactly what live sharded
        enumeration produced at this version.  Like the single-engine
        capture, this must not race a mutating call —
        :class:`repro.core.serving.EngineServer` (or any external lock)
        serializes capture against the writer; reads need no lock at all.
        """
        executor = self._require_loaded()
        replies = executor.map(
            {shard: ("snapshot", None) for shard in range(executor.shard_count)}
        )
        snapshot_ids = {shard: replies[shard][0] for shard in replies}
        shard_versions = tuple(
            replies[shard][1] for shard in range(executor.shard_count)
        )
        assert self._fleet is not None  # _require_loaded() passed
        return ShardedSnapshot(
            self, self._fleet, snapshot_ids, shard_versions, self._version
        )

    # ------------------------------------------------------------------
    # result-delta capture (push-based serving)
    # ------------------------------------------------------------------
    def set_delta_capture(self, enabled: bool) -> None:
        """Start (or stop) per-commit result-delta capture on every shard.

        Mirrors :meth:`HierarchicalEngine.set_delta_capture`: each shard
        accumulates its shard-local first-order result deltas inside the
        normal maintenance pass, and :meth:`drain_result_delta` sums the
        shard dicts — joins are shard-local by construction, so the global
        result delta is exactly the sum of the per-shard ones.  Survives
        :meth:`load` and :meth:`recover`.
        """
        if enabled and self.mode != DYNAMIC_MODE:
            raise UnsupportedQueryError(
                "delta capture requires the dynamic engine; a static "
                "deployment has no update stream to capture deltas from"
            )
        self._capture_deltas = bool(enabled)
        if self._executor is not None:
            self._executor.broadcast("set_delta_capture", self._capture_deltas)

    def drain_result_delta(self) -> Dict[ValueTuple, int]:
        """Return and clear the fleet's net result delta since last drain."""
        executor = self._require_loaded()
        merged: Dict[ValueTuple, int] = {}
        for pairs in executor.broadcast("drain_delta"):
            for tup, mult in pairs:
                tup = tuple(tup)
                updated = merged.get(tup, 0) + mult
                if updated:
                    merged[tup] = updated
                else:
                    merged.pop(tup, None)
        return merged

    # ------------------------------------------------------------------
    # ring-annotated aggregates
    # ------------------------------------------------------------------
    def _broadcast_aggregates(self, executor: ShardExecutor) -> None:
        """Re-register every known aggregate spec on a (re)built fleet."""
        for spec in self._agg_specs.values():
            executor.broadcast("register_aggregate", spec.to_wire())

    def _coerce_spec(
        self, ring: Union[Ring, str, AggregateSpec], value, group_by
    ) -> AggregateSpec:
        if isinstance(ring, AggregateSpec):
            if value is not None or group_by is not None:
                raise ValueError(
                    "pass either an AggregateSpec or ring/value/group_by, "
                    "not both"
                )
            spec = ring
        else:
            spec = AggregateSpec(ring, value, group_by)
        # Fail the way the shard pipe would, but at the facade: callable
        # value selectors cannot cross a worker boundary.
        spec.to_wire()
        return spec

    def register_aggregate(self, spec: AggregateSpec) -> None:
        """Install the maintained state for ``spec`` on every shard.

        The registry survives :meth:`load`, :meth:`recover`, and
        :meth:`reshard` — the facade re-broadcasts its specs whenever a
        fleet is (re)built, exactly as the delta-capture flag is
        re-applied.  Dynamic mode only (mirrors
        :meth:`HierarchicalEngine.register_aggregate`).
        """
        if self.mode != DYNAMIC_MODE:
            raise UnsupportedQueryError(
                "maintained aggregates require the dynamic engine; a static "
                "deployment answers by enumerate-and-fold via aggregate()"
            )
        spec = self._coerce_spec(spec, None, None)
        self._agg_specs[spec.key()] = spec
        if self._executor is not None:
            self._executor.broadcast("register_aggregate", spec.to_wire())

    @property
    def registered_aggregates(self) -> Tuple[AggregateSpec, ...]:
        """Specs currently maintained by the fleet (registration order)."""
        return tuple(self._agg_specs.values())

    def aggregate_elements(
        self, spec: AggregateSpec, maintained: bool = True
    ) -> Dict[ValueTuple, Tuple[int, Any]]:
        """Merged raw ``{group: (support, element)}`` across all shards.

        One executor round collects every shard's partial aggregate in
        wire form (supports + un-finalized ring elements), then
        :func:`~repro.enumeration.union.merge_shard_aggregates` combines
        them — grouped aggregation is a ring homomorphism of the shard
        decomposition, so the merge is O(groups), never an enumeration.
        """
        executor = self._require_loaded()
        if maintained and self.mode == DYNAMIC_MODE:
            if spec.key() not in self._agg_specs:
                self.register_aggregate(spec)
        ring = spec.ring
        partials = []
        for rows in executor.broadcast(
            "aggregate", (spec.to_wire(), maintained)
        ):
            partials.append(
                [
                    (tuple(group), (support, ring.from_wire(element)))
                    for group, support, element in rows
                ]
            )
        return merge_shard_aggregates(partials, ring)

    def aggregate(
        self,
        ring: Union[Ring, str, AggregateSpec],
        value=None,
        group_by=None,
        *,
        maintained: bool = True,
    ) -> Dict[ValueTuple, Any]:
        """Answer one aggregate over the merged result as ``{group: answer}``.

        Same surface as :meth:`HierarchicalEngine.aggregate`; the answer
        equals the single-engine aggregate over the union of the shards.
        Partial aggregates cross the shard boundary as raw supports and
        ring elements and are finalized (``ring.answer``) only here at
        the facade edge, because answers do not compose across shards in
        general.  The read — shard broadcast plus merge — records into
        the facade's workload telemetry like a merged enumeration.
        """
        self._require_loaded()
        spec = self._coerce_spec(ring, value, group_by)
        started = time.perf_counter() if self.telemetry is not None else 0.0
        merged = self.aggregate_elements(spec, maintained=maintained)
        answers = answer_map(spec, merged)
        if self.telemetry is not None:
            self.telemetry.record_read(
                len(answers), time.perf_counter() - started
            )
        return answers

    # ------------------------------------------------------------------
    # adaptive retuning
    # ------------------------------------------------------------------
    def retune(self, epsilon: float) -> None:
        """Switch every shard to a new ε in one executor round.

        Each shard runs its own shard-local
        :meth:`~repro.core.api.HierarchicalEngine.retune` — re-anchored
        threshold base, strict repartition, view recompute — so the merged
        enumeration afterwards equals a fresh sharded deployment built at
        ``epsilon`` over the current data.  The facade version ticks once;
        open sharded snapshots keep serving their capture-time state
        through the shard-local copy-on-write trackers.
        """
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        executor = self._require_loaded()
        executor.broadcast("retune", epsilon)
        if self._reshard_tail is not None:
            self._reshard_tail.append(("retune", epsilon))
        self.epsilon = epsilon
        self._version += 1

    # ------------------------------------------------------------------
    # elastic resharding
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Fleet epoch: 0 at load, +1 per completed reshard.

        Keys the durability layout (``epoch-<n>/shard-<i>``, with epoch 0
        as the legacy root layout) so recovery can tell which fleet's
        history is authoritative.
        """
        return self._epoch

    def reshard(self, new_count: int) -> None:
        """Switch the deployment to ``new_count`` shards online.

        The synchronous form of the three-phase protocol — cut, build,
        swap — with no writer interleaved, so the tail is empty.  A
        serving layer that must keep committing during the (expensive)
        build phase calls the phases directly::

            plan = engine.begin_reshard(k)   # under the write lock
            engine.build_reshard(plan)       # lock released; writes flow
            engine.finish_reshard(plan)      # under the write lock

        Afterwards the merged enumeration, result, and invariants equal a
        fresh deployment at ``new_count`` over the same data (the
        conformance bar); the facade version ticks once, like
        :meth:`retune`.  Snapshots captured before the reshard keep
        reading their version through the retired fleet, which shuts
        down when the last of them closes.
        """
        plan = self.begin_reshard(new_count)
        try:
            self.build_reshard(plan)
        except SimulatedCrashError:
            raise  # a simulated process death runs no cleanup, like SIGKILL
        except BaseException:
            self.abort_reshard(plan)
            raise
        self.finish_reshard(plan)

    def begin_reshard(self, new_count: int) -> _ReshardPlan:
        """Phase 1/3: capture a snapshot-consistent cut of every shard.

        Brief — one export broadcast — and must not race a mutating call
        (the serving layer holds its write lock).  After it returns,
        writes may resume: they land on the current fleet as usual *and*
        are buffered for tail replay onto the new one.
        """
        if new_count <= 0:
            raise ValueError(f"shard count must be positive, got {new_count}")
        executor = self._require_loaded()
        if self._reshard_tail is not None:
            raise ReproError("a reshard is already in progress")
        payloads = executor.broadcast("export")
        self._reshard_tail = []
        return _ReshardPlan(
            new_count=new_count,
            cut_version=self._version,
            cut_epsilon=self.epsilon,
            payloads=payloads,
        )

    def build_reshard(self, plan: _ReshardPlan) -> None:
        """Phase 2/3: build and load the new fleet (expensive, lock-free).

        Merges the exported shard cuts, re-routes them through a router
        at the new count, and preprocesses fresh per-shard engines — at
        the ε of the cut (a retune committed since the cut is in the tail
        and replays in order).  Durable deployments start the new fleet
        under the *next epoch's* directory, so the old fleet's history
        stays authoritative until the barrier record commits the swap.
        Delta capture stays off on the new fleet until the swap: the
        events it would capture during tail replay were already captured
        (and drained) on the old fleet, and phantom deltas must never
        reach subscribers.
        """
        combined = Database()
        for payload in plan.payloads:
            for name, (schema, rows) in payload.items():
                if name in combined:
                    relation = combined.relation(name)
                else:
                    relation = combined.create_relation(name, schema)
                for tup, mult in rows:
                    relation.apply_delta(tuple(tup), mult)
        plan.router = ShardRouter(self.query, plan.new_count, self._shard_key_choice)
        plan.epoch = self._epoch + 1
        durability = (
            None if self.durability is None else self.durability.for_epoch(plan.epoch)
        )
        shard_databases = plan.router.split_database(combined)
        executor_name = self._resolve_executor(combined.size)
        executor = EXECUTORS[executor_name]()
        executor.start(
            str(self.query),
            {
                "epsilon": plan.cut_epsilon,
                "mode": self.mode,
                "enable_rebalancing": self.enable_rebalancing,
                "copy_database": False,
            },
            shard_databases,
            plan.router.shard_key,
            durability,
        )
        plan.fleet = _FleetHandle(executor, plan.router, executor_name, plan.epoch)

    def finish_reshard(self, plan: _ReshardPlan) -> None:
        """Phase 3/3: replay the tail, write the barrier, swap the fleet.

        Must not race a mutating call.  The tail replays through the same
        routing paths as live ingestion — raw update lists re-route
        pre-consolidation (a sub-batch whose net effect cancels still
        ticks its destination shard), consolidated batches re-split by
        net entry — so the new fleet's per-shard version accounting
        matches a fresh deployment fed the same stream.  Durable
        deployments then publish the fleet barrier record: its atomic
        rename is the commit point — recovery lands at the old fleet
        before it and the new fleet after it, never a hybrid.  Finally
        the facade swaps routers/executors, ticks its version once, and
        retires the old fleet (closed when its last snapshot pin drains).
        """
        self._require_loaded()
        if plan.fleet is None or plan.router is None:
            raise ReproError("finish_reshard called before build_reshard")
        new_executor = plan.fleet.executor
        router = plan.router
        tail = self._reshard_tail or []
        crash_point("reshard-prepare")
        for kind, payload in tail:
            crash_point("reshard-tail")
            if kind == "update":
                new_executor.call(
                    router.shard_of_update(payload),
                    "update",
                    (payload.relation, payload.tuple, payload.multiplicity),
                )
            elif kind == "retune":
                new_executor.broadcast("retune", payload)
            else:
                if kind == "batch":
                    sub_batches = router.split_batch(payload)
                else:  # "updates": raw source updates, routed pre-consolidation
                    sub_batches = router.split_updates(payload)
                if not sub_batches:
                    continue  # consolidated-empty: no shard work, as in apply_batch
                pre_validated = len(sub_batches) > 1
                if pre_validated:
                    new_executor.map(
                        {
                            shard: ("validate", batch)
                            for shard, batch in sub_batches.items()
                        }
                    )
                new_executor.map(
                    {
                        shard: ("batch", (batch, pre_validated))
                        for shard, batch in sub_batches.items()
                    }
                )
        version_after = self._version + 1  # the reshard ticks once, like retune
        if self.durability is not None:
            write_fleet_meta(
                self.durability.directory,
                {
                    "shards": plan.new_count,
                    "epoch": plan.epoch,
                    "version": version_after,
                    "shard_versions": list(new_executor.broadcast("version")),
                    "epsilon": self.epsilon,
                },
                fsync=self.durability.fsync,
            )
        crash_point("reshard-swap")
        if self._capture_deltas:
            new_executor.broadcast("set_delta_capture", True)
        self._broadcast_aggregates(new_executor)
        old_fleet = self._fleet
        self.router = router
        self.shards = plan.new_count
        self.shard_key = router.shard_key
        self.executor_name = plan.fleet.executor_name
        self._executor = new_executor
        self._fleet = plan.fleet
        self._epoch = plan.epoch
        self._reshard_tail = None
        self._version = version_after
        if old_fleet is not None:
            old_fleet.retire()
            if not old_fleet.closed:
                self._retired_fleets.append(old_fleet)
            self._retired_fleets = [
                fleet for fleet in self._retired_fleets if not fleet.closed
            ]
        if self.durability is not None:
            self._cleanup_old_epochs(keep=plan.epoch)

    def abort_reshard(self, plan: _ReshardPlan) -> None:
        """Cancel an in-flight reshard; the current fleet never stopped.

        Drops the tail buffer and the partially built fleet.  Best
        effort on disk: the new epoch's durability tree is removed, and
        since the barrier record was never written, recovery was never
        at risk either way.
        """
        self._reshard_tail = None
        if plan.fleet is not None:
            plan.fleet.force_close()
            plan.fleet = None
        if self.durability is not None and plan.epoch > 0:
            # Never delete an epoch the barrier already committed to: an
            # abort racing a written barrier must leave recovery intact.
            meta = read_fleet_meta(self.durability.directory)
            if meta is None or int(meta.get("epoch", 0)) != plan.epoch:
                shutil.rmtree(
                    self.durability.for_epoch(plan.epoch).directory,
                    ignore_errors=True,
                )

    def _wipe_fleet_history(self) -> None:
        """Erase fleet-level durability state before a fresh load.

        Mirrors ``DurabilityManager.start_fresh`` at the fleet level: a
        re-load replaces the deployment wholesale, so a stale barrier
        record or a superseded epoch tree could only mislead a later
        recovery.
        """
        root = self.durability.path
        if not root.exists():
            return
        for name in (FLEET_META_NAME, FLEET_META_NAME + ".tmp"):
            try:
                (root / name).unlink()
            except OSError:
                pass
        for entry in root.iterdir():
            if entry.is_dir() and (
                entry.name.startswith("epoch-") or entry.name.startswith("shard-")
            ):
                shutil.rmtree(entry, ignore_errors=True)

    def _cleanup_old_epochs(self, keep: int) -> None:
        """Best-effort pruning of durability trees from superseded epochs.

        Runs after the barrier rename, so a crash anywhere in here leaves
        stale trees that recovery ignores (it follows the barrier
        record).  The old fleet stopped receiving commits at the swap;
        on POSIX its open WAL handles survive the unlink.
        """
        root = self.durability.path
        try:
            entries = list(root.iterdir())
        except OSError:
            return
        for entry in entries:
            if not entry.is_dir():
                continue
            if entry.name.startswith("shard-") and keep != 0:
                shutil.rmtree(entry, ignore_errors=True)
            elif entry.name.startswith("epoch-"):
                try:
                    epoch = int(entry.name.split("-", 1)[1])
                except ValueError:
                    continue
                if epoch != keep:
                    shutil.rmtree(entry, ignore_errors=True)

    # ------------------------------------------------------------------
    # introspection and invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Run every shard's deep probe plus the cross-shard placement check.

        Aggregates :meth:`HierarchicalEngine.check_invariants` across
        shards and additionally verifies that every stored base tuple
        hashes to the shard holding it, so a routing bug surfaces even
        before it corrupts a result.
        """
        self._require_loaded().broadcast("check")

    @property
    def rebalance_stats(self) -> Optional[RebalanceStats]:
        """Fleet-wide rebalancing counters (sum over shards; None if static)."""
        per_shard = self.rebalance_stats_per_shard()
        real = [stats for stats in per_shard if stats is not None]
        if not real:
            return None
        return RebalanceStats.merged(real)

    def rebalance_stats_per_shard(self) -> List[Optional[RebalanceStats]]:
        """Per-shard rebalancing counters, in shard order."""
        return self._require_loaded().stats()

    def view_size(self) -> int:
        """Total tuples stored across all shards' materialized views."""
        return sum(self._require_loaded().broadcast("view_size"))

    def shard_sizes(self) -> Tuple[int, ...]:
        """Base-database size of every shard, in shard order."""
        return tuple(self._require_loaded().broadcast("size"))

    def thresholds(self) -> Tuple[float, ...]:
        """Every shard's current heavy/light threshold ``M_shard^ε``.

        Shards plan against their own sizes, so these are *smaller* than a
        single engine's threshold over the union — the source of both the
        update-time win and the extra enumeration-time work.
        """
        return tuple(self._require_loaded().broadcast("threshold"))

    def explain(self) -> str:
        """Human-readable description of the sharded deployment."""
        lines = [
            self.plan.describe(),
            f"epsilon: {self.epsilon}",
            f"mode: {self.mode}",
            f"shards: {self.shards} (key {self.shard_key!r}, "
            f"{'free' if self.router.key_is_free else 'bound'})",
        ]
        if self._executor is not None:
            lines.append(f"executor: {self.executor_name}")
            lines.append(f"shard sizes: {list(self.shard_sizes())}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine({self.query!s}, shards={self.shards}, "
            f"epsilon={self.epsilon}, executor={self.executor_choice!r})"
        )
