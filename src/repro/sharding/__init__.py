"""Sharded parallel maintenance: hash-partitioned IVM^ε across engines.

The subsystem splits one hierarchical query's data across ``k`` independent
:class:`~repro.core.api.HierarchicalEngine` instances by hashing the
planner-chosen shard key (a variable occurring in every atom, so joins and
rebalancing stay shard-local), routes single updates and batches to their
shards, and answers enumeration through an order-preserving k-way merge.

Entry point::

    from repro.sharding import ShardedEngine

    engine = ShardedEngine("Q(A, C) = R(A, B), S(B, C)", shards=4)
    engine.load(db)
    engine.apply_batch(stream)
    print(dict(engine.enumerate()))   # == single-engine result

See :mod:`repro.sharding.engine` for the facade,
:mod:`repro.sharding.router` for routing, and
:mod:`repro.sharding.executor` for the serial / thread / process backends.
"""

from repro.sharding.engine import (
    SMALL_N_THRESHOLD,
    ShardedEngine,
    ShardedSnapshot,
    ShardMergeEnumerator,
)
from repro.sharding.executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadExecutor,
)
from repro.sharding.router import ShardRouter

__all__ = [
    "EXECUTORS",
    "SMALL_N_THRESHOLD",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "ShardMergeEnumerator",
    "ShardRouter",
    "ShardedEngine",
    "ShardedSnapshot",
    "ThreadExecutor",
]
