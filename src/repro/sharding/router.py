"""Shard routing: which shard owns a tuple, an update, a batch, a database.

The router binds the planner-chosen shard-key variable
(:func:`repro.core.planner.choose_shard_key`) to a concrete column position
per relation, and from there every routing decision is one stable hash
(:func:`repro.data.partition.shard_of`) of that column's value:

* a base tuple of ``R`` lives on ``shard_of(tup[column[R]], shards)``;
* an update routes to the shard owning its tuple;
* a batch splits into per-shard sub-batches of its net deltas;
* a database splits into per-shard sub-databases, each carrying *every*
  relation of the original (possibly empty) so each shard engine can plan
  and maintain independently.

Because the shard key occurs in every atom, two tuples that join agree on
its value and therefore land on the same shard — delta propagation, minor
and major rebalancing all stay shard-local by construction.  Relations that
do not occur in the query have no shard column; they are parked wholly on
shard 0 so no data is silently dropped, and the placement invariant check
ignores them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.planner import choose_shard_key
from repro.data.database import Database
from repro.data.partition import shard_of
from repro.data.update import Update, UpdateBatch
from repro.exceptions import InvariantViolationError, UnknownRelationError
from repro.query.conjunctive import ConjunctiveQuery


class ShardRouter:
    """Deterministic hash-routing of one query's data onto ``shards`` shards."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        shards: int,
        shard_key: Optional[str] = None,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shard count must be positive, got {shards}")
        self.query = query
        self.shards = shards
        self.shard_key = shard_key or choose_shard_key(query)
        self.columns: Dict[str, int] = {}
        for atom in query.atoms:
            if self.shard_key not in atom.variables:
                raise UnknownRelationError(
                    f"shard key {self.shard_key!r} does not occur in atom "
                    f"{atom}; it cannot route updates of {atom.relation!r}"
                )
            self.columns[atom.relation] = atom.variables.index(self.shard_key)
        self.key_is_free = self.shard_key in query.free_variables

    # ------------------------------------------------------------------
    # single-item routing
    # ------------------------------------------------------------------
    def column_of(self, relation_name: str) -> int:
        """The shard-key column position of one relation."""
        try:
            return self.columns[relation_name]
        except KeyError as exc:
            raise UnknownRelationError(
                f"relation {relation_name!r} does not occur in query "
                f"{self.query}; it has no shard column"
            ) from exc

    def shard_of_value(self, value: object) -> int:
        """The shard owning one shard-key value."""
        return shard_of(value, self.shards)

    def shard_of_tuple(self, relation_name: str, tup: Tuple) -> int:
        """The shard owning one base tuple of ``relation_name``."""
        return self.shard_of_value(tup[self.column_of(relation_name)])

    def shard_of_update(self, update: Update) -> int:
        """The shard an update routes to."""
        return self.shard_of_tuple(update.relation, update.tuple)

    # ------------------------------------------------------------------
    # bulk routing
    # ------------------------------------------------------------------
    def split_database(self, database: Database) -> List[Database]:
        """Split a database into one sub-database per shard.

        Every shard receives every relation (empty when no tuple routes to
        it), so each shard engine sees a complete schema.  Relations outside
        the query are parked on shard 0 unchanged.
        """
        parts = [Database() for _ in range(self.shards)]
        for relation in database:
            targets = [
                part.create_relation(relation.name, relation.schema)
                for part in parts
            ]
            if relation.name not in self.columns:
                targets[0].merge(relation)
                continue
            column = self.columns[relation.name]
            for tup, mult in relation.items():
                targets[shard_of(tup[column], self.shards)].apply_delta(tup, mult)
        return parts

    def split_batch(self, batch: UpdateBatch) -> Dict[int, UpdateBatch]:
        """Split a consolidated batch's net deltas into per-shard batches.

        A batch whose net effect is empty yields an empty mapping — no shard
        receives any work (see :meth:`UpdateBatch.split_by` for the boundary
        contract with ``UpdateStream.batches``).
        """
        return batch.split_by(
            lambda relation, tup: self.shard_of_tuple(relation, tup)
        )

    def split_updates(self, updates: Iterable[Update]) -> Dict[int, UpdateBatch]:
        """Fold raw source updates into per-shard batches, in stream order.

        Unlike :meth:`split_batch` this sees the updates *before*
        consolidation, so each shard's ``source_count`` is exact — a
        sub-batch whose updates all cancel is still returned (empty net,
        positive source count) and must be dispatched so per-shard
        throughput accounting matches the unsharded driver.
        """
        buckets: Dict[int, UpdateBatch] = {}
        for update in updates:
            buckets.setdefault(self.shard_of_update(update), UpdateBatch()).add(
                update
            )
        return buckets

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_placement(self, database: Database, shard_index: int) -> None:
        """Assert every stored tuple of ``database`` belongs on ``shard_index``.

        This is the cross-shard half of the sharded engine's
        ``check_invariants``: a routing bug (or a divergent hash between
        coordinator and worker) surfaces as a misplaced tuple long before it
        corrupts an enumeration.
        """
        for relation in database:
            column = self.columns.get(relation.name)
            if column is None:
                continue
            for tup in relation.tuples():
                owner = shard_of(tup[column], self.shards)
                if owner != shard_index:
                    raise InvariantViolationError(
                        f"tuple {tup!r} of {relation.name!r} is stored on "
                        f"shard {shard_index} but its shard key "
                        f"{tup[column]!r} hashes to shard {owner}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardRouter(shards={self.shards}, key={self.shard_key!r}, "
            f"columns={self.columns!r})"
        )
