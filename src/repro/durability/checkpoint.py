"""Checkpoint files: an atomic on-disk image of one engine version.

A checkpoint is a single framed record (same ``[length][CRC32][JSON]``
framing as the WAL, different magic) holding everything recovery needs
to rebuild the engine *exactly* — not just the query answer:

* the query text, ε, mode, and rebalancing flag (engine construction);
* the base relations, serialized in database registration order with
  tuples in relation insertion order — insertion order seeds index
  iteration order, which seeds the light parts and view contents, so it
  is part of the state;
* the maintenance driver's ``version``, ``threshold_base`` (Definition
  51's ``M`` must survive a restart; re-deriving ``2N+1`` would forget
  doublings), rebalance counters, and telemetry aggregates.

Atomicity is rename-based: write to ``<name>.tmp``, flush, fsync,
``os.replace`` into place, fsync the directory.  A crash before the
rename leaves the previous checkpoint untouched; a crash after it leaves
a complete new one.  There is no in-between, which is why
:func:`load_newest_checkpoint` can simply walk candidates newest-first
and skip any that fail the CRC — at most the *newest* can be a leftover
``.tmp`` or a torn write, never a middle one.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.crashpoints import crash_point

LOGGER = logging.getLogger("repro.durability")

CHECKPOINT_MAGIC = b"REPROCKPT1\n"
_HEADER = struct.Struct(">II")

CHECKPOINT_SUFFIX = ".ckpt"


def checkpoint_name(version: int) -> str:
    """Checkpoint filename for engine ``version``."""
    return f"checkpoint-{version:016d}{CHECKPOINT_SUFFIX}"


def checkpoint_version(path: Path) -> Optional[int]:
    """Parse the version out of a checkpoint filename (``None`` if not one)."""
    name = Path(path).name
    if not name.startswith("checkpoint-") or not name.endswith(CHECKPOINT_SUFFIX):
        return None
    try:
        return int(name[len("checkpoint-") : -len(CHECKPOINT_SUFFIX)])
    except ValueError:
        return None


def engine_state(engine) -> Dict[str, Any]:
    """Serialize a loaded dynamic :class:`HierarchicalEngine` to a state dict.

    Duck-typed on purpose: this module must not import
    :mod:`repro.core.api` (the engine imports durability, not the other
    way around).
    """
    driver = engine._driver
    if driver is None:
        raise ValueError("only dynamic engines can be checkpointed")
    relations = [
        [
            relation.name,
            list(relation.schema),
            [[list(tup), mult] for tup, mult in relation.items()],
        ]
        for relation in engine.database
    ]
    telemetry = None
    if engine.telemetry is not None:
        telemetry = engine.telemetry.state_dict()
    return {
        "query": str(engine.query),
        "epsilon": engine.epsilon,
        "mode": engine.mode,
        "enable_rebalancing": engine.enable_rebalancing,
        "version": driver.version,
        "threshold_base": driver.threshold_base,
        "relations": relations,
        "stats": driver.stats.as_dict(),
        "telemetry": telemetry,
    }


def write_checkpoint(directory: Path, state: Dict[str, Any], fsync: bool = True) -> Path:
    """Atomically persist ``state`` as ``checkpoint-<version>.ckpt``.

    The crash sites bracket every step a real death could interrupt:
    before any byte of the temp file (``checkpoint-write``), after its
    flush but before fsync (``checkpoint-fsync``), and before the
    ``os.replace`` (``checkpoint-rename``).  The ``checkpoint-cleanup``
    site fires after the rename — a crash there leaves a valid new
    checkpoint plus not-yet-rotated old files, which recovery tolerates
    by construction.
    """
    directory = Path(directory)
    data = json.dumps(state, separators=(",", ":"), sort_keys=True).encode("utf-8")
    record = CHECKPOINT_MAGIC + _HEADER.pack(len(data), zlib.crc32(data)) + data
    final_path = directory / checkpoint_name(int(state["version"]))
    tmp_path = final_path.with_suffix(final_path.suffix + ".tmp")
    crash_point("checkpoint-write")
    with open(tmp_path, "wb") as handle:
        handle.write(record)
        handle.flush()
        crash_point("checkpoint-fsync")
        if fsync:
            os.fsync(handle.fileno())
    crash_point("checkpoint-rename")
    os.replace(tmp_path, final_path)
    if fsync:
        _fsync_directory(directory)
    crash_point("checkpoint-cleanup")
    return final_path


def load_checkpoint(path: Path) -> Dict[str, Any]:
    """Read and verify one checkpoint file; raise ``ValueError`` if invalid."""
    data = Path(path).read_bytes()
    if not data.startswith(CHECKPOINT_MAGIC):
        raise ValueError("bad checkpoint magic")
    body = data[len(CHECKPOINT_MAGIC) :]
    if len(body) < _HEADER.size:
        raise ValueError("torn checkpoint header")
    length, crc = _HEADER.unpack_from(body, 0)
    payload = body[_HEADER.size : _HEADER.size + length]
    if len(payload) < length:
        raise ValueError("torn checkpoint payload")
    if zlib.crc32(payload) != crc:
        raise ValueError("checkpoint CRC mismatch")
    state = json.loads(payload.decode("utf-8"))
    if not isinstance(state, dict) or "version" not in state:
        raise ValueError("checkpoint payload is not an engine state")
    return state


def find_checkpoints(directory: Path) -> List[Tuple[int, Path]]:
    """All checkpoint files in ``directory``, sorted oldest to newest."""
    found = []
    for path in Path(directory).glob(f"checkpoint-*{CHECKPOINT_SUFFIX}"):
        version = checkpoint_version(path)
        if version is not None:
            found.append((version, path))
    return sorted(found)


def load_newest_checkpoint(
    directory: Path,
) -> Tuple[Dict[str, Any], Path, List[str]]:
    """Load the newest checkpoint that passes verification.

    Corrupt candidates (the possible crash residue of an interrupted
    ``write_checkpoint``) are skipped with a logged warning and the next
    newest is tried.  Raises ``FileNotFoundError`` when no checkpoint in
    the directory verifies.
    """
    warnings: List[str] = []
    for version, path in reversed(find_checkpoints(directory)):
        try:
            state = load_checkpoint(path)
        except (ValueError, OSError) as exc:
            message = (
                f"{path.name}: {exc}; falling back to the previous checkpoint"
            )
            warnings.append(message)
            LOGGER.warning(message)
            continue
        return state, path, warnings
    raise FileNotFoundError(
        f"no valid checkpoint in {directory} "
        f"(tried {len(warnings)} corrupt candidate(s))"
    )


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a rename survives the metadata journal too."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
