"""Shard supervision: restart-and-recover a dead worker, keep serving.

A :class:`~repro.sharding.ShardedEngine` with a process executor loses a
whole shard when its worker dies (OOM killer, SIGKILL, a segfault in
native code).  With per-shard durability each worker logs its own WAL
and checkpoints into ``<directory>/shard-<i>``, so the shard's state
survives its process.  :class:`ShardSupervisor` closes the loop:

* every mutation and read goes through the supervisor, which tracks the
  per-shard versions it has seen acknowledged;
* a :class:`~repro.exceptions.WorkerDiedError` (a pipe breaking
  mid-command) triggers ``executor.restart_shard(i)`` — a fresh worker
  that *recovers* from the shard's durability directory instead of
  loading a database — while the other shards' pipes stay untouched;
* the interrupted command is then reconciled per shard: if the recovered
  worker's version equals the version the supervisor last saw, the dying
  worker never made the command durable and it is re-sent; if it is one
  ahead, the command committed but its acknowledgement was lost with the
  process, and re-sending would double-apply — so it is skipped.  Any
  other version is a real divergence and raises
  :class:`~repro.exceptions.DurabilityError`.
* an optional watcher thread polls ``executor.dead_shards()`` so an
  *idle* worker's death is repaired before the next command trips on it.

Shard-local snapshots are in-memory copy-on-write state and die with the
worker: a :class:`~repro.sharding.engine.ShardedSnapshot` held across a
kill raises :class:`~repro.exceptions.StaleStateError` on its next read
touching the restarted shard — honest semantics, asserted by the
process-kill integration test — while a snapshot captured *after* the
recovery serves the same merged result as the never-killed oracle.

This module deliberately never imports :mod:`repro.sharding` at module
level (the sharded engine imports :mod:`repro.core.api`, which imports
this package); everything engine-shaped is duck-typed.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.data.update import Update, UpdateBatch
from repro.exceptions import DurabilityError, WorkerDiedError


class ShardSupervisor:
    """Routes commands to a sharded engine, repairing dead workers en route."""

    def __init__(self, engine, watch_interval: Optional[float] = None) -> None:
        engine._require_loaded()
        if engine.durability is None:
            raise DurabilityError(
                "the sharded engine has no durability directory; a dead "
                "shard could only be rebuilt empty"
            )
        self.engine = engine
        self.recoveries = 0
        self._lock = threading.RLock()
        self._versions: List[int] = list(engine.shard_versions())
        self._watch_interval = watch_interval
        self._stop = threading.Event()
        self._watcher: Optional[threading.Thread] = None
        if watch_interval is not None:
            self._watcher = threading.Thread(
                target=self._watch, name="repro-shard-supervisor", daemon=True
            )
            self._watcher.start()

    # ------------------------------------------------------------------
    # recovery plumbing
    # ------------------------------------------------------------------
    def _recover_shards(self, shard_indexes: Iterable[int]) -> None:
        executor = self.engine._require_loaded()
        for index in sorted(set(shard_indexes)):
            executor.restart_shard(index)
            self.recoveries += 1

    def _reconcile(self, shard: int, command: str, payload: Any) -> None:
        """Re-send or skip one interrupted mutation on a recovered shard."""
        executor = self.engine._require_loaded()
        durable = executor.call(shard, "version")
        expected = self._versions[shard]
        if durable == expected:
            # the dying worker never committed the command: re-send it
            executor.call(shard, command, payload)
        elif durable != expected + 1:
            raise DurabilityError(
                f"shard {shard} recovered at version {durable}, but the "
                f"supervisor last acknowledged {expected}; the shard's "
                "durability directory does not belong to this deployment"
            )
        self._versions[shard] = expected + 1

    def check_and_recover(self) -> List[int]:
        """Repair any currently-dead workers; returns the shards recovered."""
        with self._lock:
            executor = self.engine._require_loaded()
            dead = executor.dead_shards()
            if dead:
                self._recover_shards(dead)
            return dead

    def _watch(self) -> None:
        while not self._stop.wait(self._watch_interval):
            try:
                self.check_and_recover()
            except Exception:  # pragma: no cover - watcher must not die
                continue

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def apply(self, update: Update) -> None:
        """Route one update to its shard, recovering the shard if it dies."""
        with self._lock:
            engine = self.engine
            executor = engine._require_loaded()
            shard = engine.router.shard_of_update(update)
            payload = (update.relation, update.tuple, update.multiplicity)
            try:
                executor.call(shard, "update", payload)
                self._versions[shard] += 1
            except WorkerDiedError as exc:
                self._recover_shards(exc.shard_indexes)
                self._reconcile(shard, "update", payload)
            engine._version += 1

    apply_update = apply

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[Update]]) -> None:
        """The sharded two-phase batch path with per-shard fault handling.

        Mirrors :meth:`ShardedEngine.apply_batch` (route, validate
        everywhere, then apply everywhere); a worker death during the
        apply round is reconciled per shard — survivors already applied
        (the executor drains every live pipe before raising), dead shards
        re-send or skip based on their recovered durable version.
        """
        with self._lock:
            engine = self.engine
            executor = engine._require_loaded()
            if isinstance(updates, UpdateBatch):
                sub_batches = engine.router.split_batch(updates)
            else:
                sub_batches = engine.router.split_updates(updates)
            if not sub_batches:
                engine._version += 1
                return
            pre_validated = len(sub_batches) > 1
            if pre_validated:
                commands = {
                    shard: ("validate", batch)
                    for shard, batch in sub_batches.items()
                }
                try:
                    executor.map(commands)
                except WorkerDiedError as exc:
                    # validation is read-only: recover and simply re-ask
                    self._recover_shards(exc.shard_indexes)
                    for shard in exc.shard_indexes:
                        if shard in sub_batches:
                            executor.call(shard, "validate", sub_batches[shard])
            commands = {
                shard: ("batch", (batch, pre_validated))
                for shard, batch in sub_batches.items()
            }
            try:
                executor.map(commands)
                for shard in sub_batches:
                    self._versions[shard] += 1
            except WorkerDiedError as exc:
                dead = set(exc.shard_indexes)
                self._recover_shards(dead)
                for shard in sub_batches:
                    if shard in dead:
                        self._reconcile(shard, "batch", commands[shard][1])
                    else:
                        self._versions[shard] += 1
            engine._version += 1

    def apply_stream(
        self, updates: Iterable[Update], batch_size: Optional[int] = None
    ) -> None:
        """Apply a sequence of updates, optionally chunked into batches."""
        if batch_size is not None:
            chunk: List[Update] = []
            for update in updates:
                chunk.append(update)
                if len(chunk) >= batch_size:
                    self.apply_batch(chunk)
                    chunk = []
            if chunk:
                self.apply_batch(chunk)
            return
        for update in updates:
            self.apply(update)

    def retune(self, epsilon: float) -> None:
        """Broadcast a shard-local retune, recovering any dead worker."""
        with self._lock:
            engine = self.engine
            executor = engine._require_loaded()
            commands = {
                shard: ("retune", epsilon)
                for shard in range(executor.shard_count)
            }
            try:
                executor.map(commands)
                for shard in commands:
                    self._versions[shard] += 1
            except WorkerDiedError as exc:
                dead = set(exc.shard_indexes)
                self._recover_shards(dead)
                for shard in commands:
                    if shard in dead:
                        self._reconcile(shard, "retune", epsilon)
                    else:
                        self._versions[shard] += 1
            engine.epsilon = epsilon
            engine._version += 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _read(self, operation):
        with self._lock:
            try:
                return operation()
            except WorkerDiedError as exc:
                self._recover_shards(exc.shard_indexes)
                return operation()

    def result(self) -> Dict[Tuple, int]:
        """Merged result; a dead shard is recovered and the read retried."""
        return self._read(self.engine.result)

    def enumerate(self) -> Iterator[Tuple[Tuple, int]]:
        """Materialized merged enumeration (recovering, hence not lazy)."""
        return iter(self._read(lambda: list(self.engine.enumerate())))

    def count_distinct(self) -> int:
        """Number of distinct result tuples across all shards."""
        return self._read(self.engine.count_distinct)

    def check_invariants(self) -> None:
        """Every shard's deep probe plus placement, with recovery retry."""
        self._read(self.engine.check_invariants)

    def snapshot(self):
        """Capture a sharded snapshot (recovering dead workers first).

        The capture is only as durable as the workers holding it: a
        worker killed later takes its shard's snapshot state with it, and
        reads through this handle then raise
        :class:`~repro.exceptions.StaleStateError`.
        """
        return self._read(self.engine.snapshot)

    def shard_versions(self) -> Tuple[int, ...]:
        """Every shard's own ingestion-event counter, in shard order."""
        return tuple(self._read(self.engine.shard_versions))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the watcher and shut the sharded engine down."""
        self._stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5)
            self._watcher = None
        self.engine.close()

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
