"""The durability manager: the commit path between an engine and its disk.

:class:`DurabilityConfig` names a directory and a policy (fsync per
commit or not, checkpoint every N commits, how many checkpoints to
keep); :class:`DurabilityManager` attaches that policy to one loaded
dynamic engine.  The engine calls ``commit_update`` / ``commit_batch`` /
``commit_retune`` *after* its in-memory ingest succeeded — the WAL is a
redo log of **accepted** events, so a rejected over-delete is never
logged and can never poison a replay — and the commit returns only once
the record is flushed (and, with ``fsync=True``, fsynced).

Checkpoints double as **index-normalization barriers**.  Before
serializing, the manager asks the maintenance driver to
:meth:`~repro.ivm.rebalance.MaintenanceDriver.rematerialize`: secondary
indexes are dropped and every view rebuilt at the current threshold.
After that, the live state is a pure function of (base-relation
insertion order, threshold base, ε) — exactly what the checkpoint file
captures — so a recovery that rebuilds from the file and replays the WAL
tail reproduces the live engine *byte for byte*, enumeration order
included.  Without the barrier, churn-evolved index iteration order
(invisible to any serialization of the base relations) would diverge
from the rebuilt order, the failure mode the retune path had to solve
first (see :meth:`MaintenanceDriver.retune`).

Checkpoint schedule is version-keyed (``version - last_checkpoint ≥
interval``), which makes the normalization points a deterministic
function of the interval alone: a recovery that replays the WAL re-hits
the same barriers at the same versions as the engine that never
crashed — the property the kill-anywhere conformance harness asserts.

This module never imports :mod:`repro.core.api` — the engine owns the
manager, not the other way around; everything engine-shaped is
duck-typed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.durability import checkpoint as ckpt
from repro.durability import wal as walmod
from repro.durability.crashpoints import crash_point


@dataclass(frozen=True)
class DurabilityConfig:
    """Where and how an engine persists itself.  Picklable (crosses pipes).

    ``fsync=False`` trades the per-commit fsync for OS-buffered flushes:
    an order of magnitude cheaper per tuple, but a crash may lose the
    tail that the OS had not written back yet — see the "when fsync
    batching loses" discussion in ``docs/architecture.md`` §12.
    ``checkpoint_interval=None`` (or 0) disables scheduled checkpoints;
    manual ``engine.checkpoint()`` calls still work.
    """

    directory: str
    fsync: bool = True
    checkpoint_interval: Optional[int] = 64
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "directory", str(self.directory))
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")

    @property
    def path(self) -> Path:
        return Path(self.directory)

    def for_shard(self, index: int) -> "DurabilityConfig":
        """The same policy in a per-shard subdirectory ``shard-<index>``."""
        return replace(self, directory=os.path.join(self.directory, f"shard-{index}"))

    def for_epoch(self, epoch: int) -> "DurabilityConfig":
        """The same policy in the fleet-epoch subdirectory ``epoch-<epoch>``.

        Epoch 0 is the pre-reshard layout (``shard-<i>`` directly under
        the root), kept for backward compatibility with PR 6 deployments;
        every reshard bumps the epoch and moves the fleet's per-shard
        directories under ``epoch-<epoch>/``.
        """
        if epoch == 0:
            return self
        return replace(self, directory=os.path.join(self.directory, f"epoch-{epoch}"))


#: Name of the fleet barrier record at the root of a sharded durability
#: directory.  Its atomic rename *is* the reshard commit point.
FLEET_META_NAME = "fleet.json"


def read_fleet_meta(directory: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read the fleet barrier record, or ``None`` when absent/unreadable.

    An unreadable record is treated as absent: the write is atomic
    (tmp + ``os.replace``), so a torn file can only be a pre-barrier
    stray tmp that leaked into place by an outside force — recovery then
    falls back to the constructed shard count, which is the epoch-0
    behavior.
    """
    path = Path(directory) / FLEET_META_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(meta, dict) or "shards" not in meta:
        return None
    return meta


def write_fleet_meta(
    directory: Union[str, Path], meta: Dict[str, Any], fsync: bool = True
) -> Path:
    """Atomically publish the fleet barrier record (the reshard barrier).

    The record becomes visible only at the ``os.replace`` — a crash
    before it leaves the old record (or none) in place, so recovery
    lands at exactly the old fleet; a crash after it lands at exactly
    the new fleet.  ``crash_point("reshard-barrier")`` models a death at
    the instant before the rename.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / FLEET_META_NAME
    tmp = directory / (FLEET_META_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(meta, sort_keys=True))
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    crash_point("reshard-barrier")
    os.replace(tmp, path)
    return path


def coerce_config(
    durability: Union["DurabilityConfig", str, Path],
) -> "DurabilityConfig":
    """Accept a config, a directory string, or a :class:`~pathlib.Path`."""
    if isinstance(durability, DurabilityConfig):
        return durability
    return DurabilityConfig(directory=str(durability))


@dataclass
class DurabilityStats:
    """Counters describing durability activity (reported by benchmarks)."""

    wal_records: int = 0
    wal_bytes: int = 0
    checkpoints_written: int = 0
    last_checkpoint_version: int = 0
    recovered_records: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "wal_records": self.wal_records,
            "wal_bytes": self.wal_bytes,
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint_version": self.last_checkpoint_version,
            "recovered_records": self.recovered_records,
        }


class DurabilityManager:
    """Owns one engine's WAL writer, checkpoint schedule, and file rotation."""

    def __init__(self, engine, config: DurabilityConfig) -> None:
        self.engine = engine
        self.config = coerce_config(config)
        self.stats = DurabilityStats()
        self.last_checkpoint_version = 0
        self._wal: Optional[walmod.WalWriter] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_fresh(self) -> None:
        """Begin a new durable history for a freshly loaded engine.

        Wipes previous durability files in the directory (a re-``load``
        replaces the engine's state wholesale, so the old history can
        only mislead), writes the version-0 checkpoint, and opens the
        first WAL segment.  No normalization barrier is needed: a just-
        loaded engine's index order *is* the fresh-build order.
        """
        directory = self.config.path
        directory.mkdir(parents=True, exist_ok=True)
        for _, path in ckpt.find_checkpoints(directory):
            path.unlink()
        for _, path in walmod.wal_segments(directory):
            path.unlink()
        for stray in directory.glob("*.tmp"):
            stray.unlink()
        version = self.engine.version
        ckpt.write_checkpoint(
            directory, ckpt.engine_state(self.engine), fsync=self.config.fsync
        )
        self.last_checkpoint_version = version
        self.stats.checkpoints_written += 1
        self.stats.last_checkpoint_version = version
        self._wal = walmod.WalWriter.create(
            directory / walmod.wal_name(version), fsync=self.config.fsync
        )

    def adopt(self, last_checkpoint_version: int) -> None:
        """Attach to an engine rebuilt by recovery (no writer yet).

        Replay-mode checkpoints (scheduled barriers re-hit while the WAL
        tail is replayed) write their files but never rotate or clean up
        — the tail being replayed may still live in an old segment.
        """
        self.last_checkpoint_version = last_checkpoint_version
        self.stats.last_checkpoint_version = last_checkpoint_version
        self._wal = None

    def resume_writer(self, segment_path: Optional[Path], valid_length: int) -> None:
        """Reopen the active WAL segment after recovery finished replaying."""
        directory = self.config.path
        if segment_path is None or valid_length < len(walmod.WAL_MAGIC):
            segment_path = directory / walmod.wal_name(self.engine.version)
            self._wal = walmod.WalWriter.create(segment_path, fsync=self.config.fsync)
        else:
            self._wal = walmod.WalWriter.resume(
                segment_path, valid_length, fsync=self.config.fsync
            )
        self._cleanup()

    def close(self) -> None:
        """Flush and close the WAL writer (the files remain recoverable)."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    # ------------------------------------------------------------------
    # the commit path
    # ------------------------------------------------------------------
    def commit_update(self, update, version: int) -> None:
        """Make one accepted single-tuple update durable."""
        self._commit(walmod.encode_update(version, update), version)

    def commit_batch(self, batch, version: int) -> None:
        """Make one accepted consolidated batch durable."""
        self._commit(walmod.encode_batch(version, batch), version)

    def commit_retune(self, epsilon: float, version: int) -> None:
        """Make one retune durable (ε is engine state too)."""
        self._commit(walmod.encode_retune(version, epsilon), version)

    def _commit(self, payload: Dict[str, Any], version: int) -> None:
        if self._wal is None:
            raise ValueError("durability manager has no active WAL writer")
        self._wal.append(payload)
        self.stats.wal_records += 1
        self.stats.wal_bytes = self._wal.bytes_written
        self.maybe_checkpoint(version)

    def maybe_checkpoint(self, version: int) -> None:
        """Run the scheduled checkpoint if ``version`` crossed the interval."""
        interval = self.config.checkpoint_interval
        if not interval:
            return
        if version - self.last_checkpoint_version >= interval:
            self.checkpoint()

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, normalize: bool = True) -> Path:
        """Normalize, persist, rotate, and prune — the full barrier.

        In replay mode (no writer) rotation and pruning are skipped; see
        :meth:`adopt`.
        """
        engine = self.engine
        if normalize:
            engine._driver.rematerialize()
        state = ckpt.engine_state(engine)
        version = int(state["version"])
        path = ckpt.write_checkpoint(self.config.path, state, fsync=self.config.fsync)
        self.last_checkpoint_version = version
        self.stats.checkpoints_written += 1
        self.stats.last_checkpoint_version = version
        if self._wal is not None:
            self._rotate(version)
            self._cleanup()
        return path

    def _rotate(self, version: int) -> None:
        assert self._wal is not None
        previous_bytes = self._wal.bytes_written
        self._wal.close()
        self._wal = walmod.WalWriter.create(
            self.config.path / walmod.wal_name(version), fsync=self.config.fsync
        )
        self._wal.bytes_written = previous_bytes

    def _cleanup(self) -> None:
        """Prune checkpoints beyond the keep policy and retired WAL segments.

        A segment is retired only when recovery from the *oldest kept*
        checkpoint could never need it: all segments strictly before the
        last segment whose start version is ≤ that checkpoint's version.
        (The crash site here models a death between the rename and the
        pruning — recovery tolerates the leftovers by construction.)
        """
        directory = self.config.path
        checkpoints = ckpt.find_checkpoints(directory)
        keep = checkpoints[-self.config.keep_checkpoints :]
        for _, path in checkpoints[: -self.config.keep_checkpoints]:
            crash_point("checkpoint-cleanup")
            path.unlink()
        if not keep:
            return
        oldest_kept = keep[0][0]
        segments = walmod.wal_segments(directory)
        last_covering = 0
        for index, (start, _) in enumerate(segments):
            if start <= oldest_kept:
                last_covering = index
        for start, path in segments[:last_covering]:
            crash_point("checkpoint-cleanup")
            path.unlink()
        for stray in directory.glob("*.tmp"):
            stray.unlink()
