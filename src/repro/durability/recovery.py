"""Crash recovery: newest valid checkpoint + WAL-tail replay, verified.

:func:`recover_engine` rebuilds a :class:`~repro.core.api.HierarchicalEngine`
from a durability directory:

1. **Checkpoint** — load the newest checkpoint that passes its CRC
   (corrupt crash residue falls back to the previous one), rebuild the
   base relations in their serialized insertion order, restore the
   driver's version / threshold base / counters / telemetry, and
   materialize the views at the restored threshold.  Because every
   checkpoint was written right after an index-normalization barrier,
   this rebuild reproduces the live engine's post-barrier state exactly.
2. **WAL tail** — scan the segments that can hold records past the
   checkpoint (torn tails and corrupt records truncate the scan with a
   logged warning) and replay each record through the engine's normal
   ingestion paths.  Scheduled checkpoint barriers are *re-hit at the
   same versions* during replay — normalization is part of the durable
   state machine, so skipping it would make the recovered engine diverge
   from the engine that never crashed.
3. **Verify** — the replayed engine must land exactly on the last
   durable record's version; anything else is a
   :class:`~repro.exceptions.DurabilityError`, never a silent divergence.

The function returns the engine with a live :class:`DurabilityManager`
already attached (appending resumes on the truncated active segment), so
``engine.apply(...)`` keeps committing where the dead process stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.data.update import Update
from repro.durability import checkpoint as ckpt
from repro.durability import wal as walmod
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityManager,
    coerce_config,
)
from repro.exceptions import DurabilityError


@dataclass
class RecoveryReport:
    """What one recovery did, for logs, tests, and the benchmark harness."""

    checkpoint_version: int
    replayed_records: int
    final_version: int
    truncated_bytes: int
    checkpoints_rewritten: int
    warnings: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "checkpoint_version": self.checkpoint_version,
            "replayed_records": self.replayed_records,
            "final_version": self.final_version,
            "truncated_bytes": self.truncated_bytes,
            "checkpoints_rewritten": self.checkpoints_rewritten,
            "warnings": list(self.warnings),
        }


def scan_tail(
    directory: Path, after_version: int
) -> Tuple[List[Dict[str, Any]], Optional[Path], int, int, List[str]]:
    """Collect every durable WAL record with version > ``after_version``.

    Returns ``(records, active_segment, active_valid_length,
    truncated_bytes, warnings)``.  Only segments from the last one whose
    start version is ≤ ``after_version`` onward can hold such records
    (rotation happens at checkpoints); earlier ones are skipped.  Cross-
    segment version continuity is enforced — a discontinuity truncates
    the tail there, like any other corruption.
    """
    segments = walmod.wal_segments(Path(directory))
    first = 0
    for index, (start, _) in enumerate(segments):
        if start <= after_version:
            first = index
    records: List[Dict[str, Any]] = []
    warnings: List[str] = []
    truncated = 0
    active_segment: Optional[Path] = None
    active_valid_length = 0
    last_version: Optional[int] = None
    for start, path in segments[first:]:
        scan = walmod.scan_wal(path, last_version=last_version)
        warnings.extend(scan.warnings)
        truncated += scan.truncated_bytes
        active_segment = path
        active_valid_length = scan.valid_length
        if scan.records:
            last_version = int(scan.records[-1]["v"])
        elif last_version is None:
            last_version = start
        records.extend(
            record for record in scan.records if int(record["v"]) > after_version
        )
        if scan.truncated_bytes:
            # Everything past a defect is unreachable crash residue; a
            # later segment cannot legitimately continue from it.
            break
    return records, active_segment, active_valid_length, truncated, warnings


def _apply_record(engine, record: Dict[str, Any]) -> None:
    kind = record["kind"]
    if kind == "update":
        engine.apply(
            Update(record["rel"], tuple(record["tup"]), int(record["m"]))
        )
    elif kind == "batch":
        engine.apply_batch(walmod.decode_batch(record))
    elif kind == "retune":
        engine.retune(float(record["eps"]))
    else:
        raise DurabilityError(f"unknown WAL record kind {kind!r}")


def recover_engine(
    directory: Union[str, Path],
    durability: Optional[Union[DurabilityConfig, str, Path]] = None,
):
    """Rebuild the durable engine in ``directory``; returns ``(engine, report)``.

    ``durability`` overrides the config the recovered engine resumes
    with (fsync policy, checkpoint interval, keep count); by default the
    directory itself with default policy.  Raises
    :class:`~repro.exceptions.DurabilityError` when the directory's
    contents cannot be a crash residue of this code (no valid checkpoint
    at all, a WAL that does not extend its checkpoint, or a replay that
    misses the expected final version).
    """
    from repro.core.api import HierarchicalEngine

    directory = Path(directory)
    config = coerce_config(durability if durability is not None else directory)
    try:
        state, _, ckpt_warnings = ckpt.load_newest_checkpoint(directory)
    except FileNotFoundError as exc:
        raise DurabilityError(str(exc)) from exc
    checkpoint_version = int(state["version"])

    engine = HierarchicalEngine(
        state["query"],
        epsilon=float(state["epsilon"]),
        mode=state["mode"],
        enable_rebalancing=bool(state["enable_rebalancing"]),
        copy_database=False,
        telemetry=False if state.get("telemetry") is None else True,
    )
    engine._restore_from_checkpoint(state)

    records, active_segment, valid_length, truncated, warnings = scan_tail(
        directory, checkpoint_version
    )
    if records and int(records[0]["v"]) != checkpoint_version + 1:
        raise DurabilityError(
            f"WAL tail starts at version {records[0]['v']} but the checkpoint "
            f"is at {checkpoint_version}; the log does not extend the checkpoint"
        )

    manager = DurabilityManager(engine, config)
    manager.adopt(checkpoint_version)
    checkpoints_before = manager.stats.checkpoints_written
    for record in records:
        _apply_record(engine, record)
        manager.maybe_checkpoint(int(record["v"]))

    final_version = int(records[-1]["v"]) if records else checkpoint_version
    if engine.version != final_version:
        raise DurabilityError(
            f"replay landed on version {engine.version}, expected {final_version}"
        )
    manager.stats.recovered_records = len(records)
    manager.resume_writer(active_segment, valid_length)
    engine._attach_durability(manager)
    report = RecoveryReport(
        checkpoint_version=checkpoint_version,
        replayed_records=len(records),
        final_version=final_version,
        truncated_bytes=truncated,
        checkpoints_rewritten=manager.stats.checkpoints_written - checkpoints_before,
        warnings=[*ckpt_warnings, *warnings],
    )
    return engine, report
