"""The write-ahead log: length-prefixed, CRC32-checksummed redo records.

File format (``wal-<v>.log``, where ``v`` is the engine version the
segment starts *after*)::

    REPROWAL1\\n                     10-byte magic
    [4B big-endian payload length]
    [4B big-endian CRC32 of payload]
    [payload: compact JSON]          repeated per record

Each payload carries the engine version it produced (``"v"``) and one of
three kinds — ``update``, ``batch`` (relation-grouped net deltas in
first-touched order, plus the source-update count), or ``retune``.
Versions are strictly increasing by one within and across segments, so a
duplicate or out-of-order version is corruption by construction and the
scanner truncates there, exactly as it does for a torn tail or a CRC
mismatch.

The durability contract is *commit = flushed + fsynced*: the writer
appends after the in-memory ingest succeeded (a redo log of **accepted**
events — a rejected over-delete is never logged, so replay can never be
poisoned by it) and fsyncs before the commit returns.  The crash model
is process death: a record cut short mid-write is a torn tail; a record
flushed but not yet fsynced is assumed to survive.  :func:`scan_wal`
never raises on crash residue — it returns the longest valid prefix, the
byte offset where it ends, and a human-readable warning per defect,
logged on ``repro.durability``.
"""

from __future__ import annotations

import io
import json
import logging
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.data.update import Update, UpdateBatch
from repro.durability.crashpoints import crash_point, would_crash

LOGGER = logging.getLogger("repro.durability")

WAL_MAGIC = b"REPROWAL1\n"
_HEADER = struct.Struct(">II")

#: Upper bound on a single record payload; anything larger is corruption
#: (a torn length prefix read as a huge integer), not a real record.
MAX_RECORD_BYTES = 1 << 26


def wal_name(version: int) -> str:
    """Segment filename for the WAL that starts after ``version``."""
    return f"wal-{version:016d}.log"


def wal_segments(directory: Path) -> "List[tuple]":
    """All WAL segments in ``directory`` as ``(start_version, path)``, sorted.

    ``start_version`` is parsed from the filename: the engine version the
    segment's records follow (its first record, if any, has version
    ``start_version + 1`` — unless older records were already retired by
    a later rotation).
    """
    found = []
    for path in Path(directory).glob("wal-*.log"):
        try:
            start = int(path.name[len("wal-") : -len(".log")])
        except ValueError:
            continue
        found.append((start, path))
    return sorted(found)


def encode_update(version: int, update: Update) -> Dict[str, Any]:
    """WAL payload for a single-tuple update committed at ``version``."""
    return {
        "v": version,
        "kind": "update",
        "rel": update.relation,
        "tup": list(update.tuple),
        "m": update.multiplicity,
    }


def encode_batch(version: int, batch: UpdateBatch) -> Dict[str, Any]:
    """WAL payload for a consolidated batch committed at ``version``.

    Relation groups and tuples keep their first-touched order — batch
    ingestion order is part of the state the replay must reproduce.
    """
    deltas = [
        [relation, [[list(tup), mult] for tup, mult in group.items()]]
        for relation, group in batch.deltas_by_relation().items()
    ]
    return {"v": version, "kind": "batch", "deltas": deltas, "src": batch.source_count}


def encode_retune(version: int, epsilon: float) -> Dict[str, Any]:
    """WAL payload for a retune committed at ``version``."""
    return {"v": version, "kind": "retune", "eps": epsilon}


def decode_batch(payload: Dict[str, Any]) -> UpdateBatch:
    """Rebuild the :class:`UpdateBatch` of a ``batch`` payload."""
    batch = UpdateBatch()
    for relation, entries in payload["deltas"]:
        for tup, mult in entries:
            batch.add_delta(relation, tuple(tup), mult)
    batch._source_count = int(payload["src"])
    return batch


def _frame(payload: Dict[str, Any]) -> bytes:
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(data), zlib.crc32(data)) + data


class WalWriter:
    """Appends framed records to one WAL segment, fsyncing per commit."""

    def __init__(self, path: Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.records_written = 0
        self.bytes_written = 0
        self._fh: Optional[io.BufferedWriter] = None

    @classmethod
    def create(cls, path: Path, fsync: bool = True) -> "WalWriter":
        """Start a fresh segment (magic written and fsynced immediately)."""
        writer = cls(path, fsync=fsync)
        writer._fh = open(path, "wb")
        writer._fh.write(WAL_MAGIC)
        writer._fh.flush()
        if fsync:
            os.fsync(writer._fh.fileno())
        return writer

    @classmethod
    def resume(cls, path: Path, valid_length: int, fsync: bool = True) -> "WalWriter":
        """Reopen a scanned segment for appending after crash residue.

        Physically truncates the file to ``valid_length`` (the scanner's
        longest-valid-prefix offset) so a torn tail can never shadow the
        records appended after recovery.
        """
        writer = cls(path, fsync=fsync)
        writer._fh = open(path, "r+b")
        writer._fh.truncate(valid_length)
        writer._fh.seek(valid_length)
        writer._fh.flush()
        if fsync:
            os.fsync(writer._fh.fileno())
        return writer

    def append(self, payload: Dict[str, Any]) -> None:
        """Frame, write, flush, and fsync one record (the commit point)."""
        if self._fh is None:
            raise ValueError("WAL writer is closed")
        record = _frame(payload)
        crash_point("wal-append")
        if would_crash("wal-torn"):
            # Model a death halfway through the write: leave a real torn
            # tail on disk for the scanner to repair.
            self._fh.write(record[: max(1, len(record) // 2)])
            self._fh.flush()
        crash_point("wal-torn")
        self._fh.write(record)
        self._fh.flush()
        crash_point("wal-fsync")
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.records_written += 1
        self.bytes_written += len(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None


@dataclass
class WalScan:
    """Result of scanning one segment: the longest valid record prefix."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    valid_length: int = len(WAL_MAGIC)
    truncated_bytes: int = 0
    warnings: List[str] = field(default_factory=list)


def scan_wal(path: Path, last_version: Optional[int] = None) -> WalScan:
    """Read every valid record of a segment, truncating at the first defect.

    ``last_version`` seeds the strict ``v == previous + 1`` continuity
    check across segments (``None`` accepts any starting version).  Torn
    tails, CRC mismatches, unparseable payloads, and version
    discontinuities all end the scan with a warning — never an exception.
    """
    scan = WalScan()
    path = Path(path)
    data = path.read_bytes()
    if not data.startswith(WAL_MAGIC):
        scan.valid_length = 0
        scan.truncated_bytes = len(data)
        _warn(scan, f"{path.name}: bad or missing WAL magic; ignoring the file")
        return scan
    offset = len(WAL_MAGIC)
    version = last_version
    while offset < len(data):
        defect = None
        record_end = len(data)
        if offset + _HEADER.size > len(data):
            defect = "torn record header"
        else:
            length, crc = _HEADER.unpack_from(data, offset)
            record_end = offset + _HEADER.size + length
            payload = data[offset + _HEADER.size : record_end]
            if length > MAX_RECORD_BYTES:
                defect = f"implausible record length {length}"
            elif len(payload) < length:
                defect = f"torn record payload ({len(payload)}/{length} bytes)"
            elif zlib.crc32(payload) != crc:
                defect = "CRC mismatch"
            else:
                try:
                    decoded = json.loads(payload.decode("utf-8"))
                    record_version = int(decoded["v"])
                except (ValueError, KeyError, TypeError):
                    defect = "unparseable payload"
                else:
                    if version is not None and record_version != version + 1:
                        defect = (
                            f"version {record_version} does not extend "
                            f"{version} (duplicate or out-of-order record)"
                        )
        if defect is not None:
            scan.truncated_bytes = len(data) - scan.valid_length
            _warn(
                scan,
                f"{path.name}: {defect} at offset {offset}; truncating "
                f"{scan.truncated_bytes} byte(s) to the last durable prefix",
            )
            break
        scan.records.append(decoded)
        version = record_version
        offset = record_end
        scan.valid_length = offset
    return scan


def _warn(scan: WalScan, message: str) -> None:
    scan.warnings.append(message)
    LOGGER.warning(message)
