"""Fault-injection hooks for the durability layer: crash *here*, on demand.

Every I/O step of the WAL and checkpoint writers calls
:func:`crash_point` with a site name from :data:`SITES` before (or, for
fsync sites, after) performing the real work.  In production the call is
a dictionary miss — no injector installed, nothing happens.  Tests
install a :class:`CrashPointInjector` (via :func:`install_injector`, the
:func:`injected` context manager, or the ``REPRO_CRASH_POINT``
environment variable, which also reaches worker *processes* because it
is read at import time) and the N-th hit of the armed site raises
:class:`SimulatedCrashError`, modeling a process death at exactly that
instruction.

The crash model is *process kill*, not power loss: bytes already handed
to the OS (flushed) survive, bytes still in the Python buffer do not,
and an ``os.replace`` either happened or did not.  The torn-tail site
(``wal-torn``) additionally writes *half* a record before dying so the
scan-and-truncate reader has something real to repair.

Two modes:

* **armed** — ``CrashPointInjector("wal-append", hits=3)`` raises on the
  third hit of ``wal-append``; the site ``"any"`` arms a countdown over
  *all* sites, which is what lets a harness enumerate every crash point
  of a workload without knowing the sites in advance.
* **recorder** — ``CrashPointInjector(None)`` never raises but counts
  hits per site; a counting pass over a workload yields the exhaustive
  sweep bound for the armed passes that follow.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Every instrumented crash site, in the order a commit path reaches them.
SITES = (
    "wal-append",        # before any bytes of a WAL record are written
    "wal-torn",          # half the record's bytes written, then death
    "wal-fsync",         # after flush, before fsync returns
    "checkpoint-write",  # before any bytes of the checkpoint temp file
    "checkpoint-fsync",  # after the temp file is flushed, before fsync
    "checkpoint-rename", # before the atomic os.replace into place
    "checkpoint-cleanup",# after the rename, before old files are rotated
    "reshard-prepare",   # new fleet built, before the buffered tail replays
    "reshard-tail",      # between two tail events during reshard replay
    "reshard-barrier",   # before the fleet-meta os.replace (the barrier)
    "reshard-swap",      # after the barrier rename, before old-fleet cleanup
)

#: Environment variable read at import: ``"<site>:<hits>"``, e.g.
#: ``"wal-fsync:2"`` or ``"any:17"``.
ENV_VAR = "REPRO_CRASH_POINT"


class SimulatedCrashError(Exception):
    """An injected crash: the process "died" at an instrumented site.

    Deliberately **not** a :class:`~repro.exceptions.ReproError` — the
    library's own ``except ReproError`` handlers must treat it like a
    real ``SIGKILL`` (i.e. never see it), not like a library error.
    """

    def __init__(self, site: str, hit: int) -> None:
        self.site = site
        self.hit = hit
        super().__init__(f"simulated crash at {site} (hit {hit})")


class CrashPointInjector:
    """Counts crash-site hits and raises at an armed (site, hit) pair."""

    def __init__(self, site: Optional[str], hits: int = 1) -> None:
        if site is not None and site != "any" and site not in SITES:
            raise ValueError(f"unknown crash site {site!r}; expected one of {SITES}")
        if hits < 1:
            raise ValueError("hits must be >= 1")
        self.site = site
        self.hits = hits
        self.counts: Dict[str, int] = {name: 0 for name in SITES}
        self.fired = False

    @property
    def total_hits(self) -> int:
        """Total crash-site hits observed (the exhaustive-sweep bound)."""
        return sum(self.counts.values())

    def _armed_count(self) -> int:
        if self.site == "any":
            return self.total_hits
        return self.counts.get(self.site or "", 0)

    def peek(self, site: str) -> bool:
        """Would the *next* hit of ``site`` raise?  (No state change.)

        The torn-tail writer asks this before the write so it can emit
        half a record when the answer is yes.
        """
        if self.fired or self.site is None:
            return False
        if self.site not in ("any", site):
            return False
        return self._armed_count() + 1 >= self.hits

    def hit(self, site: str) -> None:
        """Record one hit of ``site``; raise if it is the armed one."""
        if site not in self.counts:
            raise ValueError(f"unknown crash site {site!r}")
        self.counts[site] += 1
        if self.fired or self.site is None:
            return
        if self.site in ("any", site) and self._armed_count() >= self.hits:
            self.fired = True
            raise SimulatedCrashError(site, self.counts[site])


_injector: Optional[CrashPointInjector] = None


def install_injector(injector: Optional[CrashPointInjector]) -> None:
    """Install ``injector`` process-wide (``None`` uninstalls)."""
    global _injector
    _injector = injector


def current_injector() -> Optional[CrashPointInjector]:
    """The process-wide injector, or ``None`` when fault injection is off."""
    return _injector


@contextmanager
def injected(injector: CrashPointInjector) -> Iterator[CrashPointInjector]:
    """Install ``injector`` for the duration of the ``with`` block."""
    previous = _injector
    install_injector(injector)
    try:
        yield injector
    finally:
        install_injector(previous)


def crash_point(site: str) -> None:
    """Hook called by the WAL/checkpoint writers at every instrumented site."""
    if _injector is not None:
        _injector.hit(site)


def would_crash(site: str) -> bool:
    """True iff the next :func:`crash_point` call for ``site`` would raise."""
    return _injector is not None and _injector.peek(site)


def _injector_from_env() -> Optional[CrashPointInjector]:
    """Build an injector from ``REPRO_CRASH_POINT`` (worker-process path)."""
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    site, _, count = spec.partition(":")
    return CrashPointInjector(site, int(count) if count else 1)


# Worker processes cannot be monkeypatched from the test process; they
# inherit the environment instead, so an armed spec in REPRO_CRASH_POINT
# arms this process at import time.
if os.environ.get(ENV_VAR):  # pragma: no cover - exercised in subprocesses
    install_injector(_injector_from_env())
