"""Durability: write-ahead logging, checkpoints, recovery, supervision.

The engine's views are expensive to build and cheap to lose: everything
lives in memory, so a process death costs the whole ε-partitioned state.
This package makes a dynamic engine *durable* behind one constructor
argument::

    engine = HierarchicalEngine(query, durability="/var/lib/repro/q1")
    engine.load(db)            # version-0 checkpoint + fresh WAL
    engine.apply_batch(batch)  # ingested, logged, fsynced, acked

    engine, report = HierarchicalEngine.recover("/var/lib/repro/q1")

Layout:

* :mod:`~repro.durability.wal` — length-prefixed, CRC32-checksummed redo
  records of accepted events, fsynced per commit; torn tails are
  detected and truncated on recovery.
* :mod:`~repro.durability.checkpoint` — atomic-rename snapshots of one
  engine version: base relations in insertion order plus the driver
  state (version, Definition-51 threshold base, counters, telemetry).
* :mod:`~repro.durability.manager` — the commit path: WAL append, the
  version-keyed checkpoint schedule (each checkpoint doubles as an
  index-normalization barrier, which is what makes replay byte-exact),
  segment rotation, and retention.
* :mod:`~repro.durability.recovery` — newest valid checkpoint + WAL-tail
  replay through the normal ingestion paths, with the final version
  verified.
* :mod:`~repro.durability.crashpoints` — the fault-injection hooks the
  kill-anywhere conformance harness arms at every append/fsync/rename.
* :mod:`~repro.durability.supervisor` — watches a sharded deployment's
  worker processes and restart-and-recovers a dead shard from its own
  durability directory while the others keep serving.
"""

from repro.durability.crashpoints import (
    SITES,
    CrashPointInjector,
    SimulatedCrashError,
    current_injector,
    injected,
    install_injector,
)
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityManager,
    DurabilityStats,
    coerce_config,
)
from repro.durability.recovery import RecoveryReport, recover_engine
from repro.durability.supervisor import ShardSupervisor

__all__ = [
    "SITES",
    "CrashPointInjector",
    "SimulatedCrashError",
    "current_injector",
    "injected",
    "install_injector",
    "DurabilityConfig",
    "DurabilityManager",
    "DurabilityStats",
    "coerce_config",
    "RecoveryReport",
    "recover_engine",
    "ShardSupervisor",
]
