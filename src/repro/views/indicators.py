"""Heavy and light indicator view trees (Figure 10).

For a bound join variable ``X`` that violates the free-connex (static) or
δ₀-hierarchical (dynamic) property, the skew-aware construction partitions
the relations below ``X`` on ``keys = anc(X) ∪ {X}`` and keeps two indicator
views over those key values:

* the *light* indicator ``L(keys)`` joins the light parts of the relations
  below ``X`` (so a key is in ``L`` exactly when it exists in every relation
  and is light in all of them);
* the *heavy* indicator ``H(keys) = All(keys) ⋈ ∄L(keys)`` contains the keys
  that exist in every relation and are heavy in at least one.

The ``All`` and ``L`` view trees are ordinary ``BuildVT`` trees (their
residual queries are δ₀-hierarchical, hence cheap to build and maintain).
The heavy indicator is exposed to the skew-aware trees through a
set-semantics relation ``∃H`` whose support is recomputed from the roots of
``All`` and ``L``: ``∃H(t) = 1`` iff ``All(t) ≠ 0`` and ``L(t) = 0``.  This
is exactly the support the paper maintains through ``UpdateIndTree``
(Figure 18); keeping it as a derived set avoids materializing the ``∄``
complement view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.data.relation import Relation
from repro.data.schema import Schema, ValueTuple
from repro.vo.variable_order import VariableNode
from repro.views.build import LeafFactory, build_view_tree
from repro.views.view import NameGenerator, ViewTreeNode


@dataclass
class IndicatorTriple:
    """The (All, L, ∃H) triple of Figure 10 for one bound variable.

    ``keys`` is the (sorted) partition schema ``anc(X) ∪ {X}``;
    ``relation_names`` records which base relations feed the ``All`` tree so
    the maintenance layer can find the triples affected by an update.
    """

    variable: str
    keys: Schema
    all_tree: ViewTreeNode
    light_tree: ViewTreeNode
    exists_heavy: Relation
    relation_names: FrozenSet[str]

    def all_root(self) -> Relation:
        return self.all_tree.relation()

    def light_root(self) -> Relation:
        return self.light_tree.relation()

    def heavy_support(self, key: ValueTuple) -> bool:
        """Whether ``key`` should currently be in the heavy indicator."""
        return (
            self.all_root().multiplicity(key) != 0
            and self.light_root().multiplicity(key) == 0
        )

    def refresh_key(self, key: ValueTuple) -> int:
        """Synchronise ``∃H`` for one key; return the support change (−1/0/+1).

        This is the effect of the two ``UpdateIndTree`` calls of Figure 19
        combined: after the ``All`` tree and the light tree have absorbed an
        update, the support of the heavy indicator at the update's key either
        appears, disappears, or stays unchanged.
        """
        should_exist = self.heavy_support(key)
        exists_now = self.exists_heavy.multiplicity(key) != 0
        if should_exist and not exists_now:
            self.exists_heavy.apply_delta(key, 1)
            return 1
        if not should_exist and exists_now:
            self.exists_heavy.apply_delta(key, -1)
            return -1
        return 0

    def rebuild_support(self) -> None:
        """Recompute the full ``∃H`` support (used after major rebalancing)."""
        self.exists_heavy.clear()
        light_root = self.light_root()
        for key in self.all_root().tuples():
            if light_root.multiplicity(key) == 0:
                self.exists_heavy.apply_delta(key, 1)

    def check_support(self) -> bool:
        """Consistency check used by tests: ``∃H`` matches its definition."""
        expected = {
            key
            for key in self.all_root().tuples()
            if self.light_root().multiplicity(key) == 0
        }
        actual = set(self.exists_heavy.tuples())
        return expected == actual


def build_indicator_triple(
    vo_node: VariableNode,
    base_factory: LeafFactory,
    light_factory: LeafFactory,
    mode: str,
    namer: NameGenerator,
) -> IndicatorTriple:
    """``IndicatorVTs`` (Figure 10) for the subtree rooted at ``vo_node``.

    ``light_factory`` must produce leaves over the light parts partitioned on
    ``keys = anc(X) ∪ {X}``; the caller (the skew-aware τ) owns the partition
    registry and passes a factory already bound to the right key schema.
    """
    x = vo_node.variable
    keys: Schema = tuple(sorted(set(vo_node.ancestors()) | {x}))
    key_set = frozenset(keys)
    all_tree = build_view_tree(f"All_{x}", vo_node, key_set, mode, base_factory, namer)
    light_tree = build_view_tree(f"L_{x}", vo_node, key_set, mode, light_factory, namer)
    exists_heavy = Relation(namer.fresh(f"H_{x}"), keys)
    relation_names = frozenset(atom.relation for atom in vo_node.subtree_atoms())
    return IndicatorTriple(
        variable=x,
        keys=keys,
        all_tree=all_tree,
        light_tree=light_tree,
        exists_heavy=exists_heavy,
        relation_names=relation_names,
    )
