"""Skew-aware view-tree construction — the τ algorithm of Figure 11.

Given a canonical variable order of a hierarchical query, τ produces a set of
view trees that together encode the query result (Proposition 20):

* wherever the residual query at a node is free-connex (static mode) or
  δ₀-hierarchical (dynamic mode), a single ``BuildVT`` tree suffices;
* at a free variable the child strategies are combined (one tree per
  combination of child trees);
* at a bound variable that violates the property, the construction forks
  into the *light* strategy (a ``BuildVT`` tree over the light parts of the
  relations, partitioned on ``anc(X) ∪ {X}``) and the *heavy* strategies
  (the child combinations joined with the heavy indicator ``∃H``).

The function returns a :class:`SkewAwarePlan` bundling, for every connected
component of the variable order, its list of view trees, plus the indicator
triples and the partition registry shared by all of them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.data.database import Database
from repro.data.partition import PartitionRegistry
from repro.query.classes import delta_index, is_hierarchical
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.hypergraph import is_free_connex
from repro.rings.base import Ring, check_ring_laws
from repro.rings.library import COUNTING
from repro.vo.variable_order import AtomNode, VariableNode, VariableOrder, VONode
from repro.views.build import (
    DYNAMIC_MODE,
    STATIC_MODE,
    aux_view,
    build_view_tree,
    make_light_part_leaf_factory,
    make_relation_leaf_factory,
    new_view_tree,
)
from repro.views.indicators import IndicatorTriple, build_indicator_triple
from repro.views.view import (
    IndicatorLeaf,
    NameGenerator,
    RelationLeaf,
    ViewNode,
    ViewTreeNode,
)


@dataclass
class SkewAwarePlan:
    """Everything the engine needs to materialize, enumerate, and maintain."""

    query: ConjunctiveQuery
    mode: str
    order: VariableOrder
    # one list of strategy trees per connected component of the query
    component_trees: List[List[ViewTreeNode]] = field(default_factory=list)
    indicator_triples: List[IndicatorTriple] = field(default_factory=list)
    partitions: PartitionRegistry = field(default_factory=PartitionRegistry)
    # Payload algebra of the materialized multiplicities (repro.rings).
    # Counting — the implicit pre-ring payload — keeps the plan
    # byte-identical to the pre-ring engine; non-counting rings are carried
    # by the maintained aggregate states fed from the roots' result deltas.
    ring: Ring = COUNTING

    def annotate_ring(self, ring: Ring) -> "SkewAwarePlan":
        """Annotate every tree of the plan with ``ring`` (returns ``self``).

        The ring's abelian-group laws are what the maintenance machinery
        relies on, so they are spot-checked here rather than assumed — an
        unlawful ring fails loudly at annotation time instead of silently
        corrupting maintained payloads.
        """
        check_ring_laws(ring, [(1, 1), (2, 2), (3, -3)])
        self.ring = ring
        for tree in self.all_trees():
            tree.annotate_ring(ring)
        return self

    def all_trees(self) -> Tuple[ViewTreeNode, ...]:
        """All skew-aware strategy trees across components."""
        return tuple(tree for trees in self.component_trees for tree in trees)

    def trees_referencing(self, source_name: str) -> Tuple[ViewTreeNode, ...]:
        """Strategy trees whose leaves reference the relation ``source_name``."""
        return tuple(
            tree for tree in self.all_trees() if source_name in tree.source_names()
        )

    def triples_referencing(self, relation_name: str) -> Tuple[IndicatorTriple, ...]:
        """Indicator triples whose All tree is fed by ``relation_name``."""
        return tuple(
            triple
            for triple in self.indicator_triples
            if relation_name in triple.relation_names
        )

    def describe(self) -> str:
        """Human-readable rendering of the whole plan (used by ``explain``)."""
        lines = [
            f"mode: {self.mode}",
            f"query: {self.query}",
            f"payload ring: {self.ring.name}",
        ]
        for i, trees in enumerate(self.component_trees):
            lines.append(f"component {i}: {len(trees)} strategy tree(s)")
            for tree in trees:
                lines.append(tree.pretty(1))
        if self.indicator_triples:
            lines.append("indicator triples:")
            for triple in self.indicator_triples:
                lines.append(
                    f"  {triple.exists_heavy.name} on keys ({', '.join(triple.keys)})"
                )
        return "\n".join(lines)


class _TauBuilder:
    """Stateful helper carrying the shared context of one τ run."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        database: Database,
        mode: str,
        namer: NameGenerator,
        registry: PartitionRegistry,
    ) -> None:
        self.query = query
        self.database = database
        self.mode = mode
        self.namer = namer
        self.registry = registry
        self.indicator_triples: List[IndicatorTriple] = []
        self.free = query.free_variables
        self.base_factory = make_relation_leaf_factory(database, query)

    # ------------------------------------------------------------------
    def residual_query(self, vo_node: VariableNode) -> ConjunctiveQuery:
        """The residual query ``Q_X(F_X)`` of Figure 11 (lines 3-4)."""
        ancestors = set(vo_node.ancestors())
        subtree_vars = vo_node.subtree_variables()
        head = tuple(sorted(ancestors | (self.free & subtree_vars)))
        return ConjunctiveQuery(head, vo_node.subtree_atoms(), name=f"Q_{vo_node.variable}")

    def residual_is_easy(self, vo_node: VariableNode) -> bool:
        """Free-connex test in static mode, δ₀-hierarchical test in dynamic mode."""
        residual = self.residual_query(vo_node)
        if self.mode == STATIC_MODE:
            return is_free_connex(residual)
        return is_hierarchical(residual) and delta_index(residual) == 0

    # ------------------------------------------------------------------
    def tau(self, vo_node: VONode) -> List[ViewTreeNode]:
        """The recursive construction of Figure 11."""
        if isinstance(vo_node, AtomNode):
            return [self.base_factory(vo_node.atom)]
        assert isinstance(vo_node, VariableNode)
        x = vo_node.variable
        keys = set(vo_node.ancestors()) | {x}
        residual = self.residual_query(vo_node)
        if self.residual_is_easy(vo_node):
            tree = build_view_tree(
                "V",
                vo_node,
                frozenset(residual.head),
                self.mode,
                self.base_factory,
                self.namer,
            )
            return [tree]
        child_tree_lists = [self.tau(child) for child in vo_node.children]
        if x in self.free:
            return self._combine(vo_node, keys, child_tree_lists, indicator=None)
        # bound variable violating the property: build indicators, fork
        light_factory = make_light_part_leaf_factory(
            self.database, self.registry, tuple(sorted(keys))
        )
        triple = build_indicator_triple(
            vo_node, self.base_factory, light_factory, self.mode, self.namer
        )
        self.indicator_triples.append(triple)
        heavy_trees = self._combine(vo_node, keys, child_tree_lists, indicator=triple)
        light_tree = build_view_tree(
            "V",
            vo_node,
            frozenset(residual.head),
            self.mode,
            light_factory,
            self.namer,
        )
        return heavy_trees + [light_tree]

    # ------------------------------------------------------------------
    def _combine(
        self,
        vo_node: VariableNode,
        keys,
        child_tree_lists: Sequence[List[ViewTreeNode]],
        indicator,
    ) -> List[ViewTreeNode]:
        """Lines 9-11 / 13-15 of Figure 11: one tree per child combination.

        When several combinations exist, the chosen child trees are
        deep-copied (inner views only — leaves stay shared) so each strategy
        tree owns its materialized views and can absorb delta propagation
        independently of its siblings.
        """
        combos = list(itertools.product(*child_tree_lists))
        trees: List[ViewTreeNode] = []
        for combo in combos:
            chosen: List[ViewTreeNode] = []
            for tree in combo:
                if len(combos) > 1 and isinstance(tree, ViewNode):
                    chosen.append(tree.copy(self.namer))
                else:
                    chosen.append(tree)
            hatted = [
                aux_view(child, tree, self.mode, self.namer)
                for child, tree in zip(vo_node.children, chosen)
            ]
            subtrees: List[ViewTreeNode] = []
            if indicator is not None:
                subtrees.append(
                    IndicatorLeaf(indicator.keys, indicator.exists_heavy)
                )
            subtrees.extend(hatted)
            trees.append(
                new_view_tree(f"V_{vo_node.variable}", keys, subtrees, self.namer)
            )
        return trees


def build_skew_aware_plan(
    query: ConjunctiveQuery,
    order: VariableOrder,
    database: Database,
    mode: str = DYNAMIC_MODE,
) -> SkewAwarePlan:
    """Run τ (Figure 11) over every connected component of the variable order."""
    if mode not in (STATIC_MODE, DYNAMIC_MODE):
        raise ValueError(f"unknown mode {mode!r}")
    namer = NameGenerator()
    registry = PartitionRegistry()
    plan = SkewAwarePlan(query=query, mode=mode, order=order, partitions=registry)
    builder = _TauBuilder(query, database, mode, namer, registry)
    for root in order.roots:
        plan.component_trees.append(builder.tau(root))
    plan.indicator_triples = builder.indicator_triples
    return plan
