"""View trees: BuildVT / NewVT / AuxView / IndicatorVTs / skew-aware τ."""

from repro.views.build import (
    DYNAMIC_MODE,
    STATIC_MODE,
    aux_view,
    build_view_tree,
    new_view_tree,
)
from repro.views.indicators import IndicatorTriple, build_indicator_triple
from repro.views.skew import SkewAwarePlan, build_skew_aware_plan
from repro.views.view import (
    IndicatorLeaf,
    LeafNode,
    LightPartLeaf,
    NameGenerator,
    RelationLeaf,
    ViewNode,
    ViewTreeNode,
)

__all__ = [
    "DYNAMIC_MODE",
    "STATIC_MODE",
    "IndicatorLeaf",
    "IndicatorTriple",
    "LeafNode",
    "LightPartLeaf",
    "NameGenerator",
    "RelationLeaf",
    "SkewAwarePlan",
    "ViewNode",
    "ViewTreeNode",
    "aux_view",
    "build_indicator_triple",
    "build_skew_aware_plan",
    "build_view_tree",
    "new_view_tree",
]
