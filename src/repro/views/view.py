"""View-tree node classes.

A *view tree* (Section 4 of the paper) is a tree whose leaves reference
relations (base relations, light parts of partitions, or heavy-indicator
relations) and whose inner nodes are materialized views defined over the join
of their children, projected onto the node schema.

The classes here are purely structural: materialization lives in
:mod:`repro.engine.materialize`, enumeration in :mod:`repro.enumeration`, and
maintenance in :mod:`repro.ivm`.  Leaves *share* the underlying
:class:`~repro.data.relation.Relation` objects (base relations, light parts,
and indicator relations are updated exactly once per update by the
maintenance layer), whereas inner views are private to their tree.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.query.atom import Atom
from repro.rings.base import Ring
from repro.rings.library import COUNTING


class NameGenerator:
    """Generates unique view names within one query plan."""

    def __init__(self) -> None:
        self._counters: Dict[str, itertools.count] = {}

    def fresh(self, base: str) -> str:
        counter = self._counters.setdefault(base, itertools.count())
        return f"{base}#{next(counter)}"


class ViewTreeNode:
    """Base class of view-tree nodes.

    Every node carries a *ring annotation* (:mod:`repro.rings`) naming the
    payload algebra of its materialized multiplicities.  The default is the
    counting ring — the payload the engine has always carried implicitly,
    under which annotated trees are byte-identical to the pre-ring engine.
    Non-counting rings keep the counting payload inside the tree (the view
    contents *are* supports) and carry their ring element in the payload
    channel of the maintained aggregate state fed by the root's result
    deltas; see ``docs/architecture.md`` §16.
    """

    def __init__(self, name: str, schema: Schema, ring: Optional[Ring] = None) -> None:
        self.name = name
        self.schema: Schema = tuple(schema)
        self.ring: Ring = ring if ring is not None else COUNTING

    def annotate_ring(self, ring: Ring) -> "ViewTreeNode":
        """Annotate this subtree's payload ring (returns ``self``)."""
        self.ring = ring
        for child in self.children:
            child.annotate_ring(ring)
        return self

    # -- structural interface ------------------------------------------------
    @property
    def children(self) -> Tuple["ViewTreeNode", ...]:
        return ()

    def relation(self) -> Relation:
        """The relation holding this node's content (materialized or referenced)."""
        raise NotImplementedError

    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> Iterator["LeafNode"]:
        """All leaf nodes of the subtree, in left-to-right order."""
        if isinstance(self, LeafNode):
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def nodes(self) -> Iterator["ViewTreeNode"]:
        """All nodes of the subtree in pre-order."""
        yield self
        for child in self.children:
            yield from child.nodes()

    def views(self) -> Iterator["ViewNode"]:
        """All inner (materialized) view nodes of the subtree in pre-order."""
        for node in self.nodes():
            if isinstance(node, ViewNode):
                yield node

    def variables(self) -> FrozenSet[str]:
        """All variables appearing anywhere in the subtree."""
        result = set(self.schema)
        for child in self.children:
            result.update(child.variables())
        return frozenset(result)

    def source_names(self) -> FrozenSet[str]:
        """Names of the relations referenced by the leaves of this subtree."""
        return frozenset(leaf.source_name for leaf in self.leaves())

    def find_leaves(self, source_name: str) -> Tuple["LeafNode", ...]:
        """Leaves referencing the relation called ``source_name``."""
        return tuple(
            leaf for leaf in self.leaves() if leaf.source_name == source_name
        )

    def pretty(self, indent: int = 0) -> str:
        """Render the tree as an indented string (used by ``explain`` and docs)."""
        pad = "  " * indent
        label = f"{self.name}({', '.join(self.schema)})"
        if self.ring.name != "counting":
            label += f" ⟨{self.ring.name}⟩"
        lines = [f"{pad}{label}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, schema={self.schema!r})"


class LeafNode(ViewTreeNode):
    """A leaf referencing a shared relation object.

    ``source_name`` identifies the referenced relation for the maintenance
    layer; ``schema`` names the columns with the query variables of the atom
    the leaf stands for (the stored relation may use different column names —
    the mapping is positional).
    """

    def __init__(self, name: str, schema: Schema, relation: Relation) -> None:
        super().__init__(name, schema)
        self._relation = relation

    def relation(self) -> Relation:
        return self._relation

    @property
    def source_name(self) -> str:
        return self._relation.name

    def copy(self) -> "LeafNode":
        """Leaves are shared by design; copying returns a new node wrapper."""
        return type(self)(self.name, self.schema, self._relation)


class RelationLeaf(LeafNode):
    """A leaf referencing a base relation through a query atom."""

    def __init__(self, atom: Atom, relation: Relation) -> None:
        super().__init__(str(atom), atom.variables, relation)
        self.atom = atom

    def copy(self) -> "RelationLeaf":
        return RelationLeaf(self.atom, self._relation)


class LightPartLeaf(LeafNode):
    """A leaf referencing the light part ``R^keys`` of a partitioned relation."""

    def __init__(self, atom: Atom, partition) -> None:
        # `partition` is a repro.data.partition.Partition; typed loosely to
        # avoid an import cycle with the data layer.
        super().__init__(
            f"{partition.light.name}({', '.join(atom.variables)})",
            atom.variables,
            partition.light,
        )
        self.atom = atom
        self.partition = partition

    def copy(self) -> "LightPartLeaf":
        return LightPartLeaf(self.atom, self.partition)


class IndicatorLeaf(LeafNode):
    """A leaf referencing a heavy-indicator relation ``∃H`` (set semantics)."""

    def __init__(self, schema: Schema, relation: Relation) -> None:
        super().__init__(f"∃{relation.name}", tuple(schema), relation)

    def copy(self) -> "IndicatorLeaf":
        return IndicatorLeaf(self.schema, self._relation)


class ViewNode(ViewTreeNode):
    """An inner node: a materialized view over the join of its children."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        children: Sequence[ViewTreeNode],
        is_aux: bool = False,
        ring: Optional[Ring] = None,
    ) -> None:
        super().__init__(name, schema, ring)
        self._children: Tuple[ViewTreeNode, ...] = tuple(children)
        self.is_aux = is_aux
        self._relation = Relation(name, schema)

    @property
    def children(self) -> Tuple[ViewTreeNode, ...]:
        return self._children

    def relation(self) -> Relation:
        return self._relation

    def reset(self) -> None:
        """Discard the materialized content (used by major rebalancing).

        The fresh relation keeps the storage backend of the one it replaces,
        so an engine loaded under a pinned backend stays on that backend
        through major rebalances regardless of the current default.
        """
        self._relation = type(self._relation)(self.name, self.schema)

    def copy(self, namer: Optional[NameGenerator] = None) -> "ViewNode":
        """Deep-copy the inner view structure; leaves stay shared.

        Skew-aware construction assembles several top-level trees from
        combinations of child strategies; each top-level tree needs private
        inner views (they receive delta propagation independently) while
        leaves deliberately reference the same base/light/indicator
        relations.
        """
        new_children = []
        for child in self._children:
            if isinstance(child, ViewNode):
                new_children.append(child.copy(namer))
            else:
                new_children.append(child.copy())  # type: ignore[attr-defined]
        name = namer.fresh(self.name.split("#")[0]) if namer else self.name
        return ViewNode(
            name, self.schema, new_children, is_aux=self.is_aux, ring=self.ring
        )


def subtree_free_variables(node: ViewTreeNode, free: FrozenSet[str]) -> FrozenSet[str]:
    """Free query variables occurring anywhere in the subtree of ``node``."""
    return frozenset(node.variables() & free)
