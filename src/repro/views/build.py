"""View-tree construction: ``NewVT``, ``AuxView``, and ``BuildVT``.

These are direct implementations of Figures 6–8 of the paper:

* :func:`new_view_tree` (Figure 7) creates a view node over child trees —
  or returns the single child unchanged when it already has the requested
  schema;
* :func:`aux_view` (Figure 8) inserts, in dynamic mode, an auxiliary view
  that aggregates a child's subtree down to the child's ancestor variables so
  that updates arriving through siblings only need constant-time lookups;
* :func:`build_view_tree` (Figure 6) builds the view tree that encodes the
  result of a (residual) query over a canonical variable order.

The functions are parameterised by a *leaf factory* mapping atoms to leaf
nodes, which is how the same code builds trees over base relations (``R``)
and over light parts (``R^keys``) without duplicating logic.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, List, Sequence

from repro.data.schema import Schema
from repro.vo.variable_order import AtomNode, VariableNode, VONode
from repro.views.view import LeafNode, NameGenerator, ViewNode, ViewTreeNode

# A leaf factory maps a query atom to a leaf node referencing its relation.
LeafFactory = Callable[[object], LeafNode]

STATIC_MODE = "static"
DYNAMIC_MODE = "dynamic"


def _ordered_schema(variables: Iterable[str]) -> Schema:
    """Deterministic (sorted) schema for a set of variables."""
    return tuple(sorted(set(variables)))


def new_view_tree(
    name: str,
    schema: Iterable[str],
    subtrees: Sequence[ViewTreeNode],
    namer: NameGenerator,
    is_aux: bool = False,
    ring=None,
) -> ViewTreeNode:
    """``NewVT`` (Figure 7).

    When there is a single subtree whose root already has exactly the
    requested schema, that subtree is returned unchanged; otherwise a new
    view node over the subtrees is created.  ``ring`` annotates the payload
    algebra of the created view (:mod:`repro.rings`); the default — and the
    annotation of a returned-unchanged subtree — is the counting ring, kept
    byte-identical to the pre-ring engine.  Plan-wide annotation happens
    through :meth:`repro.views.skew.SkewAwarePlan.annotate_ring`.
    """
    schema = _ordered_schema(schema)
    if len(subtrees) == 1 and set(subtrees[0].schema) == set(schema):
        return subtrees[0]
    return ViewNode(namer.fresh(name), schema, subtrees, is_aux=is_aux, ring=ring)


def aux_view(
    vo_child: VONode,
    tree: ViewTreeNode,
    mode: str,
    namer: NameGenerator,
) -> ViewTreeNode:
    """``AuxView`` (Figure 8).

    In dynamic mode, when the child node ``Z`` of the variable order has a
    sibling and its ancestor set is a proper subset of the root schema of the
    tree constructed for it, an auxiliary view with schema ``anc(Z)`` is
    placed on top.  This is what enables constant-time update propagation
    through siblings (Section 6.1).
    """
    if mode != DYNAMIC_MODE:
        return tree
    ancestors = set(vo_child.ancestors())
    has_sibling = vo_child.parent is not None and len(vo_child.parent.children) > 1
    root_schema = set(tree.schema)
    if has_sibling and ancestors < root_schema:
        return new_view_tree(
            f"{tree.name.split('#')[0]}'",
            ancestors,
            [tree],
            namer,
            is_aux=True,
        )
    return tree


def build_view_tree(
    prefix: str,
    vo_node: VONode,
    free: FrozenSet[str],
    mode: str,
    leaf_factory: LeafFactory,
    namer: NameGenerator,
) -> ViewTreeNode:
    """``BuildVT`` (Figure 6): the view tree encoding a residual query result.

    ``free`` is the set of variables treated as free for this construction
    (the ``F`` parameter of the figure — it may include bound query
    variables that an enclosing skew-aware strategy treats as free).
    """
    if isinstance(vo_node, AtomNode):
        return leaf_factory(vo_node.atom)
    assert isinstance(vo_node, VariableNode)
    x = vo_node.variable
    ancestors = set(vo_node.ancestors())
    child_trees: List[ViewTreeNode] = [
        build_view_tree(prefix, child, free, mode, leaf_factory, namer)
        for child in vo_node.children
    ]
    if ancestors | {x} <= free:
        schema = ancestors | {x}
        subtrees = [
            aux_view(child, tree, mode, namer)
            for child, tree in zip(vo_node.children, child_trees)
        ]
        return new_view_tree(f"{prefix}_{x}", schema, subtrees, namer)
    subtree_vars = vo_node.subtree_variables()
    schema = ancestors | (free & subtree_vars)
    return new_view_tree(f"{prefix}_{x}", schema, child_trees, namer)


def make_relation_leaf_factory(database, query) -> LeafFactory:
    """Leaf factory over the base relations of a database.

    Raised errors are deferred to the planner which validates relation
    presence before building trees.
    """
    from repro.views.view import RelationLeaf

    def factory(atom) -> LeafNode:
        return RelationLeaf(atom, database.relation(atom.relation))

    return factory


def make_light_part_leaf_factory(database, registry, keys) -> LeafFactory:
    """Leaf factory over light parts ``R^keys`` registered in ``registry``.

    ``keys`` are query variables; they are translated positionally into the
    column names of each atom's stored relation before the partition is
    created, so stored relations may use arbitrary column names.
    """
    from repro.views.view import LightPartLeaf

    def factory(atom) -> LeafNode:
        relation = database.relation(atom.relation)
        columns = [
            relation.schema[atom.variables.index(variable)]
            for variable in keys
            if variable in atom.variables
        ]
        partition = registry.get_or_create(relation, columns)
        return LightPartLeaf(atom, partition)

    return factory
