"""Metamorphic properties of update ingestion.

Differential testing needs an oracle; metamorphic testing needs only the
engine itself and an algebraic identity that must hold regardless of what
the correct result is.  The three identities here are the ones the batched
IVM pipeline leans on (and the ones incremental-view systems in the
DBToaster lineage classically check):

* **insert-then-delete is a no-op** — applying a stream and then its
  inversion in reverse order must restore the exact result (and keep every
  internal invariant intact);
* **permuting a consolidated batch is result-invariant** — a batch stores
  net per-relation deltas, so the order of the source updates (and hence
  the relation-group processing order) must not matter;
* **a partitioned stream equals the whole** — cutting a stream into
  consecutive consolidated chunks, or consolidating it into one batch,
  must land on the same final result as the one-tuple-at-a-time replay;
* **shard-merging is invisible** — running the same workload through
  :class:`~repro.sharding.ShardedEngine` at any shard count must produce
  exactly the single engine's result, enumerated in canonical order, with
  every per-shard and cross-shard invariant intact;
* **snapshots are isolated** — a snapshot captured at version ``v``
  enumerates exactly what a fresh engine replayed to ``v`` produces (order
  included), and keeps doing so after the live engine ingests arbitrary
  further segments — including ones that trigger minor/major rebalances —
  for both the single engine and the sharded facade;
* **retuning is invisible** — switching the live ε after an interleaved
  prefix (``engine.retune``) must leave the engine result- and
  order-equivalent to a fresh engine built at the new ε, through the whole
  remaining stream, for the single engine and the sharded facade alike;
* **resharding is invisible** — elastically moving a live fleet from ``k``
  to ``k′`` shards (``ShardedEngine.reshard``) must leave it result- and
  order-equivalent to a fresh ``k′``-shard deployment fed the same stream,
  through the whole remaining suffix, while a snapshot captured *before*
  the reshard keeps enumerating its exact capture forever;
* **maintained aggregates equal the fold** — at every checkpoint of a
  segmented stream, ``engine.aggregate()`` answered from maintained ring
  state must equal :func:`repro.rings.spec.fold_result` over the naive
  oracle's enumeration — across an ε grid, through a mid-stream retune,
  on both relation-storage backends, and through the sharded facade's
  per-shard partial-aggregate merge at shard counts {1, 2, 4}.

Each check takes an ``engine_factory`` so it runs identically against
:class:`~repro.core.api.HierarchicalEngine` at any ε and against every
baseline; both the Hypothesis test-suite and ``tools/fuzz.py`` drive these
functions over the degree-distribution knobs of
:mod:`repro.workloads.generators`.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.conformance.runner import aggregate_specs_for
from repro.core.api import HierarchicalEngine
from repro.core.planner import is_shardable
from repro.data.database import Database
from repro.data.relation import storage_backend
from repro.data.update import Update
from repro.enumeration.union import sort_shard_result
from repro.exceptions import UnsupportedQueryError
from repro.query.parser import parse_query
from repro.rings.spec import answer_map, fold_result
from repro.sharding import ShardedEngine

EngineFactory = Callable[[], object]


def _loaded(engine_factory: EngineFactory, database: Database):
    engine = engine_factory()
    engine.load(database)
    return engine


def _maybe_check_invariants(engine) -> None:
    if isinstance(engine, HierarchicalEngine):
        engine.check_invariants()


def check_insert_delete_noop(
    engine_factory: EngineFactory, database: Database, updates: Sequence[Update]
) -> None:
    """Applying ``updates`` then their reversed inversion restores the result."""
    engine = _loaded(engine_factory, database)
    before = dict(engine.result())
    for update in updates:
        engine.apply(update)
    for update in reversed(list(updates)):
        engine.apply(update.inverted())
    after = dict(engine.result())
    assert after == before, (
        "insert-then-delete round-trip changed the result: "
        f"{len(before)} tuples before, {len(after)} after"
    )
    _maybe_check_invariants(engine)


def check_batch_permutation_invariance(
    engine_factory: EngineFactory,
    database: Database,
    updates: Sequence[Update],
    rng: random.Random,
) -> None:
    """A consolidated batch must ingest identically under source-order permutation.

    Permuting the sources changes the first-touched relation order inside
    the batch, and with it the relation-group processing order of the
    batched maintenance path — the final result must not notice.
    """
    original = _loaded(engine_factory, database)
    original.apply_batch(list(updates))
    permuted_updates = list(updates)
    rng.shuffle(permuted_updates)
    permuted = _loaded(engine_factory, database)
    permuted.apply_batch(permuted_updates)
    assert dict(original.result()) == dict(permuted.result()), (
        "permuting a consolidated batch changed the result"
    )
    _maybe_check_invariants(original)
    _maybe_check_invariants(permuted)


def check_partition_union(
    engine_factory: EngineFactory,
    database: Database,
    updates: Sequence[Update],
    parts: int,
) -> None:
    """Chunked batches, one whole batch, and sequential replay must agree."""
    updates = list(updates)
    sequential = _loaded(engine_factory, database)
    for update in updates:
        sequential.apply(update)
    expected = dict(sequential.result())

    whole = _loaded(engine_factory, database)
    whole.apply_batch(updates)
    assert dict(whole.result()) == expected, (
        "consolidating the whole stream into one batch changed the result"
    )

    parts = max(1, parts)
    size = max(1, (len(updates) + parts - 1) // parts) if updates else 1
    chunked = _loaded(engine_factory, database)
    for start in range(0, len(updates), size):
        chunked.apply_batch(updates[start : start + size])
    assert dict(chunked.result()) == expected, (
        f"partitioning the stream into {parts} consolidated chunks changed the result"
    )
    for engine in (sequential, whole, chunked):
        _maybe_check_invariants(engine)


def check_shard_merge(
    query: str,
    epsilon: float,
    database: Database,
    updates: Sequence[Update],
    shard_counts: Sequence[int] = (1, 2, 4, 7),
) -> None:
    """Sharded execution must be indistinguishable from a single engine.

    For every shard count: identical result dictionary, enumeration equal
    to the single engine's result re-sorted canonically (same tuples, same
    multiplicities, canonical order), and all per-shard plus cross-shard
    placement invariants intact — after the full stream, so any minor/major
    rebalances along the way are covered too.  Unshardable queries
    (disconnected bodies) must be *rejected* by the sharded gate while the
    single engine still accepts them.
    """
    updates = list(updates)
    single = HierarchicalEngine(query, epsilon=epsilon)
    if not is_shardable(single.query):
        try:
            ShardedEngine(query, shards=2, epsilon=epsilon)
        except UnsupportedQueryError:
            return
        raise AssertionError(
            f"shard gate accepted unshardable query {query!r}"
        )
    single.load(database)
    for update in updates:
        single.apply(update)
    expected = dict(single.result())
    expected_sequence = sort_shard_result(expected.items())
    for shards in shard_counts:
        sharded = ShardedEngine(
            query, shards=shards, epsilon=epsilon, executor="serial"
        )
        sharded.load(database)
        for update in updates:
            sharded.apply(update)
        merged = list(sharded.enumerate())
        # equality against the canonically sorted single-engine sequence
        # covers tuples, multiplicities, AND enumeration order at once
        assert merged == expected_sequence, (
            f"shard count {shards}: merged enumeration diverges from the "
            f"single engine ({len(merged)} vs {len(expected_sequence)} tuples)"
        )
        sharded.check_invariants()
        sharded.close()
    _maybe_check_invariants(single)


def _segments(updates: Sequence[Update], parts: int) -> list:
    updates = list(updates)
    parts = max(1, parts)
    size = max(1, (len(updates) + parts - 1) // parts) if updates else 1
    return [updates[i : i + size] for i in range(0, len(updates), size)]


def check_retune_equivalence(
    query: str,
    epsilon_before: float,
    epsilon_after: float,
    database: Database,
    updates: Sequence[Update],
    shard_counts: Sequence[int] = (1, 2, 4),
    segments: int = 3,
) -> None:
    """``retune(ε₂)`` must equal a fresh engine built at ε₂ — order included.

    After an interleaved prefix of batches, the engine retunes from ε₁ to
    ε₂; from that point on it must be indistinguishable from

    * a **rebuilt** engine: a fresh ε₂ engine loaded with the retuned
      engine's current database — compared by exact enumeration sequence
      (result *and* order) after the retune and after every suffix batch,
      which pins retune-as-reload: same ``M = 2N + 1`` base, same strict
      partitions, same view contents in the same order;
    * a **replayed** engine: a fresh ε₂ engine loaded with the *original*
      database and replayed over the whole stream — compared by result
      dictionary (its threshold base evolved by doubling/halving instead
      of being re-anchored, so partitions and enumeration order may
      legitimately differ; results never may).

    Both live engines then pass the deep invariant probe and the loose
    partition check.  The sharded facade runs the same protocol at every
    shard count; merged enumeration is canonical, so sequence equality
    against a fresh sharded deployment covers result and order at once.
    """
    updates = list(updates)
    batches = _segments(updates, segments)
    cut = max(1, len(batches) // 2)
    prefix, suffix = batches[:cut], batches[cut:]

    retuned = HierarchicalEngine(query, epsilon=epsilon_before)
    retuned.load(database)
    for batch in prefix:
        retuned.apply_batch(batch)
    retuned.retune(epsilon_after)
    assert retuned.epsilon == epsilon_after
    rebuilt = HierarchicalEngine(query, epsilon=epsilon_after)
    rebuilt.load(retuned.database)  # load() copies; the engines stay independent
    replayed = HierarchicalEngine(query, epsilon=epsilon_after)
    replayed.load(database)
    for batch in prefix:
        replayed.apply_batch(batch)
    assert list(retuned.enumerate()) == list(rebuilt.enumerate()), (
        "retuned engine enumerates differently from a fresh engine built at "
        "the new epsilon over the same database"
    )
    for batch in suffix:
        retuned.apply_batch(batch)
        rebuilt.apply_batch(batch)
        replayed.apply_batch(batch)
        assert list(retuned.enumerate()) == list(rebuilt.enumerate()), (
            "retuned and rebuilt engines diverged while ingesting the suffix"
        )
    assert dict(retuned.result()) == dict(replayed.result()), (
        "retuned engine's result diverges from a fresh engine replayed at "
        "the new epsilon"
    )
    retuned.check_invariants()
    rebuilt.check_invariants()
    if retuned._driver is not None:
        retuned._driver.check_partitions()

    if not is_shardable(retuned.query):
        return
    for shards in shard_counts:
        sharded = ShardedEngine(
            query, shards=shards, epsilon=epsilon_before, executor="serial"
        )
        sharded.load(database)
        for batch in prefix:
            sharded.apply_batch(batch)
        sharded.retune(epsilon_after)
        fresh = ShardedEngine(
            query, shards=shards, epsilon=epsilon_after, executor="serial"
        )
        fresh.load(database)
        for batch in prefix:
            fresh.apply_batch(batch)
        for batch in suffix:
            sharded.apply_batch(batch)
            fresh.apply_batch(batch)
        assert list(sharded.enumerate()) == list(fresh.enumerate()), (
            f"shard count {shards}: retuned sharded enumeration diverges "
            "from a fresh deployment at the new epsilon"
        )
        sharded.check_invariants()
        sharded.close()
        fresh.close()


def check_reshard_equivalence(
    query: str,
    epsilon: float,
    database: Database,
    updates: Sequence[Update],
    shard_counts: Sequence[int] = (1, 2, 4, 7),
    segments: int = 3,
) -> None:
    """``reshard(k′)`` must equal a fresh ``k′`` fleet — order included.

    For every adjacent pair of shard counts (cyclically, so both splits
    and merges are exercised): a fleet at ``k`` ingests an interleaved
    prefix of batches, captures a snapshot, and reshards to ``k′``; from
    that point on it must be indistinguishable from a fresh ``k′``-shard
    deployment fed the same prefix — compared by exact merged enumeration
    (canonical order makes sequence equality cover result, multiplicities,
    and order at once) right after the swap and again after every suffix
    batch.  The reshard itself ticks the facade version exactly once,
    like a retune.  The held snapshot must still enumerate its exact
    pre-reshard capture after the swap *and* after the suffix mutated the
    new fleet underneath it — the retired fleet stays alive precisely as
    long as pinned readers need it.  Unshardable queries are skipped (the
    sharded gate rejects them before a fleet ever exists).
    """
    single = HierarchicalEngine(query, epsilon=epsilon)
    if not is_shardable(single.query):
        return
    updates = list(updates)
    batches = _segments(updates, segments)
    cut = max(1, len(batches) // 2)
    prefix, suffix = batches[:cut], batches[cut:]
    counts = list(shard_counts)
    for index, before in enumerate(counts):
        after = counts[(index + 1) % len(counts)]
        if after == before:
            continue
        resharded = ShardedEngine(
            query, shards=before, epsilon=epsilon, executor="serial"
        )
        resharded.load(database)
        for batch in prefix:
            resharded.apply_batch(batch)
        held = resharded.snapshot()
        held_sequence = list(held.enumerate())
        version_before = resharded.version
        resharded.reshard(after)
        assert resharded.shards == after, (
            f"reshard({after}) left the facade reporting {resharded.shards}"
        )
        assert resharded.version == version_before + 1, (
            f"reshard {before}->{after} ticked the version from "
            f"{version_before} to {resharded.version}, expected exactly one"
        )
        fresh = ShardedEngine(
            query, shards=after, epsilon=epsilon, executor="serial"
        )
        fresh.load(database)
        for batch in prefix:
            fresh.apply_batch(batch)
        assert list(resharded.enumerate()) == list(fresh.enumerate()), (
            f"reshard {before}->{after}: merged enumeration diverges from a "
            "fresh deployment at the new count"
        )
        for batch in suffix:
            resharded.apply_batch(batch)
            fresh.apply_batch(batch)
            assert list(resharded.enumerate()) == list(fresh.enumerate()), (
                f"reshard {before}->{after}: resharded and fresh fleets "
                "diverged while ingesting the suffix"
            )
        assert list(held.enumerate()) == held_sequence, (
            f"reshard {before}->{after}: a snapshot captured before the "
            "reshard no longer enumerates its capture"
        )
        held.close()
        resharded.check_invariants()
        resharded.close()
        fresh.close()


def check_snapshot_isolation(
    query: str,
    epsilon: float,
    database: Database,
    updates: Sequence[Update],
    shard_counts: Sequence[int] = (1, 2, 4),
    segments: int = 3,
) -> None:
    """A snapshot at version ``v`` equals a fresh replay to ``v`` — forever.

    The stream is cut into ``segments`` batches.  After each batch the live
    engine captures a snapshot and records its own enumeration sequence;
    only after *all* batches have been ingested (so every snapshot except
    the last has seen the engine mutate underneath it, rebalances and all)
    is each snapshot checked: its enumeration must equal the sequence the
    live engine produced at capture time, and its result must equal the
    ground truth of a fresh :class:`NaiveRecomputeEngine` replayed to the
    same prefix.  The sharded facade runs the same protocol at every shard
    count, its snapshots checked against the canonically sorted truth.
    """
    from repro.baselines.naive import NaiveRecomputeEngine

    batches = _segments(updates, segments)
    oracle = NaiveRecomputeEngine(query)
    oracle.load(database)
    truths = []
    for batch in batches:
        oracle.apply_batch(batch)
        truths.append(dict(oracle.result()))

    single = HierarchicalEngine(query, epsilon=epsilon)
    single.load(database)
    captured = []
    for batch in batches:
        single.apply_batch(batch)
        captured.append((single.snapshot(), list(single.enumerate())))
    for index, (snapshot, live_sequence) in enumerate(captured):
        assert snapshot.version == index + 1, (
            f"snapshot after batch {index} reports version {snapshot.version}"
        )
        sequence = list(snapshot.enumerate())
        assert sequence == live_sequence, (
            f"snapshot at version {snapshot.version} enumerates differently "
            "from the live engine at capture time"
        )
        assert dict(snapshot.result()) == truths[index], (
            f"snapshot at version {snapshot.version} diverges from a fresh "
            "oracle replayed to the same prefix"
        )
        for tup, mult in truths[index].items():
            assert snapshot.lookup(tup) == mult, (
                f"snapshot lookup({tup!r}) != {mult} at version "
                f"{snapshot.version}"
            )
            break  # one probe per snapshot keeps the check cheap
        snapshot.close()
    _maybe_check_invariants(single)

    if not is_shardable(single.query):
        return
    for shards in shard_counts:
        sharded = ShardedEngine(
            query, shards=shards, epsilon=epsilon, executor="serial"
        )
        sharded.load(database)
        sharded_captured = []
        for batch in batches:
            sharded.apply_batch(batch)
            sharded_captured.append(sharded.snapshot())
        for index, snapshot in enumerate(sharded_captured):
            expected = sort_shard_result(truths[index].items())
            assert list(snapshot.enumerate()) == expected, (
                f"shard count {shards}: snapshot at version "
                f"{snapshot.version} diverges from the oracle prefix"
            )
            snapshot.close()
        sharded.check_invariants()
        sharded.close()


def check_aggregate_equivalence(
    query: str,
    epsilons: Sequence[float],
    database: Database,
    updates: Sequence[Update],
    shard_counts: Sequence[int] = (1, 2, 4),
    segments: int = 3,
    extra_specs: Sequence = (),
) -> None:
    """``engine.aggregate()`` equals the fold over the oracle — everywhere.

    The single fold definition (:func:`repro.rings.spec.fold_result` over
    the naive oracle's enumeration) is the ground truth.  Against it, at
    checkpoint 0 and after every segment of the stream:

    * a :class:`HierarchicalEngine` per ε of ``epsilons`` answers every
      spec of the generic set (plus ``extra_specs``) from *maintained*
      ring state — the specs are registered before any update, so the
      answers come from incremental maintenance, never a re-fold — and
      the ``maintained=False`` enumerate-and-fold path is probed too;
    * one engine runs entirely on the ``dict`` relation-storage backend,
      so both payload-channel implementations face the same stream;
    * the sharded facade at every ``shard_counts`` answers by merging
      per-shard partial aggregates with ring ``combine`` — grouped
      aggregation must be a homomorphism of the shard decomposition;
    * at the halfway checkpoint every engine **retunes** to a different ε
      mid-stream, so the strict repartition must carry payloads through
      unchanged (retraction-sensitive rings like min/max included).

    ``extra_specs`` takes ``(ring name, value, group_by)`` triples, e.g. a
    scenario's natural aggregates.  Non-hierarchical queries are skipped
    (the engines under test reject them at the fragment gate).
    """
    try:
        probe = HierarchicalEngine(query)
    except UnsupportedQueryError:
        return
    head = tuple(parse_query(query).head)
    specs = aggregate_specs_for(head, extra_specs)
    epsilons = tuple(epsilons) or (0.5,)
    batches = _segments(updates, segments)
    cut = max(1, len(batches) // 2)

    from repro.baselines.naive import NaiveRecomputeEngine

    oracle = NaiveRecomputeEngine(query)
    oracle.load(database)

    def _fold_oracle() -> list:
        pairs = list(dict(oracle.result()).items())
        return [answer_map(s, fold_result(s, head, pairs)) for s in specs]

    truths = [_fold_oracle()]
    for batch in batches:
        oracle.apply_batch(batch)
        truths.append(_fold_oracle())

    mid = epsilons[len(epsilons) // 2]
    engines = [
        (f"ivm(eps={eps})", HierarchicalEngine(query, epsilon=eps).load(database))
        for eps in epsilons
    ]
    with storage_backend("dict"):
        # database rebuilt inside the context so relations, partitions,
        # and views all live on the dict backend (mirrors the runner)
        dict_database = Database()
        for relation in database:
            clone = dict_database.create_relation(relation.name, tuple(relation.schema))
            for tup, mult in relation.items():
                clone.apply_delta(tuple(tup), mult)
        engines.append(
            (
                f"ivm-dict-storage(eps={mid})",
                HierarchicalEngine(query, epsilon=mid).load(dict_database),
            )
        )
    if is_shardable(probe.query):
        for shards in shard_counts:
            engines.append(
                (
                    f"sharded(n={shards},eps={mid})",
                    ShardedEngine(
                        query, shards=shards, epsilon=mid, executor="serial"
                    ).load(database),
                )
            )
    for _name, engine in engines:
        for spec in specs:
            engine.register_aggregate(spec)

    def check(checkpoint: int) -> None:
        expected_list = truths[checkpoint]
        for name, engine in engines:
            for spec, expected in zip(specs, expected_list):
                observed = engine.aggregate(spec)
                assert observed == expected, (
                    f"{name} at checkpoint {checkpoint}: maintained "
                    f"{spec.describe()} aggregate diverges from the fold "
                    f"over the oracle ({len(observed)} vs "
                    f"{len(expected)} groups)"
                )
            folded = engine.aggregate(specs[0], maintained=False)
            assert folded == expected_list[0], (
                f"{name} at checkpoint {checkpoint}: enumerate-and-fold "
                f"{specs[0].describe()} aggregate diverges from the oracle"
            )

    check(0)
    for number, batch in enumerate(batches, start=1):
        for _name, engine in engines:
            engine.apply_batch(batch)
        if number == cut:
            for _name, engine in engines:
                # a target guaranteed distinct from the live ε, so the
                # retune is a genuine strict repartition
                engine.retune(0.25 if abs(engine.epsilon - 0.25) > 1e-9 else 0.75)
        check(number)
    for _name, engine in engines:
        engine.check_invariants()
        if isinstance(engine, ShardedEngine):
            engine.close()
