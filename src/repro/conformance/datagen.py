"""Random databases and update streams for generated queries.

The fuzzer needs data whose *degree distribution* is controllable — the one
data characteristic the paper's cost statements (and the skew-aware
partitioning) actually depend on.  :class:`DataProfile` exposes the same
knobs as :mod:`repro.workloads.generators` (domain size, Zipf exponent,
heavy-hitter fraction) scaled down to fuzzing-sized relations, and
:func:`random_database` materializes a database for *any* conjunctive query
by instantiating every atom's schema.  Columns shared between atoms draw
from one common domain so joins actually connect.

Update streams delegate to :func:`repro.workloads.streams.mixed_stream`,
which replays inserts and deletes against a shadow copy — deletes always
target existing tuples, so a generated stream is valid on every engine and
any rejection during a differential run is itself a conformance failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import UpdateStream
from repro.query.conjunctive import ConjunctiveQuery
from repro.workloads.generators import zipf_values
from repro.workloads.streams import mixed_stream


@dataclass(frozen=True)
class DataProfile:
    """Degree-distribution knobs for fuzzing-sized databases.

    ``skew`` is a Zipf exponent applied to every column (0 = uniform);
    ``heavy_fraction`` routes that fraction of each relation's tuples onto a
    single hot value per column, producing the bimodal distribution that
    separates the heavy and light maintenance strategies.
    """

    tuples_per_relation: int = 20
    domain: int = 8
    skew: float = 0.0
    heavy_fraction: float = 0.0


def _column_values(
    count: int, profile: DataProfile, rng: random.Random, seed: int
) -> List[int]:
    if profile.skew > 0.0:
        values = zipf_values(count, profile.domain, profile.skew, seed)
    else:
        values = [rng.randrange(profile.domain) for _ in range(count)]
    if profile.heavy_fraction > 0.0:
        values = [0 if rng.random() < profile.heavy_fraction else v for v in values]
    return values


def random_database(
    query: ConjunctiveQuery, profile: DataProfile, seed: int = 0
) -> Database:
    """A random database matching the schemas of every atom of ``query``."""
    rng = random.Random(seed)
    contents = {}
    for atom_index, atom in enumerate(query.atoms):
        columns = [
            _column_values(
                profile.tuples_per_relation,
                profile,
                rng,
                seed * 1009 + atom_index * 31 + position,
            )
            for position in range(len(atom.variables))
        ]
        rows: List[ValueTuple] = list(zip(*columns)) if columns else []
        contents[atom.relation] = (atom.variables, rows)
    return Database.from_dict(contents)


def random_update_stream(
    database: Database,
    count: int,
    profile: DataProfile,
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> UpdateStream:
    """A rejection-free mixed insert/delete stream over ``database``."""
    return mixed_stream(
        database,
        count,
        delete_fraction=delete_fraction,
        domain=profile.domain,
        seed=seed,
    )
