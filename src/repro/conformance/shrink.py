"""Shrinking failing cases to minimal repros, and repro-file round-trips.

When the fuzzer finds a divergence the raw case is rarely readable — dozens
of tuples and updates, most of them irrelevant.  :func:`shrink_case` runs a
greedy delta-debugging pass (coarse-to-fine chunk removal, the ddmin idea
without the combinatorial sweep) over three axes in turn:

1. the update sequence,
2. the database tuples,
3. the ε grid and checkpoint count,

re-running the failure predicate after every candidate removal and keeping
any reduction that still fails.  The predicate is typically
:func:`repro.conformance.runner.case_failure`, which treats crashes and
divergences uniformly, so shrinking works no matter how the bug manifests.

The shrunk case is written as a JSON repro file via :func:`write_repro`;
``tools/fuzz.py --repro <file>`` (or :func:`load_case` +
:func:`~repro.conformance.runner.run_case`) replays it deterministically.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.conformance.runner import ConformanceCase, Mismatch

FailurePredicate = Callable[[ConformanceCase], Optional[Mismatch]]


def _with_updates(case: ConformanceCase, updates: List) -> ConformanceCase:
    return replace(case, updates=updates)


def _with_relations(case: ConformanceCase, flat_rows: List) -> ConformanceCase:
    relations = {
        name: (schema, [row for rel, row in flat_rows if rel == name])
        for name, (schema, _rows) in case.relations.items()
    }
    return replace(case, relations=relations)


def _shrink_list(
    items: List,
    rebuild: Callable[[List], ConformanceCase],
    fails: FailurePredicate,
    budget: List[int],
) -> List:
    """Greedy chunked removal: keep any deletion that still fails."""
    chunk = max(1, len(items) // 2)
    while chunk >= 1 and budget[0] > 0:
        start = 0
        while start < len(items) and budget[0] > 0:
            candidate = items[:start] + items[start + chunk :]
            if len(candidate) == len(items):
                break
            budget[0] -= 1
            if fails(rebuild(candidate)) is not None:
                items = candidate  # removal kept the failure: accept it
            else:
                start += chunk
        chunk //= 2
    return items


def shrink_case(
    case: ConformanceCase,
    fails: FailurePredicate,
    max_evaluations: int = 400,
) -> ConformanceCase:
    """Reduce ``case`` while ``fails`` keeps reporting a failure.

    ``max_evaluations`` bounds the number of differential re-runs, so
    shrinking stays time-boxed even for stubborn failures; the original
    case is returned unchanged if it does not fail at all (nothing to
    shrink — and a non-reproducing "failure" should not be reported as
    minimal).
    """
    if fails(case) is None:
        return case
    budget = [max_evaluations]

    updates = _shrink_list(
        list(case.updates), lambda u: _with_updates(case, u), fails, budget
    )
    case = _with_updates(case, updates)

    flat_rows: List[Tuple[str, Tuple]] = [
        (name, row)
        for name, (_schema, rows) in case.relations.items()
        for row in rows
    ]
    flat_rows = _shrink_list(
        flat_rows, lambda rows: _with_relations(case, rows), fails, budget
    )
    case = _with_relations(case, flat_rows)

    # drop epsilons one at a time (keep at least one), then collapse checkpoints
    for epsilon in list(case.epsilons):
        if len(case.epsilons) <= 1 or budget[0] <= 0:
            break
        reduced = replace(
            case, epsilons=tuple(e for e in case.epsilons if e != epsilon)
        )
        budget[0] -= 1
        if fails(reduced) is not None:
            case = reduced
    if case.checkpoints > 1 and budget[0] > 0:
        reduced = replace(case, checkpoints=1)
        budget[0] -= 1
        if fails(reduced) is not None:
            case = reduced
    # drop case-specific aggregate triples that aren't needed for the failure
    for triple in list(case.aggregates):
        if budget[0] <= 0:
            break
        reduced = replace(
            case, aggregates=tuple(a for a in case.aggregates if a != triple)
        )
        budget[0] -= 1
        if fails(reduced) is not None:
            case = reduced
    return case


def write_repro(
    case: ConformanceCase,
    mismatch: Optional[Mismatch],
    path: Path,
) -> Path:
    """Serialize a (shrunk) failing case plus its observed failure to disk."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.loads(case.to_json())
    payload["failure"] = (
        {
            "engine": mismatch.engine,
            "checkpoint": mismatch.checkpoint,
            "kind": mismatch.kind,
            "detail": mismatch.detail,
        }
        if mismatch is not None
        else None
    )
    payload["replay"] = "python tools/fuzz.py --repro " + str(path)
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def load_case(path: Path) -> ConformanceCase:
    """Load a repro file written by :func:`write_repro`."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    raw.pop("failure", None)
    raw.pop("replay", None)
    return ConformanceCase.from_json(json.dumps(raw))
